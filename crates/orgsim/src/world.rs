//! The seeded generative world.
//!
//! A [`World`] fixes everything that is "the organization" for one task:
//! the service registry and its schema, the class-conditional latent
//! attribute distributions, per-modality background shift (the modality
//! gap), archetype style geometry, and the random projection behind the
//! pre-trained embedding service. Entities and datasets are then sampled
//! from it deterministically given a seed.

use std::sync::Arc;

use cm_featurespace::{
    CatSet, FeatureDef, FeatureSchema, FeatureValue, Label, ModalityKind, Vocabulary,
};
use cm_linalg::init::standard_normal;
use cm_linalg::rng::Rng;
use cm_linalg::rng::StdRng;
use cm_linalg::Matrix;

use crate::entity::{LatentEntity, NumericLatents};
use crate::services::{
    standard_registry, NumericSource, ServiceKind, ServiceSpec, ATTR_INDICATIVE, ATTR_VOCAB_SIZES,
    N_ATTRS,
};
use crate::tasks::TaskConfig;

/// Configuration of a [`World`].
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Task profile and dataset sizes.
    pub task: TaskConfig,
    /// Master seed; all world structure derives from it.
    pub seed: u64,
    /// Latent style dimensionality.
    pub style_dim: usize,
    /// Number of background (negative) style clusters.
    pub n_negative_clusters: usize,
}

impl WorldConfig {
    /// Default geometry for a task.
    pub fn new(task: TaskConfig, seed: u64) -> Self {
        Self { task, seed, style_dim: 8, n_negative_clusters: 24 }
    }
}

/// Zipf-like exponent for background category draws.
const BACKGROUND_ZIPF: f64 = 1.1;

/// A fully instantiated generative world for one task.
pub struct World {
    config: WorldConfig,
    services: Vec<ServiceSpec>,
    schema: Arc<FeatureSchema>,
    /// `[attr][archetype] -> indicative ids` for positive entities.
    arch_indicative: Vec<Vec<Vec<u32>>>,
    /// Cumulative background-rank distribution per attribute.
    background_cdf: Vec<Vec<f64>>,
    /// Style centers for positive archetypes.
    archetype_centers: Vec<Vec<f32>>,
    /// Style centers for the negative background mixture.
    negative_centers: Vec<Vec<f32>>,
    /// Random projection style -> embedding space.
    projection: Matrix,
    /// Unit label direction in embedding space.
    label_direction: Vec<f32>,
}

impl World {
    /// Builds the world structure from the config (deterministic in the
    /// seed).
    #[allow(clippy::needless_range_loop)] // indexes parallel const arrays
    pub fn build(config: WorldConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9e37_79b9_7f4a_7c15);
        let services = standard_registry();
        let schema = Arc::new(build_schema(&services));

        let profile = &config.task.profile;
        let n_arch = profile.n_archetypes;

        // Partition each attribute's indicative ids across archetypes
        // (wrapping, so small vocabularies still give every archetype
        // signal, at the cost of some overlap).
        let mut arch_indicative = Vec::with_capacity(N_ATTRS);
        for attr in 0..N_ATTRS {
            let n_ind = ATTR_INDICATIVE[attr];
            let per_arch = (n_ind as usize / n_arch).max(1);
            let mut per_attr = Vec::with_capacity(n_arch);
            for k in 0..n_arch {
                let ids =
                    (0..per_arch).map(|j| ((k * per_arch + j) % n_ind as usize) as u32).collect();
                per_attr.push(ids);
            }
            arch_indicative.push(per_attr);
        }

        // Background rank CDF per attribute (shared across modalities; the
        // shift is applied as an id offset at sampling time).
        let mut background_cdf = Vec::with_capacity(N_ATTRS);
        for attr in 0..N_ATTRS {
            let n = (ATTR_VOCAB_SIZES[attr] - ATTR_INDICATIVE[attr]) as usize;
            let mut cdf = Vec::with_capacity(n);
            let mut acc = 0.0;
            for r in 0..n {
                acc += 1.0 / ((r + 1) as f64).powf(BACKGROUND_ZIPF);
                cdf.push(acc);
            }
            let total = acc.max(f64::MIN_POSITIVE);
            for v in &mut cdf {
                *v /= total;
            }
            background_cdf.push(cdf);
        }

        let sample_center = |rng: &mut StdRng, dim: usize| -> Vec<f32> {
            (0..dim).map(|_| (standard_normal(rng) * 1.5) as f32).collect()
        };
        let negative_centers: Vec<Vec<f32>> = (0..config.n_negative_clusters)
            .map(|_| sample_center(&mut rng, config.style_dim))
            .collect();
        // Positive archetypes sit *inside* the negative style mixture — a
        // modest offset from an existing negative cluster — so the global
        // embedding signal is weak (the paper's baseline is beatable) while
        // local structure (tight positive sub-clusters) remains for label
        // propagation to exploit.
        let offset_scale = profile.style_noise;
        let archetype_centers: Vec<Vec<f32>> = (0..n_arch)
            .map(|k| {
                let base = &negative_centers[k % config.n_negative_clusters];
                base.iter()
                    .map(|&c| c + (standard_normal(&mut rng) * offset_scale) as f32)
                    .collect()
            })
            .collect();

        let emb_dim = services
            .iter()
            .find_map(|s| match s.kind {
                ServiceKind::Embedding { dim } => Some(dim),
                _ => None,
            })
            // The paper registry always includes img_embedding.
            // lint: allow(expect)
            .expect("registry has an embedding service");
        let projection = Matrix::from_fn(emb_dim, config.style_dim, |_, _| {
            (standard_normal(&mut rng) / (config.style_dim as f64).sqrt()) as f32
        });
        let mut label_direction: Vec<f32> =
            (0..emb_dim).map(|_| standard_normal(&mut rng) as f32).collect();
        let norm = cm_linalg::l2_norm(&label_direction).max(1e-6);
        for v in &mut label_direction {
            *v /= norm;
        }

        Self {
            config,
            services,
            schema,
            arch_indicative,
            background_cdf,
            archetype_centers,
            negative_centers,
            projection,
            label_direction,
        }
    }

    /// The feature schema induced by the service registry.
    pub fn schema(&self) -> &Arc<FeatureSchema> {
        &self.schema
    }

    /// The service registry.
    pub fn services(&self) -> &[ServiceSpec] {
        &self.services
    }

    /// The world configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Samples one latent entity for `modality`.
    #[allow(clippy::needless_range_loop)] // indexes parallel const arrays
    pub fn sample_entity(&self, modality: ModalityKind, rng: &mut StdRng) -> LatentEntity {
        let profile = &self.config.task.profile;
        let positive = rng.gen::<f64>() < profile.positive_rate;
        let n_arch = profile.n_archetypes;
        let archetype = if positive { rng.gen_range(0..n_arch) } else { usize::MAX };
        let borderline = positive && archetype >= n_arch - profile.n_borderline;

        let mut cats = Vec::with_capacity(N_ATTRS);
        for attr in 0..N_ATTRS {
            let mut set = CatSet::new();
            // Background draws (modality-shifted Zipf).
            let n_background = rng.gen_range(1..=3);
            for _ in 0..n_background {
                set.insert(self.sample_background(attr, modality, rng));
            }
            if positive {
                let set_idx = attr_feature_set_index(attr);
                let discount = if borderline { profile.borderline_signal_discount } else { 1.0 };
                let signal = profile.set_signal[set_idx]
                    * discount
                    * attr_modality_signal(attr, modality, profile.modality_shift);
                if rng.gen::<f64>() < signal {
                    for &id in &self.arch_indicative[attr][archetype] {
                        set.insert(id);
                    }
                }
            } else if rng.gen::<f64>() < profile.contamination {
                set.insert(rng.gen_range(0..ATTR_INDICATIVE[attr]));
            }
            cats.push(set);
        }

        let s = profile.numeric_signal;
        let n = |rng: &mut StdRng, mu: f64, sd: f64| standard_normal(rng) * sd + mu;
        // Mild population selection effect: authors posting rich media are
        // reported/shared slightly more across both classes, so thresholds
        // learned on text miscalibrate on the new modality while
        // within-modality separation is untouched.
        let pop = match modality {
            ModalityKind::Text => 0.0,
            ModalityKind::Image => 0.6 * profile.modality_shift * (1.0 + s),
            ModalityKind::Video => 0.9 * profile.modality_shift * (1.0 + s),
        };
        let numerics = if positive {
            NumericLatents {
                report_propensity: (n(rng, 1.0 + 3.0 * s + pop, 0.8)).max(0.0),
                virality: (n(rng, 1.0 + 2.0 * s + 0.5 * pop, 0.6)).max(0.0),
                url_reputation: (n(rng, 0.75 - 0.3 * s, 0.1)).clamp(0.0, 1.0),
                page_quality: (n(rng, 0.7 - 0.25 * s, 0.1)).clamp(0.0, 1.0),
                ocr_density: (n(rng, 0.5 + 0.2 * s, 0.15)).clamp(0.0, 1.0),
                domain_age: (n(rng, 1000.0, 300.0)).max(1.0),
                word_count: (n(rng, 20.0, 8.0)).max(1.0),
            }
        } else {
            NumericLatents {
                report_propensity: (n(rng, 1.0 + pop, 0.8)).max(0.0),
                virality: (n(rng, 1.0 + 0.5 * pop, 0.6)).max(0.0),
                url_reputation: (n(rng, 0.75, 0.1)).clamp(0.0, 1.0),
                page_quality: (n(rng, 0.7, 0.1)).clamp(0.0, 1.0),
                ocr_density: (n(rng, 0.5, 0.15)).clamp(0.0, 1.0),
                domain_age: (n(rng, 1000.0, 300.0)).max(1.0),
                word_count: (n(rng, 20.0, 8.0)).max(1.0),
            }
        };

        let center = if positive {
            &self.archetype_centers[archetype]
        } else {
            &self.negative_centers[rng.gen_range(0..self.negative_centers.len())]
        };
        let spread = if positive { profile.style_noise } else { profile.style_noise * 1.6 };
        let style = center.iter().map(|&c| c + (standard_normal(rng) * spread) as f32).collect();

        // Old-modality label drift: the curated text corpus's labels are
        // noisy relative to the live task definition. Noise is
        // class-asymmetric: a `old_label_noise` fraction of true positives
        // were missed by reviewers, and false positives occur at a rate
        // proportional to the class prior (human labels are precise but
        // definitions drift).
        let visible_positive = if modality == ModalityKind::Text {
            let flip = if positive {
                rng.gen::<f64>() < profile.old_label_noise
            } else {
                rng.gen::<f64>() < profile.old_label_noise * profile.positive_rate
            };
            positive != flip
        } else {
            positive
        };
        LatentEntity {
            label: if visible_positive { Label::Positive } else { Label::Negative },
            archetype,
            borderline,
            cats,
            numerics,
            style,
        }
    }

    /// Applies every service to an entity, producing a schema-shaped row.
    pub fn featurize(
        &self,
        entity: &LatentEntity,
        modality: ModalityKind,
        rng: &mut StdRng,
    ) -> Vec<FeatureValue> {
        self.services.iter().map(|spec| self.apply_service(spec, entity, modality, rng)).collect()
    }

    /// Like [`World::featurize`], but routes every service response through
    /// a resilient [`AccessLayer`](cm_faults::AccessLayer) so the plan's
    /// faults (and the client's retries / breaker) apply. `row` is the
    /// layer-global call row (unique per entity across every dataset the
    /// layer serves).
    ///
    /// The base value is computed from the world rng *first* and the fault
    /// layer draws from its own per-call streams, so with faults disabled
    /// the output is bit-identical to [`World::featurize`] — and in a
    /// faulted run, unfaulted services still see exactly the clean values.
    pub fn featurize_via(
        &self,
        entity: &LatentEntity,
        modality: ModalityKind,
        rng: &mut StdRng,
        access: &mut cm_faults::AccessLayer,
        row: u64,
    ) -> Vec<FeatureValue> {
        self.services
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let base = self.apply_service(spec, entity, modality, rng);
                access.apply(i, row, base)
            })
            .collect()
    }

    /// Registry services as [`ServiceDescriptor`](cm_faults::ServiceDescriptor)s
    /// for building an access layer: names plus categorical vocabulary sizes
    /// (used to synthesize and detect out-of-vocabulary corruption).
    pub fn service_descriptors(&self) -> Vec<cm_faults::ServiceDescriptor> {
        self.services
            .iter()
            .map(|spec| {
                let vocab = match spec.kind {
                    ServiceKind::Categorical { attr, .. } => Some(ATTR_VOCAB_SIZES[attr]),
                    _ => None,
                };
                cm_faults::ServiceDescriptor::new(spec.name.clone(), vocab)
            })
            .collect()
    }

    fn apply_service(
        &self,
        spec: &ServiceSpec,
        entity: &LatentEntity,
        modality: ModalityKind,
        rng: &mut StdRng,
    ) -> FeatureValue {
        let coverage = spec.coverage.get(modality);
        if coverage <= 0.0 || rng.gen::<f64>() >= coverage {
            return FeatureValue::Missing;
        }
        match &spec.kind {
            ServiceKind::Categorical { attr, accuracy, noise_cats } => {
                let acc = accuracy.get(modality);
                let shift = self.config.task.profile.modality_shift;
                // Vocabulary drift: a non-text service sometimes reports an
                // indicative category under a different (aliased) id — the
                // image topic model's taxonomy is not the text model's.
                // This is the class-conditional half of the modality gap:
                // a text-trained model keyed on the canonical ids misses
                // the aliased occurrences.
                let remap_prob = match modality {
                    ModalityKind::Text => 0.0,
                    ModalityKind::Image => (0.55 * shift).min(0.9),
                    ModalityKind::Video => (0.6 * shift).min(0.9),
                };
                let n_ind = ATTR_INDICATIVE[*attr];
                let vocab = ATTR_VOCAB_SIZES[*attr];
                let mut observed = CatSet::new();
                for id in entity.cats[*attr].iter() {
                    if rng.gen::<f64>() < acc {
                        if id < n_ind && rng.gen::<f64>() < remap_prob {
                            observed.insert(vocab - 1 - id);
                        } else {
                            observed.insert(id);
                        }
                    }
                }
                if *noise_cats > 0 {
                    let n_noise = rng.gen_range(0..=*noise_cats);
                    for _ in 0..n_noise {
                        observed.insert(self.sample_background(*attr, modality, rng));
                    }
                }
                FeatureValue::Categorical(observed)
            }
            ServiceKind::Numeric { source, noise_sd } => {
                let base = match source {
                    NumericSource::UserReports => entity.numerics.report_propensity * 4.0,
                    NumericSource::ShareVelocity => entity.numerics.virality,
                    NumericSource::UrlReputation => entity.numerics.url_reputation,
                    NumericSource::DomainAge => entity.numerics.domain_age,
                    NumericSource::PageQuality => entity.numerics.page_quality,
                    NumericSource::WordCount => entity.numerics.word_count,
                    NumericSource::ImgQuality => 0.6 + 0.2 * entity.numerics.page_quality,
                    NumericSource::OcrDensity => entity.numerics.ocr_density,
                };
                // Content-model-based scores shift across modalities (the
                // model observing an image scores differently than the one
                // observing text); aggregate statistics are metadata joins
                // and do not shift.
                let (scale, offset) = numeric_modality_shift(
                    *source,
                    modality,
                    self.config.task.profile.modality_shift,
                );
                FeatureValue::Numeric(base * scale + offset + standard_normal(rng) * noise_sd)
            }
            ServiceKind::Embedding { dim } => {
                let mut emb = self.projection.matvec(&entity.style);
                debug_assert_eq!(emb.len(), *dim);
                let signal = self.config.task.profile.embedding_label_signal as f32;
                if entity.is_positive() {
                    cm_linalg::axpy(signal, &self.label_direction, &mut emb);
                }
                for v in &mut emb {
                    *v += (standard_normal(rng) * 0.6) as f32;
                }
                FeatureValue::Embedding(emb)
            }
        }
    }

    /// Samples a background category id for `attr`, shifted per modality so
    /// the marginal category distributions differ across modalities.
    ///
    /// Besides the Zipf-offset shift, non-text modalities suffer *indicative
    /// collisions*: a slice of the indicative vocabulary (ids ≡ 1 mod 3) is
    /// also ordinary background content there (a topic that flags text posts
    /// may be everyday imagery in photos). A text-trained model keyed on
    /// those ids drowns in false positives on the new modality; a model
    /// trained in-modality learns to discount them.
    fn sample_background(&self, attr: usize, modality: ModalityKind, rng: &mut StdRng) -> u32 {
        let shift = self.config.task.profile.modality_shift;
        let collide_prob = match modality {
            ModalityKind::Text => 0.0,
            ModalityKind::Image => 0.15 * shift,
            ModalityKind::Video => 0.25 * shift,
        };
        let n_ind = ATTR_INDICATIVE[attr];
        if n_ind >= 3 && rng.gen::<f64>() < collide_prob {
            let slice_len = n_ind.div_ceil(3);
            let id = 1 + 3 * rng.gen_range(0..slice_len);
            if id < n_ind {
                return id;
            }
        }
        let cdf = &self.background_cdf[attr];
        let n = cdf.len() as u32;
        if n == 0 {
            return 0;
        }
        let u: f64 = rng.gen();
        let rank = cdf.partition_point(|&c| c < u) as u32;
        let shift = self.config.task.profile.modality_shift;
        let offset = match modality {
            ModalityKind::Text => 0,
            ModalityKind::Image => (shift * f64::from(n) * 0.5) as u32,
            ModalityKind::Video => (shift * f64::from(n)) as u32,
        };
        ATTR_INDICATIVE[attr] + (rank.min(n - 1) + offset) % n
    }
}

/// Per-modality `(scale, offset)` applied to content-model-based numeric
/// observations. Aggregate statistics (`UserReports`, `ShareVelocity`,
/// `DomainAge`, `WordCount`) are keyed on metadata and identical across
/// modalities; model-derived scores drift with the modality, proportional
/// to the task's `modality_shift`.
fn numeric_modality_shift(source: NumericSource, modality: ModalityKind, shift: f64) -> (f64, f64) {
    let model_based = matches!(
        source,
        NumericSource::UrlReputation
            | NumericSource::PageQuality
            | NumericSource::ImgQuality
            | NumericSource::OcrDensity
    );
    if !model_based {
        return (1.0, 0.0);
    }
    match modality {
        ModalityKind::Text => (1.0, 0.0),
        ModalityKind::Image => (1.0 - 0.8 * shift, 0.30 * shift),
        ModalityKind::Video => (1.0 - 1.0 * shift, 0.45 * shift),
    }
}

/// How strongly positives *express* each attribute per modality.
///
/// The paper's motivation: "direct translations of policy violations are
/// unclear when moving from a static to sequential modality" — a violation
/// shows up as keywords and phrasing in text but as depicted objects and
/// page context in images. Text-leaning attributes (keywords, rule flags,
/// subtopics) lose expression on richer modalities proportionally to the
/// task's modality shift; image-leaning attributes (objects, page topics,
/// sentiment) lose expression on text. This is what makes a text-trained
/// model miss new-modality positives that an in-modality weakly supervised
/// model catches (§6.6).
fn attr_modality_signal(attr: usize, modality: ModalityKind, shift: f64) -> f64 {
    use crate::services::Attr::*;
    let text_leaning = attr == Keywords as usize
        || attr == RuleFlags as usize
        || attr == Subtopics as usize
        || attr == UrlCategory as usize;
    let image_leaning = attr == Objects as usize
        || attr == PageTopics as usize
        || attr == Sentiment as usize
        || attr == PageKeywords as usize;
    match modality {
        ModalityKind::Text => {
            if image_leaning {
                (1.0 - 1.8 * shift).max(0.12)
            } else {
                1.0
            }
        }
        ModalityKind::Image => {
            if text_leaning {
                (1.0 - 1.0 * shift).max(0.20)
            } else {
                1.0
            }
        }
        ModalityKind::Video => {
            if text_leaning {
                (1.0 - 1.6 * shift).max(0.10)
            } else {
                1.0
            }
        }
    }
}

/// Maps an attribute-space index to its owning feature-set index `[A..D]`.
fn attr_feature_set_index(attr: usize) -> usize {
    use crate::services::Attr::*;
    match attr {
        a if a == UrlCategory as usize => 0,
        a if a == Keywords as usize || a == RuleFlags as usize => 1,
        a if a == Topics as usize
            || a == Subtopics as usize
            || a == Entities as usize
            || a == Sentiment as usize
            || a == Objects as usize =>
        {
            2
        }
        a if a == PageTopics as usize || a == PageKeywords as usize => 3,
        _ => unreachable!("unknown attribute index {attr}"),
    }
}

fn build_schema(services: &[ServiceSpec]) -> FeatureSchema {
    let mut defs = Vec::with_capacity(services.len());
    for spec in services {
        let def = match &spec.kind {
            ServiceKind::Categorical { attr, .. } => {
                let vocab = Vocabulary::from_names(
                    (0..ATTR_VOCAB_SIZES[*attr]).map(|i| format!("{}:{i}", spec.name)),
                );
                FeatureDef::categorical(&spec.name, spec.set, spec.serving, vocab)
            }
            ServiceKind::Numeric { .. } => FeatureDef::numeric(&spec.name, spec.set, spec.serving),
            ServiceKind::Embedding { dim } => {
                FeatureDef::embedding(&spec.name, *dim, spec.set, spec.serving)
            }
        };
        defs.push(def);
    }
    FeatureSchema::from_defs(defs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{TaskConfig, TaskId};

    fn world() -> World {
        World::build(WorldConfig::new(TaskConfig::paper(TaskId::Ct1).scaled(0.01), 7))
    }

    #[test]
    fn schema_matches_registry() {
        let w = world();
        assert_eq!(w.schema().len(), w.services().len());
        assert_eq!(w.schema().column("topics"), Some(5));
        assert!(w.schema().column("img_embedding").is_some());
    }

    #[test]
    fn entity_sampling_is_seed_deterministic() {
        let w = world();
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = w.sample_entity(ModalityKind::Text, &mut r1);
        let b = w.sample_entity(ModalityKind::Text, &mut r2);
        assert_eq!(a.label, b.label);
        assert_eq!(a.cats, b.cats);
        assert_eq!(a.style, b.style);
    }

    #[test]
    fn positive_rate_is_approximately_calibrated() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let pos =
            (0..n).filter(|_| w.sample_entity(ModalityKind::Image, &mut rng).is_positive()).count();
        let rate = pos as f64 / n as f64;
        let target = w.config().task.profile.positive_rate;
        assert!((rate - target).abs() < 0.01, "rate {rate} vs target {target}");
    }

    #[test]
    fn positives_express_more_indicative_categories() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(2);
        let mut pos_hits = 0usize;
        let mut neg_hits = 0usize;
        let (mut n_pos, mut n_neg) = (0usize, 0usize);
        let topics = crate::services::Attr::Topics as usize;
        for _ in 0..30_000 {
            let e = w.sample_entity(ModalityKind::Text, &mut rng);
            let hit = e.cats[topics].iter().any(|id| id < ATTR_INDICATIVE[topics]);
            if e.is_positive() {
                n_pos += 1;
                pos_hits += usize::from(hit);
            } else {
                n_neg += 1;
                neg_hits += usize::from(hit);
            }
        }
        let pos_rate = pos_hits as f64 / n_pos.max(1) as f64;
        let neg_rate = neg_hits as f64 / n_neg.max(1) as f64;
        assert!(pos_rate > neg_rate * 3.0, "indicative rate pos {pos_rate} vs neg {neg_rate}");
    }

    #[test]
    fn borderline_positives_have_weaker_signal() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(3);
        let topics = crate::services::Attr::Topics as usize;
        let (mut head_hits, mut head_n, mut bord_hits, mut bord_n) = (0usize, 0, 0usize, 0);
        for _ in 0..200_000 {
            let e = w.sample_entity(ModalityKind::Text, &mut rng);
            if !e.is_positive() {
                continue;
            }
            let hit = e.cats[topics].iter().any(|id| id < ATTR_INDICATIVE[topics]);
            if e.borderline {
                bord_n += 1;
                bord_hits += usize::from(hit);
            } else {
                head_n += 1;
                head_hits += usize::from(hit);
            }
        }
        assert!(head_n > 100 && bord_n > 100);
        let head_rate = head_hits as f64 / head_n as f64;
        let bord_rate = bord_hits as f64 / bord_n as f64;
        assert!(head_rate > bord_rate * 1.5, "head {head_rate} vs borderline {bord_rate}");
    }

    #[test]
    fn featurize_respects_modality_applicability() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(4);
        let e = w.sample_entity(ModalityKind::Text, &mut rng);
        let row = w.featurize(&e, ModalityKind::Text, &mut rng);
        let emb_col = w.schema().column("img_embedding").unwrap();
        let wc_col = w.schema().column("word_count").unwrap();
        assert!(row[emb_col].is_missing(), "text rows must not get image embeddings");
        assert!(!row[wc_col].is_missing() || w.services()[wc_col].coverage.text < 1.0);

        let e = w.sample_entity(ModalityKind::Image, &mut rng);
        let row = w.featurize(&e, ModalityKind::Image, &mut rng);
        assert!(row[wc_col].is_missing(), "image rows must not get word counts");
    }

    #[test]
    fn modality_shift_changes_background_marginals() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(5);
        let attr = crate::services::Attr::Topics as usize;
        let mut text_counts = vec![0u32; ATTR_VOCAB_SIZES[attr] as usize];
        let mut image_counts = vec![0u32; ATTR_VOCAB_SIZES[attr] as usize];
        for _ in 0..20_000 {
            text_counts[w.sample_background(attr, ModalityKind::Text, &mut rng) as usize] += 1;
            image_counts[w.sample_background(attr, ModalityKind::Image, &mut rng) as usize] += 1;
        }
        // Total-variation distance between the two marginals should be
        // clearly positive under a 0.35 shift.
        let n = 20_000f64;
        let tv: f64 = text_counts
            .iter()
            .zip(&image_counts)
            .map(|(&a, &b)| (f64::from(a) / n - f64::from(b) / n).abs())
            .sum::<f64>()
            / 2.0;
        assert!(tv > 0.1, "total variation {tv} too small for shift");
    }

    #[test]
    fn embedding_encodes_label_signal() {
        // Paired test: two entities identical except for the label must
        // differ in embedding space by exactly `embedding_label_signal`
        // along the (unit) label direction, given identical observation
        // noise (same rng seed).
        let w = world();
        let mut rng = StdRng::seed_from_u64(6);
        let mut pos = w.sample_entity(ModalityKind::Image, &mut rng);
        pos.label = Label::Positive;
        let mut neg = pos.clone();
        neg.label = Label::Negative;
        let emb_col = w.schema().column("img_embedding").unwrap();
        let get = |e: &LatentEntity| loop {
            // Coverage is stochastic; retry until the embedding is present.
            let mut r = StdRng::seed_from_u64(99);
            let row = w.featurize(e, ModalityKind::Image, &mut r);
            if let FeatureValue::Embedding(v) = &row[emb_col] {
                break v.clone();
            }
        };
        let ep = get(&pos);
        let en = get(&neg);
        let diff: Vec<f32> = ep.iter().zip(&en).map(|(a, b)| a - b).collect();
        let gap = f64::from(cm_linalg::l2_norm(&diff));
        let signal = w.config().task.profile.embedding_label_signal;
        assert!(
            (gap - signal).abs() < 1e-4,
            "embedding label gap {gap} vs configured signal {signal}"
        );
    }

    #[test]
    fn sentiment_ids_stay_in_vocab() {
        let w = world();
        let mut rng = StdRng::seed_from_u64(8);
        let col = w.schema().column("sentiment").unwrap();
        for _ in 0..500 {
            let e = w.sample_entity(ModalityKind::Image, &mut rng);
            let row = w.featurize(&e, ModalityKind::Image, &mut rng);
            if let FeatureValue::Categorical(set) = &row[col] {
                for id in set.iter() {
                    assert!(id < ATTR_VOCAB_SIZES[crate::services::Attr::Sentiment as usize]);
                }
            }
        }
    }
}
