#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md). Every step must pass before merge.
#
# The build is hermetic: no network, no registry deps. Everything below
# runs offline against the in-tree workspace only.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> xtask lint --self-test (lint engine vs seeded corpus)"
cargo run -q -p xtask -- lint --self-test

echo "==> xtask lint (layer 1: semantic source lints)"
mkdir -p results
cargo run -q -p xtask -- lint --json > results/lint_report.json

echo "==> xtask validate --self-test (validator vs pinned spec corpus)"
cargo run -q -p xtask -- validate --self-test

echo "==> xtask validate (layer 2: specs + pipeline-graph validator)"
cargo run -q -p xtask -- validate --json > results/validate_report.json

echo "==> xtask validate --seeded-negatives (gate self-test)"
cargo run -q -p xtask -- validate --seeded-negatives

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (CM_THREADS=1)"
CM_THREADS=1 cargo test -q --workspace

echo "==> cargo test (CM_THREADS=4)"
CM_THREADS=4 cargo test -q --workspace

echo "==> fault matrix (CM_THREADS=2)"
CM_THREADS=2 cargo test -q --test fault_matrix

echo "==> CM_FAULTS smoke: fault drill must be thread-invariant"
FAULT_SPEC='seed=13;topics=unavailable@0.4;keywords=transient(2)@0.5;user_reports=corrupt@0.3'
CM_FAULTS="$FAULT_SPEC" CM_THREADS=1 cargo run -q --release --example fault_drill \
    > /tmp/cm_fault_drill_t1.out
CM_FAULTS="$FAULT_SPEC" CM_THREADS=4 cargo run -q --release --example fault_drill \
    > /tmp/cm_fault_drill_t4.out
diff /tmp/cm_fault_drill_t1.out /tmp/cm_fault_drill_t4.out
echo "    fault drill output identical across thread counts"

echo "==> shard smoke: streamed curation must be bit-identical to resident"
# Three shard sizes (1 row, a prime, whole-corpus) at two thread counts;
# the example exits non-zero on the first divergence.
CM_THREADS=1 cargo run -q --release --example shard_smoke
CM_THREADS=4 cargo run -q --release --example shard_smoke

echo "==> bench smoke: scale group, capped corpus"
# Executes the sharded scale sweep once at a small row cap (compile +
# run guard; the committed results/BENCH_scale.json comes from a full
# uncapped run).
CM_SCALE_MAX_ROWS=20000 CM_SCALE_JSON=/tmp/cm_bench_scale_smoke.json \
    cargo bench -q -p cm-bench --bench substrates -- scale

echo "==> bench smoke: kernels group, 1 sample"
# Executes every columnar hot-path kernel benchmark once (compile +
# run guard only; timings at this sample size are meaningless).
CM_BENCH_SAMPLES=1 cargo bench -q -p cm-bench --bench substrates -- kernels

echo "ci: all gates passed"
