//@ path: crates/serve/src/snapshot.rs
// Seeded negative: the snapshot module itself owns the checkpoint type;
// the checkpoint-drift rule is path-exempt here. Other code goes through
// capture/save/load with type inference, which also stays silent.

pub struct Checkpoint {
    pub version: u32,
}

pub fn capture(version: u32) -> Checkpoint {
    Checkpoint { version }
}

pub fn roundtrip(version: u32) -> u32 {
    // The foreign-code idiom: an inferred binding, no type name.
    let cp = capture(version);
    cp.version
}
