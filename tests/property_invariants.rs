//! Property-based tests on cross-crate invariants (proptest).

use cross_modal::eval::{auprc, roc_auc};
use cross_modal::featurespace::{
    normalized_similarity, CatSet, FeatureDef, FeatureSchema, FeatureSet, FeatureTable,
    FeatureValue, ServingMode, SimilarityConfig, Vocabulary,
};
use cross_modal::labelmodel::{majority_vote, LabelMatrix};
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<FeatureSchema> {
    Arc::new(FeatureSchema::from_defs(vec![
        FeatureDef::numeric("n", FeatureSet::A, ServingMode::Servable),
        FeatureDef::categorical(
            "c",
            FeatureSet::C,
            ServingMode::Servable,
            Vocabulary::from_names((0..8).map(|i| format!("v{i}"))),
        ),
    ]))
}

fn row_strategy() -> impl Strategy<Value = Vec<FeatureValue>> {
    (
        prop::option::of(-100.0f64..100.0),
        prop::option::of(prop::collection::vec(0u32..8, 0..5)),
    )
        .prop_map(|(num, cats)| {
            vec![
                num.map_or(FeatureValue::Missing, FeatureValue::Numeric),
                cats.map_or(FeatureValue::Missing, |ids| {
                    FeatureValue::Categorical(CatSet::from_ids(ids))
                }),
            ]
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip: rows pushed into a table come back value-identical.
    #[test]
    fn table_round_trips_rows(rows in prop::collection::vec(row_strategy(), 1..20)) {
        let mut table = FeatureTable::new(schema());
        for row in &rows {
            table.push_row(row);
        }
        for (r, row) in rows.iter().enumerate() {
            prop_assert_eq!(&table.row(r), row);
        }
    }

    /// gather is a projection: gathering all indices reproduces the table.
    #[test]
    fn gather_identity(rows in prop::collection::vec(row_strategy(), 1..15)) {
        let mut table = FeatureTable::new(schema());
        for row in &rows {
            table.push_row(row);
        }
        let all: Vec<usize> = (0..table.len()).collect();
        let g = table.gather(&all);
        for r in 0..table.len() {
            prop_assert_eq!(table.row(r), g.row(r));
        }
    }

    /// Similarity is symmetric, bounded, and maximal on identical rows.
    #[test]
    fn similarity_axioms(rows in prop::collection::vec(row_strategy(), 2..12)) {
        let mut table = FeatureTable::new(schema());
        for row in &rows {
            table.push_row(row);
        }
        let cfg = SimilarityConfig::uniform(vec![0, 1]);
        for i in 0..table.len() {
            for j in 0..table.len() {
                let a = normalized_similarity((&table, i), (&table, j), &cfg);
                let b = normalized_similarity((&table, j), (&table, i), &cfg);
                prop_assert!((a - b).abs() < 1e-12);
                prop_assert!((0.0..=1.0).contains(&a));
            }
            let present = table.is_present(i, 0) || table.is_present(i, 1);
            if present {
                let self_sim = normalized_similarity((&table, i), (&table, i), &cfg);
                prop_assert!((self_sim - 1.0).abs() < 1e-9);
            }
        }
    }

    /// AUPRC is invariant under strictly monotone score transforms and
    /// bounded by [0, 1]; ROC-AUC of complemented labels mirrors around 0.5.
    #[test]
    fn ranking_metric_invariants(
        scores in prop::collection::vec(-50.0f64..50.0, 3..40),
        flips in prop::collection::vec(any::<bool>(), 3..40),
    ) {
        let n = scores.len().min(flips.len());
        let scores = &scores[..n];
        let labels = &flips[..n];
        let ap = auprc(scores, labels);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ap));
        // Monotone transform: exp(x/25) keeps the order (and stays finite).
        let transformed: Vec<f64> = scores.iter().map(|&s| (s / 25.0).exp()).collect();
        let ap_t = auprc(&transformed, labels);
        prop_assert!((ap - ap_t).abs() < 1e-9, "{} vs {}", ap, ap_t);

        let auc = roc_auc(scores, labels);
        let inverted: Vec<f64> = scores.iter().map(|&s| -s).collect();
        let auc_inv = roc_auc(&inverted, labels);
        let has_both = labels.iter().any(|&l| l) && labels.iter().any(|&l| !l);
        if has_both {
            prop_assert!((auc + auc_inv - 1.0).abs() < 1e-9);
        }
    }

    /// Majority vote respects unanimity: rows where all non-abstain votes
    /// agree get the extreme label.
    #[test]
    fn majority_vote_unanimity(
        votes in prop::collection::vec(prop::sample::select(vec![-1i8, 0, 1]), 4..60),
    ) {
        let n_lfs = 4;
        let n_rows = votes.len() / n_lfs;
        let votes = &votes[..n_rows * n_lfs];
        let names = (0..n_lfs).map(|i| format!("lf{i}")).collect();
        let m = LabelMatrix::from_votes(n_rows, n_lfs, votes.to_vec(), names);
        let mv = majority_vote(&m);
        for (r, &value) in mv.iter().enumerate() {
            let row = m.row(r);
            let pos = row.iter().filter(|&&v| v > 0).count();
            let neg = row.iter().filter(|&&v| v < 0).count();
            if pos > 0 && neg == 0 {
                prop_assert_eq!(value, 1.0);
            } else if neg > 0 && pos == 0 {
                prop_assert_eq!(value, 0.0);
            } else if pos == 0 && neg == 0 {
                prop_assert_eq!(value, 0.5);
            }
            prop_assert!((0.0..=1.0).contains(&value));
        }
    }
}
