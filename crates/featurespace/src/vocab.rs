//! Per-feature category vocabularies (string <-> id dictionary encoding).

use std::collections::HashMap;

/// Interned category vocabulary for one categorical feature.
///
/// The paper's services emit multivalent categorical features "with
/// vocabularies of up to several thousand categories" (§6.2); dictionary
/// encoding keeps the columnar store and itemset miner working over dense
/// `u32` ids.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a vocabulary from a list of distinct names.
    ///
    /// # Panics
    /// Panics if a name appears twice.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut v = Self::new();
        for n in names {
            let n = n.into();
            assert!(!v.index.contains_key(&n), "duplicate vocabulary entry {n:?}");
            v.intern(&n);
        }
        v
    }

    /// Returns the id for `name`, interning it if new.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        // Vocabularies are bounded by the registry; 4B names cannot occur.
        // lint: allow(expect)
        let id = u32::try_from(self.names.len()).expect("vocabulary overflow");
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up an existing id.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// The name for an id.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned categories.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Rebuilds the reverse index (needed after deserialization, where the
    /// map is skipped).
    pub fn rebuild_index(&mut self) {
        self.index = self.names.iter().enumerate().map(|(i, n)| (n.clone(), i as u32)).collect();
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (i as u32, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("dog");
        let b = v.intern("park");
        let a2 = v.intern("dog");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn round_trip_name_and_id() {
        let mut v = Vocabulary::new();
        let id = v.intern("outdoor");
        assert_eq!(v.name(id), Some("outdoor"));
        assert_eq!(v.get("outdoor"), Some(id));
        assert_eq!(v.get("indoor"), None);
        assert_eq!(v.name(99), None);
    }

    #[test]
    fn from_names_assigns_sequential_ids() {
        let v = Vocabulary::from_names(["a", "b", "c"]);
        assert_eq!(v.get("a"), Some(0));
        assert_eq!(v.get("c"), Some(2));
        let collected: Vec<_> = v.iter().collect();
        assert_eq!(collected, vec![(0, "a"), (1, "b"), (2, "c")]);
    }

    #[test]
    #[should_panic(expected = "duplicate vocabulary entry")]
    fn from_names_rejects_duplicates() {
        Vocabulary::from_names(["x", "x"]);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut v = Vocabulary::from_names(["p", "q"]);
        v.index.clear();
        assert_eq!(v.get("p"), None);
        v.rebuild_index();
        assert_eq!(v.get("p"), Some(0));
        assert_eq!(v.get("q"), Some(1));
    }
}
