//! Regenerates **Figure 6**: the organizational-resources factor analysis
//! for CT 1 — an eight-step ladder that alternately adds feature sets to
//! the text and image modalities, measuring relative AUPRC of the early-
//! fusion model at each step.
//!
//! Expected shape (paper): monotone-ish growth from `T+A` (far below the
//! baseline) to `T+ABCD, I+ABCD`; adding a feature set typically helps more
//! than adding the other modality with the same sets.
//!
//! Env: `CM_SCALE` (default 1.0), `CM_SEEDS` (default 3), `CM_JSON`.

use cm_bench::{env_scale, env_seeds, maybe_write_json, mean, TaskRun};
use cm_featurespace::FeatureSet;
use cm_json::{Json, ToJson};
use cm_orgsim::TaskId;
use cm_pipeline::{curate, LabelSource, Scenario};

struct Step {
    label: String,
    relative_auprc: f64,
    auprc: f64,
}

impl ToJson for Step {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", self.label.to_json()),
            ("relative_auprc", self.relative_auprc.to_json()),
            ("auprc", self.auprc.to_json()),
        ])
    }
}

fn ladder() -> Vec<(&'static str, &'static str, &'static str)> {
    // (label, text sets, image sets; empty image = text only)
    vec![
        ("T+A (no image)", "A", ""),
        ("T+A, I+A", "A", "A"),
        ("T+AB, I+A", "AB", "A"),
        ("T+AB, I+AB", "AB", "AB"),
        ("T+ABC, I+AB", "ABC", "AB"),
        ("T+ABC, I+ABC", "ABC", "ABC"),
        ("T+ABCD, I+ABC", "ABCD", "ABC"),
        ("T+ABCD, I+ABCD", "ABCD", "ABCD"),
    ]
}

fn main() {
    let scale = env_scale(1.0);
    let seeds = env_seeds(3);
    println!("Figure 6 (CT 1 factor analysis, scale {scale}, {} seed(s))", seeds.len());
    println!("{:<18} {:>10} {:>10}", "step", "AUPRC", "relative");

    let mut acc: Vec<Vec<f64>> = vec![Vec::new(); ladder().len()];
    let mut baselines = Vec::new();
    for &seed in &seeds {
        let run = TaskRun::new(TaskId::Ct1, scale, seed, Some((4_000.0 * scale) as usize));
        let runner = run.runner();
        let curation = curate(&run.data, &run.curation_config(seed));
        baselines.push(runner.baseline_auprc().unwrap());
        for (i, (label, text, image)) in ladder().into_iter().enumerate() {
            let text_sets = FeatureSet::parse_ladder(text).unwrap();
            let image_sets = if image.is_empty() {
                text_sets.clone() // test encoding still needs sets
            } else {
                FeatureSet::parse_ladder(image).unwrap()
            };
            let scenario = Scenario {
                name: label.to_owned(),
                text_sets,
                image_sets,
                image_labels: (!image.is_empty()).then_some(LabelSource::Weak),
                include_modality_specific: !image.is_empty(),
                strategy: cm_pipeline::FusionStrategy::Early,
            };
            acc[i].push(runner.run(&scenario, Some(&curation)).unwrap().auprc);
        }
    }
    let baseline = mean(&baselines);
    let mut steps = Vec::new();
    for (i, (label, _, _)) in ladder().into_iter().enumerate() {
        let auprc = mean(&acc[i]);
        println!("{label:<18} {auprc:>10.4} {:>9.2}x", auprc / baseline);
        steps.push(Step { label: label.to_owned(), relative_auprc: auprc / baseline, auprc });
    }

    // The paper's headline: average gain from adding a feature set vs
    // adding a modality at fixed sets.
    let rel: Vec<f64> = steps.iter().map(|s| s.relative_auprc).collect();
    let feature_steps = [(1, 2), (3, 4), (5, 6)]; // T gains a set
    let modality_steps = [(2, 3), (4, 5), (6, 7)]; // I catches up
    let avg = |pairs: &[(usize, usize)]| {
        mean(&pairs.iter().map(|&(a, b)| rel[b] - rel[a]).collect::<Vec<_>>())
    };
    println!(
        "\navg step gain: adding a feature set {:+.3}, adding it to the other modality {:+.3}",
        avg(&feature_steps),
        avg(&modality_steps)
    );
    maybe_write_json(&steps);
}
