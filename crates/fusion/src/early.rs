//! Early fusion: one model over the union of all modalities' rows.

use cm_linalg::Matrix;
use cm_models::{train_model, ModelKind, TrainConfig, TrainedModel};

use crate::{concat_parts, ModalityData};

/// The paper's best-performing strategy (§6.6): merge every modality and
/// label source into a single dataset in the shared layout and train once.
pub struct EarlyFusionModel {
    model: TrainedModel,
}

impl EarlyFusionModel {
    /// Trains over the concatenation of `parts`.
    ///
    /// # Panics
    /// Panics if `parts` is empty or widths differ.
    pub fn train(
        parts: &[ModalityData],
        kind: &ModelKind,
        config: &TrainConfig,
        validation: Option<(&Matrix, &[f64])>,
    ) -> Self {
        let (x, y) = concat_parts(parts);
        Self { model: train_model(kind, &x, &y, config, validation) }
    }

    /// Positive-class probabilities in the shared layout.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        self.model.predict_proba(x)
    }

    /// The underlying trained model.
    pub fn inner(&self) -> &TrainedModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use cm_eval::auprc;

    use super::*;
    use crate::testutil::two_modality_task;

    #[test]
    fn combining_modalities_beats_single_modality() {
        let (old, new, xt, yt) = two_modality_task(600, 3);
        let kind = ModelKind::Mlp { hidden: vec![16] };
        let cfg = TrainConfig { epochs: 30, patience: None, ..Default::default() };
        let pos: Vec<bool> = yt.iter().map(|&v| v >= 0.5).collect();

        let both = EarlyFusionModel::train(&[old.clone(), new.clone()], &kind, &cfg, None);
        let old_only = EarlyFusionModel::train(&[old], &kind, &cfg, None);
        let ap_both = auprc(&both.predict_proba(&xt), &pos);
        let ap_old = auprc(&old_only.predict_proba(&xt), &pos);
        // Test rows are new-modality; the old-only model never saw the
        // new modality's specific feature and should do worse.
        assert!(ap_both > ap_old, "early fusion {ap_both} should beat old-only {ap_old}");
        assert!(ap_both > 0.6, "combined AUPRC too low: {ap_both}");
    }

    #[test]
    fn works_with_logistic_family() {
        let (old, new, xt, yt) = two_modality_task(400, 5);
        let cfg = TrainConfig::default();
        let m = EarlyFusionModel::train(&[old, new], &ModelKind::Logistic, &cfg, None);
        let pos: Vec<bool> = yt.iter().map(|&v| v >= 0.5).collect();
        assert!(auprc(&m.predict_proba(&xt), &pos) > 0.55);
    }
}
