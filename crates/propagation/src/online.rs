//! Online k-NN graph maintenance for the incremental serving loop.
//!
//! The batch [`GraphBuilder`](crate::GraphBuilder) rebuilds the whole
//! graph from scratch; a long-running curation service cannot afford that
//! on every arrival batch. [`OnlineGraph`] instead *grows* an anchor-based
//! approximate graph: each new row is routed to its nearest existing
//! anchors, scanned only against co-routed rows, and — while the anchor
//! pool is below its size target — promoted to an anchor itself so later
//! arrivals keep routing well as the corpus grows.
//!
//! Two contracts matter for serving:
//!
//! - **Cut invariance**: inserting rows one at a time, or in arrival
//!   batches of any size, produces the identical edge list. Rows are
//!   inserted strictly sequentially (each sees exactly the anchors and
//!   members left by its predecessors), so batch boundaries are invisible
//!   by construction — and so is the thread count.
//! - **Resumability**: [`OnlineGraph::snapshot`] exports the full
//!   routing state ([`OnlineGraphState`]); a graph restored from it
//!   continues bit-identically to one that never stopped. This is what the
//!   serve checkpoint stores instead of edge-by-edge deltas.
//!
//! Earlier rows are never re-routed when a new anchor appears — that is
//! the accepted approximation cost of avoiding full rebuilds, mirroring
//! how Expander-style systems absorb incremental updates between offline
//! rebuilds.

use cm_featurespace::{FrozenTable, PairKernel, SimilarityConfig};

use crate::builder::{candidate_stride, route_row, TopK};
use crate::graph::SparseGraph;

/// Anchor-pool size target for a corpus of `n` rows. Matches the batch
/// builder's [`GraphBuilder::approximate`](crate::GraphBuilder::approximate)
/// sizing so online and batch graphs face comparable routing fan-out.
pub fn target_anchor_count(n: usize) -> usize {
    ((n as f64).sqrt() as usize).clamp(16, 512)
}

/// Exported routing state of an [`OnlineGraph`]: everything needed to
/// resume insertion bit-identically. Serialized into the serve checkpoint
/// by `cm-serve`'s snapshot module (the `checkpoint-drift` lint confines
/// field access to that module and to this crate).
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineGraphState {
    /// Rows inserted so far; the next insertion starts here.
    pub n_rows: usize,
    /// Row ids promoted to anchors, in promotion order.
    pub anchors: Vec<u32>,
    /// Per-anchor member lists (rows routed to that anchor), aligned with
    /// `anchors`.
    pub anchor_members: Vec<Vec<u32>>,
    /// Accumulated `(src, dst, weight)` edges; `src` is always the newer
    /// row, symmetrization happens when the [`SparseGraph`] is built.
    pub edges: Vec<(u32, u32, f32)>,
}

/// Everything an [`OnlineGraph`] accreted since its last durable point:
/// the payload of one checkpoint delta record. Applying a run's deltas in
/// order to the starting [`OnlineGraphState`] reproduces the final state
/// bit-identically — see [`OnlineGraphState::apply_delta`].
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineGraphDelta {
    /// Total rows inserted after this delta (absolute, not an increment,
    /// so a replay can sanity-check monotonicity).
    pub n_rows: usize,
    /// Edges appended since the last durable point.
    pub new_edges: Vec<(u32, u32, f32)>,
    /// Members appended to anchors that already existed at the last
    /// durable point: `(anchor index, appended row ids)`.
    pub member_appends: Vec<(u32, Vec<u32>)>,
    /// Anchors promoted since the last durable point, with their full
    /// member lists: `(anchor row id, members)`.
    pub new_anchors: Vec<(u32, Vec<u32>)>,
}

/// Incrementally grown approximate k-NN graph.
#[derive(Debug, Clone)]
pub struct OnlineGraph {
    /// Neighbors kept per inserted row.
    pub k: usize,
    /// Anchors each new row is routed to.
    pub probes: usize,
    /// Cap on exact comparisons per inserted row.
    pub max_candidates: usize,
    /// Minimum similarity for an edge to exist at all.
    pub min_weight: f64,
    n_rows: usize,
    anchors: Vec<u32>,
    anchor_members: Vec<Vec<u32>>,
    edges: Vec<(u32, u32, f32)>,
    // Durable marks: how much of each list was already exported by the
    // last `export_delta` (or covered by the snapshot this graph was
    // restored from). `mark_members[i]` is the member count of anchor `i`
    // at that point, aligned with `anchors[..mark_anchors]` plus any
    // anchors promoted-then-exported since.
    mark_anchors: usize,
    mark_members: Vec<usize>,
    mark_edges: usize,
}

impl OnlineGraph {
    /// An empty graph keeping `k` neighbors per row, with the batch
    /// builder's default routing parameters (4 probes, 256 candidates,
    /// weight floor 0.05).
    pub fn new(k: usize) -> Self {
        OnlineGraph {
            k,
            probes: 4,
            max_candidates: 256,
            min_weight: 0.05,
            n_rows: 0,
            anchors: Vec::new(),
            anchor_members: Vec::new(),
            edges: Vec::new(),
            mark_anchors: 0,
            mark_members: Vec::new(),
            mark_edges: 0,
        }
    }

    /// Rows inserted so far.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Current anchor-pool size.
    pub fn n_anchors(&self) -> usize {
        self.anchors.len()
    }

    /// Accumulated edge count (pre-symmetrization).
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Inserts every row the frozen table holds beyond the rows already
    /// inserted. The table must be a prefix-stable view of the growing
    /// corpus: rows `0..self.n_rows()` are the previously inserted ones,
    /// in the same order.
    ///
    /// # Panics
    /// Panics if the table has fewer rows than were already inserted.
    pub fn insert_rows(&mut self, frozen: &FrozenTable<'_>, config: &SimilarityConfig) {
        assert!(
            frozen.len() >= self.n_rows,
            "frozen table shrank below the inserted prefix ({} < {})",
            frozen.len(),
            self.n_rows
        );
        if frozen.len() == self.n_rows {
            return;
        }
        let kernel = PairKernel::compile(frozen, config);
        for i in self.n_rows..frozen.len() {
            self.insert_row(&kernel, i);
        }
        self.n_rows = frozen.len();
    }

    fn insert_row(&mut self, kernel: &PairKernel<'_>, i: usize) {
        let scores: Vec<f64> = self.anchors.iter().map(|&a| kernel.pair(i, a as usize)).collect();
        let route = route_row(&scores, self.probes);
        let mut candidates: Vec<u32> = Vec::new();
        for &a in &route {
            candidates.extend_from_slice(&self.anchor_members[a]);
        }
        candidates.sort_unstable();
        candidates.dedup();
        let stride = candidate_stride(candidates.len(), self.max_candidates);
        let mut top = TopK::new(self.k);
        for &j in candidates.iter().step_by(stride) {
            let s = kernel.pair(i, j as usize);
            if s >= self.min_weight {
                top.push(j, s as f32);
            }
        }
        top.drain_into(i as u32, &mut self.edges);
        for &a in &route {
            self.anchor_members[a].push(i as u32);
        }
        // Grow the anchor pool toward its size target by promoting the
        // newest row; existing rows are never re-routed.
        if self.anchors.len() < target_anchor_count(i + 1) {
            self.anchors.push(i as u32);
            self.anchor_members.push(vec![i as u32]);
        }
    }

    /// Materializes the current graph (symmetrized CSR over all inserted
    /// rows). Rebuilding from the same edge list is deterministic, so the
    /// propagation stage sees identical graphs before and after a resume.
    pub fn graph(&self) -> SparseGraph {
        SparseGraph::from_edges(self.n_rows, &self.edges)
    }

    /// Exports the full routing state for checkpointing. Does not move
    /// the durable mark — pair with [`OnlineGraph::mark_durable`] when the
    /// snapshot becomes a new delta-log base.
    pub fn snapshot(&self) -> OnlineGraphState {
        OnlineGraphState {
            n_rows: self.n_rows,
            anchors: self.anchors.clone(),
            anchor_members: self.anchor_members.clone(),
            edges: self.edges.clone(),
        }
    }

    /// Declares everything inserted so far durable: the next
    /// [`OnlineGraph::export_delta`] reports only growth after this call.
    pub fn mark_durable(&mut self) {
        self.mark_anchors = self.anchors.len();
        self.mark_members = self.anchor_members.iter().map(Vec::len).collect();
        self.mark_edges = self.edges.len();
    }

    /// Exports everything inserted since the last durable point — cost
    /// proportional to the growth, not the graph — and advances the mark.
    /// Inserting the same rows then exporting is deterministic, so a
    /// replayed delta log reproduces [`OnlineGraph::snapshot`] exactly.
    pub fn export_delta(&mut self) -> OnlineGraphDelta {
        let new_edges = self.edges[self.mark_edges..].to_vec();
        let mut member_appends = Vec::new();
        for (idx, &old_len) in self.mark_members.iter().enumerate() {
            if self.anchor_members[idx].len() > old_len {
                member_appends.push((idx as u32, self.anchor_members[idx][old_len..].to_vec()));
            }
        }
        let new_anchors = (self.mark_anchors..self.anchors.len())
            .map(|i| (self.anchors[i], self.anchor_members[i].clone()))
            .collect();
        let delta =
            OnlineGraphDelta { n_rows: self.n_rows, new_edges, member_appends, new_anchors };
        self.mark_durable();
        delta
    }

    /// Rebuilds a graph from an exported state; insertion resumes exactly
    /// where the snapshot was taken. The routing parameters are not part
    /// of the state and must match the original graph's.
    ///
    /// # Panics
    /// Panics if the state's anchor and member lists disagree in length.
    pub fn from_snapshot(k: usize, state: OnlineGraphState) -> Self {
        assert_eq!(
            state.anchors.len(),
            state.anchor_members.len(),
            "anchor list and member lists disagree"
        );
        let mut g = OnlineGraph::new(k);
        g.n_rows = state.n_rows;
        g.anchors = state.anchors;
        g.anchor_members = state.anchor_members;
        g.edges = state.edges;
        // Restored state came from a durable record: only growth past it
        // belongs in the next delta.
        g.mark_durable();
        g
    }
}

impl OnlineGraphState {
    /// Applies one exported delta in place: pure appends, so replaying a
    /// base snapshot plus every delta in export order is bit-identical to
    /// the live graph's [`OnlineGraph::snapshot`] at the same point.
    ///
    /// # Panics
    /// Panics if the delta references an anchor index this state does not
    /// have or rewinds `n_rows` — both mean the delta was exported against
    /// a different base (callers decoding untrusted bytes must validate
    /// first).
    pub fn apply_delta(&mut self, delta: &OnlineGraphDelta) {
        assert!(delta.n_rows >= self.n_rows, "delta rewinds n_rows");
        self.n_rows = delta.n_rows;
        self.edges.extend_from_slice(&delta.new_edges);
        for (idx, members) in &delta.member_appends {
            assert!((*idx as usize) < self.anchor_members.len(), "delta anchor out of range");
            self.anchor_members[*idx as usize].extend_from_slice(members);
        }
        for (anchor, members) in &delta.new_anchors {
            self.anchors.push(*anchor);
            self.anchor_members.push(members.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use cm_featurespace::{
        CatSet, FeatureDef, FeatureSchema, FeatureSet, FeatureTable, FeatureValue, ServingMode,
        Vocabulary,
    };

    use super::*;

    /// Two clean clusters: rows < n/2 share ids {0,1}; the rest share {2,3}.
    fn clustered(n: usize) -> FeatureTable {
        let schema = Arc::new(FeatureSchema::from_defs(vec![FeatureDef::categorical(
            "c",
            FeatureSet::C,
            ServingMode::Servable,
            Vocabulary::from_names(["a", "b", "c", "d"]),
        )]));
        let mut t = FeatureTable::new(schema);
        for i in 0..n {
            let ids = if i < n / 2 { vec![0, 1] } else { vec![2, 3] };
            t.push_row(&[FeatureValue::Categorical(CatSet::from_ids(ids))]);
        }
        t
    }

    /// Interleaved clusters, so any contiguous arrival batch mixes both.
    fn interleaved(n: usize) -> FeatureTable {
        let schema = Arc::new(FeatureSchema::from_defs(vec![FeatureDef::categorical(
            "c",
            FeatureSet::C,
            ServingMode::Servable,
            Vocabulary::from_names(["a", "b", "c", "d"]),
        )]));
        let mut t = FeatureTable::new(schema);
        for i in 0..n {
            let ids = if i % 2 == 0 { vec![0, 1] } else { vec![2, 3] };
            t.push_row(&[FeatureValue::Categorical(CatSet::from_ids(ids))]);
        }
        t
    }

    /// The first `end` rows of `t` as their own table, simulating the
    /// corpus as it looked mid-arrival.
    fn prefix_table(t: &FeatureTable, end: usize) -> FeatureTable {
        let mut prefix = FeatureTable::new(t.schema().clone());
        for r in 0..end {
            prefix.push_row(&t.row(r));
        }
        prefix
    }

    fn insert_in_cuts(t: &FeatureTable, cfg: &SimilarityConfig, cuts: &[usize]) -> OnlineGraph {
        let mut g = OnlineGraph::new(4);
        for &end in cuts.iter().chain([&t.len()]) {
            let prefix = prefix_table(t, end);
            g.insert_rows(&FrozenTable::freeze(&prefix), cfg);
        }
        g
    }

    #[test]
    fn batch_cuts_are_invisible() {
        let t = interleaved(120);
        let cfg = SimilarityConfig::uniform(vec![0]);
        let frozen = FrozenTable::freeze(&t);
        let mut whole = OnlineGraph::new(4);
        whole.insert_rows(&frozen, &cfg);
        for cuts in [vec![1usize], vec![64], vec![10, 30, 90], vec![120]] {
            let g = insert_in_cuts(&t, &cfg, &cuts);
            assert_eq!(g.snapshot(), whole.snapshot(), "cuts = {cuts:?}");
        }
    }

    #[test]
    fn online_graph_recovers_cluster_structure() {
        let t = clustered(400);
        let cfg = SimilarityConfig::uniform(vec![0]);
        let frozen = FrozenTable::freeze(&t);
        let mut og = OnlineGraph::new(5);
        og.insert_rows(&frozen, &cfg);
        let g = og.graph();
        let mut cross = 0usize;
        let mut total = 0usize;
        for v in 0..400 {
            let (neigh, _) = g.neighbors(v);
            for &u in neigh {
                total += 1;
                if (v < 200) != ((u as usize) < 200) {
                    cross += 1;
                }
            }
        }
        assert!(total > 0);
        assert_eq!(cross, 0, "{cross}/{total} cross-cluster edges");
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let t = interleaved(200);
        let cfg = SimilarityConfig::uniform(vec![0]);
        // Uninterrupted run.
        let frozen = FrozenTable::freeze(&t);
        let mut whole = OnlineGraph::new(4);
        whole.insert_rows(&frozen, &cfg);
        // Run to row 80, snapshot, restore into a fresh graph, continue.
        let mut first = OnlineGraph::new(4);
        first.insert_rows(&FrozenTable::freeze(&prefix_table(&t, 80)), &cfg);
        let state = first.snapshot();
        let mut resumed = OnlineGraph::from_snapshot(4, state);
        resumed.insert_rows(&frozen, &cfg);
        assert_eq!(resumed.snapshot(), whole.snapshot());
        assert_eq!(resumed.graph(), whole.graph());
    }

    #[test]
    fn anchor_pool_tracks_size_target() {
        let t = clustered(600);
        let cfg = SimilarityConfig::uniform(vec![0]);
        let mut og = OnlineGraph::new(4);
        og.insert_rows(&FrozenTable::freeze(&t), &cfg);
        assert_eq!(og.n_anchors(), target_anchor_count(600));
    }

    #[test]
    fn delta_replay_reproduces_the_snapshot_exactly() {
        let t = interleaved(200);
        let cfg = SimilarityConfig::uniform(vec![0]);
        let mut g = OnlineGraph::new(4);
        // Base at row 40, then per-batch deltas replayed onto it.
        g.insert_rows(&FrozenTable::freeze(&prefix_table(&t, 40)), &cfg);
        let mut replayed = g.snapshot();
        g.mark_durable();
        for end in [55usize, 90, 130, 131, 200] {
            g.insert_rows(&FrozenTable::freeze(&prefix_table(&t, end)), &cfg);
            let delta = g.export_delta();
            replayed.apply_delta(&delta);
            assert_eq!(replayed, g.snapshot(), "after replaying up to row {end}");
        }
    }

    #[test]
    fn export_delta_is_empty_after_no_growth() {
        let t = clustered(80);
        let cfg = SimilarityConfig::uniform(vec![0]);
        let mut g = OnlineGraph::new(4);
        g.insert_rows(&FrozenTable::freeze(&t), &cfg);
        let _ = g.export_delta();
        let idle = g.export_delta();
        assert!(idle.new_edges.is_empty());
        assert!(idle.member_appends.is_empty());
        assert!(idle.new_anchors.is_empty());
        assert_eq!(idle.n_rows, 80);
    }

    #[test]
    fn restored_graph_deltas_match_uninterrupted_ones() {
        let t = interleaved(160);
        let cfg = SimilarityConfig::uniform(vec![0]);
        // Uninterrupted: base at 60, one delta covering 60..160.
        let mut live = OnlineGraph::new(4);
        live.insert_rows(&FrozenTable::freeze(&prefix_table(&t, 60)), &cfg);
        live.mark_durable();
        live.insert_rows(&FrozenTable::freeze(&t), &cfg);
        let live_delta = live.export_delta();
        // Crashed-and-restored from the row-60 snapshot.
        let mut first = OnlineGraph::new(4);
        first.insert_rows(&FrozenTable::freeze(&prefix_table(&t, 60)), &cfg);
        let mut resumed = OnlineGraph::from_snapshot(4, first.snapshot());
        resumed.insert_rows(&FrozenTable::freeze(&t), &cfg);
        assert_eq!(resumed.export_delta(), live_delta);
    }

    #[test]
    fn empty_insert_is_a_no_op() {
        let t = clustered(50);
        let cfg = SimilarityConfig::uniform(vec![0]);
        let mut og = OnlineGraph::new(4);
        let frozen = FrozenTable::freeze(&t);
        og.insert_rows(&frozen, &cfg);
        let before = og.snapshot();
        og.insert_rows(&frozen, &cfg);
        assert_eq!(og.snapshot(), before);
    }
}
