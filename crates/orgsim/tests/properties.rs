//! Property-based tests for the generative world: the statistical
//! guarantees downstream crates rely on must hold for arbitrary seeds and
//! task profiles.

use cm_featurespace::ModalityKind;
use cm_orgsim::{TaskConfig, TaskId, World, WorldConfig};
use proptest::prelude::*;

fn any_task() -> impl Strategy<Value = TaskConfig> {
    prop::sample::select(TaskId::ALL.to_vec())
        .prop_map(|id| TaskConfig::paper(id).scaled(0.005))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Schema and registry invariants hold for every world.
    #[test]
    fn schema_matches_registry(task in any_task(), seed in 0u64..1000) {
        let w = World::build(WorldConfig::new(task, seed));
        prop_assert_eq!(w.schema().len(), w.services().len());
        for (i, spec) in w.services().iter().enumerate() {
            prop_assert_eq!(&w.schema().def(i).name, &spec.name);
            prop_assert_eq!(w.schema().def(i).set, spec.set);
        }
    }

    /// Generated rows always conform to the schema: categorical ids stay
    /// inside their vocabulary, embeddings have the declared width, and
    /// modality-inapplicable features are missing.
    #[test]
    fn generated_rows_conform(
        task in any_task(),
        seed in 0u64..1000,
        modality in prop::sample::select(vec![
            ModalityKind::Text,
            ModalityKind::Image,
            ModalityKind::Video,
        ]),
    ) {
        let w = World::build(WorldConfig::new(task, seed));
        let d = w.generate(modality, 100, seed ^ 1);
        let schema = w.schema();
        for r in 0..d.len() {
            for (c, def) in schema.defs().iter().enumerate() {
                match def.kind {
                    cm_featurespace::FeatureKind::Categorical => {
                        if let Some(ids) = d.table.categorical(r, c) {
                            for &id in ids {
                                prop_assert!((id as usize) < def.vocab.len(),
                                    "{}: id {id} outside vocab {}", def.name, def.vocab.len());
                            }
                        }
                    }
                    cm_featurespace::FeatureKind::Embedding { dim } => {
                        if let Some(e) = d.table.embedding(r, c) {
                            prop_assert_eq!(e.len(), dim);
                            prop_assert!(e.iter().all(|v| v.is_finite()));
                        }
                    }
                    cm_featurespace::FeatureKind::Numeric => {
                        if let Some(v) = d.table.numeric(r, c) {
                            prop_assert!(v.is_finite());
                        }
                    }
                }
                // Zero-coverage features must be missing.
                let spec = &w.services()[c];
                if spec.coverage.get(modality) == 0.0 {
                    prop_assert!(!d.table.is_present(r, c),
                        "{} present on {:?}", def.name, modality);
                }
            }
        }
    }

    /// The generator is deterministic and label-consistent: labels,
    /// borderline flags, and rows all reproduce under the same seed.
    #[test]
    fn generation_is_reproducible(task in any_task(), seed in 0u64..500) {
        let w = World::build(WorldConfig::new(task, seed));
        let a = w.generate(ModalityKind::Image, 64, 7);
        let b = w.generate(ModalityKind::Image, 64, 7);
        prop_assert_eq!(&a.labels, &b.labels);
        prop_assert_eq!(&a.borderline, &b.borderline);
        for r in 0..a.len() {
            prop_assert_eq!(a.table.row(r), b.table.row(r));
        }
    }

    /// Borderline flags only appear on positives.
    #[test]
    fn borderline_implies_positive(task in any_task(), seed in 0u64..500) {
        let w = World::build(WorldConfig::new(task, seed));
        let d = w.generate(ModalityKind::Image, 400, seed ^ 3);
        for (label, &b) in d.labels.iter().zip(&d.borderline) {
            if b {
                prop_assert!(label.is_positive());
            }
        }
    }

    /// Dataset split conserves rows and labels.
    #[test]
    fn split_conserves(task in any_task(), seed in 0u64..200, frac in 0.1f64..0.9) {
        let w = World::build(WorldConfig::new(task, seed));
        let d = w.generate(ModalityKind::Text, 150, 1);
        let (a, b) = d.split(frac, seed);
        prop_assert_eq!(a.len() + b.len(), d.len());
        let pos = |m: &cm_orgsim::ModalityDataset| {
            m.labels.iter().filter(|l| l.is_positive()).count()
        };
        prop_assert_eq!(pos(&a) + pos(&b), pos(&d));
    }
}
