//! Row-at-a-time reference miner: the differential-test oracle for the
//! vertical bitset engine in [`crate::apriori`].
//!
//! This is the pre-kernel implementation, kept verbatim (minus the
//! parallel dual): order-1 supports come from materializing every row's
//! items into hash-map counters, higher orders from per-row `contains`
//! scans over the joined sets. It is O(rows × itemsets) and allocates per
//! row — never call it on a hot path; its only job is to define the
//! expected output of [`crate::apriori::mine_itemsets`] exactly.

use std::collections::HashMap;

use cm_featurespace::{FeatureKind, FeatureTable, Label};

use crate::apriori::{sort_stats, Item, ItemStats, ItemValue, MinedItemsets, MiningConfig};
use crate::discretize::Discretizer;

/// Serial row-at-a-time mining; see the module docs. The result must match
/// [`crate::apriori::mine_itemsets`] field for field.
///
/// # Panics
/// Panics if `labels.len() != table.len()`.
pub fn mine_itemsets_reference(
    table: &FeatureTable,
    labels: &[Label],
    columns: &[usize],
    config: &MiningConfig,
) -> MinedItemsets {
    assert_eq!(table.len(), labels.len(), "label count mismatch");
    let schema = table.schema();
    let discretizers: Vec<Discretizer> = columns
        .iter()
        .filter(|&&c| schema.def(c).map(|d| d.kind) == Some(FeatureKind::Numeric))
        .filter_map(|&c| Discretizer::fit(table, c, config.numeric_bins))
        .collect();

    let n_pos = labels.iter().filter(|l| l.is_positive()).count();
    let n_neg = labels.len() - n_pos;

    // Pass 1: count order-1 items over positive rows only (the paper's
    // class-imbalance optimization).
    let pos_counts = count_class_items(table, labels, columns, &discretizers, true);
    let n_candidates = pos_counts.len();

    // Keep candidates that could still clear the recall bar.
    let min_pos_support = ((config.min_recall * n_pos as f64).ceil() as usize).max(1);
    let candidates: Vec<Item> = {
        // lint: allow(nondet-iteration) — hash order is erased by sort_stats'
        // total order before any result surfaces; pinned by the differential
        // suite against the vertical bitset engine.
        pos_counts.iter().filter(|(_, &c)| c >= min_pos_support).map(|(&i, _)| i).collect()
    };

    // Pass 2: count items over negative rows.
    let neg_all_counts = count_class_items(table, labels, columns, &discretizers, false);
    let neg_counts = |item: &Item| neg_all_counts.get(item).copied().unwrap_or(0);

    let make_stats = |items: Vec<Item>, pos: usize, neg: usize| ItemStats {
        items,
        pos_support: pos,
        neg_support: neg,
        precision: if pos + neg > 0 { pos as f64 / (pos + neg) as f64 } else { 0.0 },
        recall: if n_pos > 0 { pos as f64 / n_pos as f64 } else { 0.0 },
    };

    // Order-1 positive itemsets.
    let mut positive: Vec<ItemStats> = Vec::new();
    let mut frontier: Vec<Vec<Item>> = Vec::new();
    for &item in &candidates {
        let pos = pos_counts[&item];
        let neg = neg_counts(&item);
        let stats = make_stats(vec![item], pos, neg);
        if stats.precision >= config.min_precision && stats.recall >= config.min_recall {
            positive.push(stats);
        } else if stats.recall >= config.min_recall {
            frontier.push(vec![item]);
        }
    }

    // Higher orders: join frontier itemsets with candidate items of the
    // same column.
    for _order in 2..=config.max_order {
        if frontier.is_empty() {
            break;
        }
        let mut next_sets: Vec<Vec<Item>> = Vec::new();
        let mut seen: HashMap<Vec<Item>, ()> = HashMap::new();
        for base in &frontier {
            let col = base[0].column;
            let Some(&last) = base.last() else { continue };
            for &item in candidates.iter().filter(|i| i.column == col && **i > last) {
                let mut joined = base.clone();
                joined.push(item);
                if seen.insert(joined.clone(), ()).is_none() {
                    next_sets.push(joined);
                }
            }
        }
        // Count joined itemsets with a full row scan.
        let mut pos_c: HashMap<&[Item], usize> = HashMap::new();
        let mut neg_c: HashMap<&[Item], usize> = HashMap::new();
        for (r, label) in labels.iter().enumerate() {
            let items: Vec<Item> = row_items(table, r, columns, &discretizers).collect();
            for set in &next_sets {
                if set.iter().all(|i| items.contains(i)) {
                    if label.is_positive() {
                        *pos_c.entry(set.as_slice()).or_insert(0) += 1;
                    } else {
                        *neg_c.entry(set.as_slice()).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut new_frontier = Vec::new();
        for set in &next_sets {
            let pos = pos_c.get(set.as_slice()).copied().unwrap_or(0);
            let neg = neg_c.get(set.as_slice()).copied().unwrap_or(0);
            let stats = make_stats(set.clone(), pos, neg);
            if stats.recall < config.min_recall {
                continue; // anti-monotone prune
            }
            if stats.precision >= config.min_precision {
                positive.push(stats);
            } else {
                new_frontier.push(set.clone());
            }
        }
        frontier = new_frontier;
    }

    // Negative itemsets (order 1 only).
    let min_neg_support = ((config.min_neg_recall * n_neg as f64).ceil() as usize).max(1);
    let mut negative: Vec<ItemStats> = Vec::new();
    // lint: allow(nondet-iteration) — hash order is erased by sort_stats'
    // total order before any result surfaces.
    for (&item, &neg) in &neg_all_counts {
        if neg < min_neg_support {
            continue;
        }
        let pos = pos_counts.get(&item).copied().unwrap_or(0);
        let neg_precision = neg as f64 / (pos + neg) as f64;
        if neg_precision >= config.min_neg_precision {
            negative.push(make_stats(vec![item], pos, neg));
        }
    }

    sort_stats(&mut positive);
    sort_stats(&mut negative);
    MinedItemsets { positive, negative, discretizers, n_candidates }
}

/// Counts order-1 items over the rows of one class.
fn count_class_items(
    table: &FeatureTable,
    labels: &[Label],
    columns: &[usize],
    discretizers: &[Discretizer],
    positive: bool,
) -> HashMap<Item, usize> {
    let mut counts: HashMap<Item, usize> = HashMap::new();
    for (r, label) in labels.iter().enumerate() {
        if label.is_positive() != positive {
            continue;
        }
        for item in row_items(table, r, columns, discretizers) {
            *counts.entry(item).or_insert(0) += 1;
        }
    }
    counts
}

/// Iterates the items present in one row.
fn row_items<'a>(
    table: &'a FeatureTable,
    row: usize,
    columns: &'a [usize],
    discretizers: &'a [Discretizer],
) -> impl Iterator<Item = Item> + 'a {
    columns.iter().flat_map(move |&col| {
        let schema = table.schema();
        let mut out: Vec<Item> = Vec::new();
        let Some(def) = schema.def(col) else {
            return out.into_iter();
        };
        match def.kind {
            FeatureKind::Categorical => {
                if let Some(ids) = table.categorical(row, col) {
                    out.extend(
                        ids.iter().map(|&id| Item { column: col, value: ItemValue::Cat(id) }),
                    );
                }
            }
            FeatureKind::Numeric => {
                if let (Some(v), Some(d)) =
                    (table.numeric(row, col), discretizers.iter().find(|d| d.column == col))
                {
                    out.push(Item { column: col, value: ItemValue::NumBin(d.bin(v)) });
                }
            }
            FeatureKind::Embedding { .. } => {}
        }
        out.into_iter()
    })
}
