//! Criterion microbenchmarks for every substrate on the pipeline's hot
//! path: feature generation, densification, itemset mining, label-model
//! fitting, LF application, graph construction, propagation, and model
//! training.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cm_featurespace::{FeatureSet, ModalityKind, SimilarityConfig};
use cm_labelmodel::{AnchoredModel, GenerativeConfig, GenerativeModel, LabelMatrix};
use cm_mining::{mine_itemsets, MiningConfig};
use cm_models::{LogisticRegression, Mlp, MlpEpochConfig};
use cm_orgsim::{TaskConfig, TaskId, World, WorldConfig};
use cm_pipeline::{curate, CurationConfig, DenseView, TaskData};
use cm_propagation::{propagate, propagate_streaming, GraphBuilder, PropagationConfig};

fn world() -> World {
    World::build(WorldConfig::new(TaskConfig::paper(TaskId::Ct1).scaled(0.05), 7))
}

fn bench_feature_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("featuregen");
    group.sample_size(20);
    let w = world();
    group.bench_function("generate_1k_image_rows", |b| {
        b.iter(|| w.generate(ModalityKind::Image, 1000, 3))
    });

    let data = w.generate(ModalityKind::Image, 2000, 4);
    let cols = w.schema().columns_in_sets(&FeatureSet::SHARED, true);
    group.bench_function("dense_fit_2k", |b| {
        b.iter(|| DenseView::fit(&[&data.table], cols.clone()))
    });
    let view = DenseView::fit(&[&data.table], cols);
    group.bench_function("dense_encode_2k", |b| b.iter(|| view.encode(&data.table)));
    group.finish();
}

fn bench_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("mining");
    group.sample_size(20);
    let w = world();
    let data = w.generate(ModalityKind::Text, 5000, 5);
    let cols = w.schema().columns_in_sets(&FeatureSet::SHARED, false);
    for order in [1usize, 2] {
        let cfg = MiningConfig { max_order: order, ..MiningConfig::default() };
        group.bench_function(format!("apriori_5k_order{order}"), |b| {
            b.iter(|| mine_itemsets(&data.table, &data.labels, &cols, &cfg))
        });
    }
    group.finish();
}

fn synthetic_matrix(n: usize, n_lfs: usize) -> (LabelMatrix, Vec<cm_featurespace::Label>) {
    use cm_featurespace::Label;
    let mut votes = Vec::with_capacity(n * n_lfs);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let pos = i % 20 == 0;
        labels.push(if pos { Label::Positive } else { Label::Negative });
        for j in 0..n_lfs {
            let fires = (i * 31 + j * 7) % 10 < 3;
            votes.push(if !fires {
                0
            } else if pos == (j % 2 == 0) {
                1
            } else {
                -1
            });
        }
    }
    let names = (0..n_lfs).map(|j| format!("lf{j}")).collect();
    (LabelMatrix::from_votes(n, n_lfs, votes, names), labels)
}

fn bench_label_model(c: &mut Criterion) {
    let mut c = c.benchmark_group("labelmodel");
    c.sample_size(20);
    let (m, labels) = synthetic_matrix(20_000, 40);
    c.bench_function("anchored_fit_predict_20k_x40", |b| {
        b.iter(|| {
            let model = AnchoredModel::fit(&m, &labels, None);
            model.predict(&m)
        })
    });
    c.bench_function("em_fit_20k_x40", |b| {
        b.iter(|| {
            GenerativeModel::fit(
                &m,
                &GenerativeConfig { max_iters: 20, ..GenerativeConfig::default() },
            )
        })
    });
    c.finish();
}

fn bench_propagation(c: &mut Criterion) {
    let mut c = c.benchmark_group("propagation");
    c.sample_size(10);
    let w = world();
    let mut combined = w.generate(ModalityKind::Text, 1500, 8).table;
    combined.extend_from(&w.generate(ModalityKind::Image, 1500, 9).table);
    let mut cols = w.schema().columns_in_sets(&FeatureSet::SHARED, false);
    cols.push(w.schema().column("img_embedding").unwrap());
    let sim = SimilarityConfig::uniform(cols).fit_scales(&combined);

    c.bench_function("knn_graph_3k_anchors", |b| {
        b.iter(|| GraphBuilder::approximate(10, combined.len()).build(&combined, &sim, 1))
    });
    let graph = GraphBuilder::approximate(10, combined.len()).build(&combined, &sim, 1);
    let seeds: Vec<(usize, f64)> = (0..1000).map(|v| (v, (v % 20 == 0) as u8 as f64)).collect();
    let cfg = PropagationConfig::default();
    c.bench_function("jacobi_3k", |b| b.iter(|| propagate(&graph, &seeds, &cfg)));
    c.bench_function("gauss_seidel_3k", |b| {
        b.iter(|| propagate_streaming(&graph, &seeds, &cfg))
    });
    c.finish();
}

fn bench_training(c: &mut Criterion) {
    let mut c = c.benchmark_group("training");
    c.sample_size(10);
    let w = world();
    let data = w.generate(ModalityKind::Image, 4000, 11);
    let cols = w.schema().columns_in_sets(&FeatureSet::SHARED, true);
    let view = DenseView::fit(&[&data.table], cols);
    let x = view.encode(&data.table);
    let y = data.labels_f64();

    c.bench_function("logistic_fit_4k", |b| {
        b.iter(|| {
            LogisticRegression::fit(
                &x,
                &y,
                None,
                &cm_models::logistic::LogisticConfig { epochs: 3, ..Default::default() },
            )
        })
    });
    c.bench_function("mlp_epoch_4k_h32", |b| {
        b.iter_batched(
            || Mlp::new(x.cols(), &[32], 0.01, 1),
            |mut mlp| {
                mlp.train_epoch(
                    &x,
                    &y,
                    None,
                    &MlpEpochConfig { batch_size: 128, l2: 1e-4, shuffle_seed: 0 },
                )
            },
            BatchSize::LargeInput,
        )
    });
    c.finish();
}

fn bench_end_to_end_curation(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("curate_ct1_tiny", |b| {
        let data = TaskData::generate(TaskConfig::paper(TaskId::Ct1).scaled(0.02), 3, Some(64));
        let cfg = CurationConfig { prop_max_seeds: 500, ..CurationConfig::default() };
        b.iter(|| curate(&data, &cfg))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_feature_generation,
    bench_mining,
    bench_label_model,
    bench_propagation,
    bench_training,
    bench_end_to_end_curation
);
criterion_main!(benches);
