//! Tests for the five modality-gap mechanisms DESIGN.md documents. These
//! are the calibration's load-bearing behaviours: if one silently stops
//! working, the Table 2 / Figure 7 shapes quietly degrade.

use cm_featurespace::{FeatureValue, ModalityKind};
use cm_linalg::rng::StdRng;
use cm_orgsim::services::{Attr, ATTR_INDICATIVE, ATTR_VOCAB_SIZES};
use cm_orgsim::{TaskConfig, TaskId, World, WorldConfig};

fn world() -> World {
    World::build(WorldConfig::new(TaskConfig::paper(TaskId::Ct1).scaled(0.01), 11))
}

/// Counts, per modality, how often positives' `topics` observations include
/// canonical indicative ids vs their high-end aliases.
fn indicative_and_alias_rates(w: &World, modality: ModalityKind, n: usize) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(5);
    let col = w.schema().column("topics").unwrap();
    let attr = Attr::Topics as usize;
    let n_ind = ATTR_INDICATIVE[attr];
    let vocab = ATTR_VOCAB_SIZES[attr];
    let (mut canon, mut alias, mut n_pos) = (0usize, 0usize, 0usize);
    for _ in 0..n {
        let e = w.sample_entity(modality, &mut rng);
        if !e.is_positive() {
            continue;
        }
        n_pos += 1;
        let row = w.featurize(&e, modality, &mut rng);
        if let FeatureValue::Categorical(set) = &row[col] {
            canon += usize::from(set.iter().any(|id| id < n_ind));
            alias += usize::from(set.iter().any(|id| id >= vocab - n_ind));
        }
    }
    (canon as f64 / n_pos.max(1) as f64, alias as f64 / n_pos.max(1) as f64)
}

#[test]
fn vocabulary_drift_aliases_image_observations_only() {
    let w = world();
    let (_, alias_text) = indicative_and_alias_rates(&w, ModalityKind::Text, 60_000);
    let (_, alias_image) = indicative_and_alias_rates(&w, ModalityKind::Image, 60_000);
    assert!(
        alias_image > alias_text + 0.02,
        "image alias rate {alias_image:.3} should exceed text {alias_text:.3}"
    );
}

#[test]
fn expression_asymmetry_moves_signal_between_attribute_families() {
    let w = world();
    let mut rng = StdRng::seed_from_u64(7);
    let keywords = Attr::Keywords as usize;
    let objects = Attr::Objects as usize;
    let rate = |modality: ModalityKind, attr: usize, rng: &mut StdRng| {
        let n_ind = ATTR_INDICATIVE[attr];
        let (mut hit, mut n_pos) = (0usize, 0usize);
        for _ in 0..120_000 {
            let e = w.sample_entity(modality, rng);
            if e.is_positive() {
                n_pos += 1;
                // Exclude the background-collision slice (ids ≡ 1 mod 3),
                // which is a separate mechanism, so only archetype
                // *expression* is measured here.
                hit += usize::from(e.cats[attr].iter().any(|id| id < n_ind && id % 3 != 1));
            }
        }
        hit as f64 / n_pos.max(1) as f64
    };
    // Text-leaning attribute (keywords) expresses more in text; image-
    // leaning attribute (objects) expresses more in images.
    let kw_text = rate(ModalityKind::Text, keywords, &mut rng);
    let kw_image = rate(ModalityKind::Image, keywords, &mut rng);
    let obj_text = rate(ModalityKind::Text, objects, &mut rng);
    let obj_image = rate(ModalityKind::Image, objects, &mut rng);
    assert!(kw_text > kw_image * 1.2, "keywords: text {kw_text:.3} vs image {kw_image:.3}");
    assert!(obj_image > obj_text * 1.2, "objects: image {obj_image:.3} vs text {obj_text:.3}");
}

#[test]
fn numeric_drift_hits_model_scores_not_aggregates() {
    let w = world();
    let mut rng = StdRng::seed_from_u64(9);
    let mean_of = |name: &str, modality: ModalityKind, rng: &mut StdRng| {
        let col = w.schema().column(name).unwrap();
        let mut sum = 0.0;
        let mut n = 0usize;
        for _ in 0..4000 {
            let e = w.sample_entity(modality, rng);
            if e.is_positive() {
                continue; // compare the (big) negative populations
            }
            let row = w.featurize(&e, modality, rng);
            if let FeatureValue::Numeric(v) = row[col] {
                sum += v;
                n += 1;
            }
        }
        sum / n.max(1) as f64
    };
    // Content-model-based score drifts across modalities...
    let rep_text = mean_of("url_reputation", ModalityKind::Text, &mut rng);
    let rep_image = mean_of("url_reputation", ModalityKind::Image, &mut rng);
    assert!(
        (rep_text - rep_image).abs() > 0.02,
        "url_reputation should drift: text {rep_text:.3} vs image {rep_image:.3}"
    );
    // ...while the aggregate statistic (a metadata join) keeps its
    // *within-class separation*: the population selection effect shifts
    // both classes of the new modality by the same offset, so in-modality
    // models are unaffected even though the marginal moves.
    let mut rng2 = StdRng::seed_from_u64(9);
    let class_means = |modality: ModalityKind, rng: &mut StdRng| {
        let col = w.schema().column("user_reports").unwrap();
        let (mut sp, mut np_, mut sn, mut nn) = (0.0f64, 0usize, 0.0f64, 0usize);
        for _ in 0..60_000 {
            let e = w.sample_entity(modality, rng);
            let row = w.featurize(&e, modality, rng);
            if let FeatureValue::Numeric(v) = row[col] {
                if e.is_positive() {
                    sp += v;
                    np_ += 1;
                } else {
                    sn += v;
                    nn += 1;
                }
            }
        }
        (sp / np_.max(1) as f64, sn / nn.max(1) as f64)
    };
    let (pos_t, neg_t) = class_means(ModalityKind::Text, &mut rng2);
    let (pos_i, neg_i) = class_means(ModalityKind::Image, &mut rng2);
    let sep_text = pos_t - neg_t;
    let sep_image = pos_i - neg_i;
    assert!(
        (sep_text - sep_image).abs() < sep_text.abs() * 0.2,
        "aggregate class separation must survive the modality change: text {sep_text:.2} vs image {sep_image:.2}"
    );
}

#[test]
fn old_label_noise_is_text_only_and_class_asymmetric() {
    // With labels flipped only in text, the text corpus's positive rate
    // sits below the true rate (missed positives dominate under the
    // asymmetric scheme) while image labels are exact ground truth.
    let w = world();
    let text = w.generate(ModalityKind::Text, 60_000, 3);
    let image = w.generate(ModalityKind::Image, 60_000, 4);
    let true_rate = w.config().task.profile.positive_rate;
    let noise = w.config().task.profile.old_label_noise;
    assert!(noise > 0.0, "fixture task must have label noise");
    // Expected text rate ~= true*(1-noise) + (1-true)*noise*true.
    let expected_text = true_rate * (1.0 - noise) + (1.0 - true_rate) * noise * true_rate;
    assert!(
        (text.positive_rate() - expected_text).abs() < 0.01,
        "text rate {:.4} vs expected {:.4}",
        text.positive_rate(),
        expected_text
    );
    assert!(
        (image.positive_rate() - true_rate).abs() < 0.01,
        "image rate {:.4} vs true {:.4}",
        image.positive_rate(),
        true_rate
    );
}

#[test]
fn background_collisions_put_indicative_ids_in_image_negatives() {
    let w = world();
    let mut rng = StdRng::seed_from_u64(13);
    let attr = Attr::Topics as usize;
    let n_ind = ATTR_INDICATIVE[attr];
    let rate = |modality: ModalityKind, rng: &mut StdRng| {
        let (mut hit, mut n_neg) = (0usize, 0usize);
        for _ in 0..40_000 {
            let e = w.sample_entity(modality, rng);
            if e.is_positive() {
                continue;
            }
            n_neg += 1;
            // Collision slice: indicative ids ≡ 1 (mod 3).
            hit += usize::from(e.cats[attr].iter().any(|id| id < n_ind && id % 3 == 1));
        }
        hit as f64 / n_neg.max(1) as f64
    };
    let text_rate = rate(ModalityKind::Text, &mut rng);
    let image_rate = rate(ModalityKind::Image, &mut rng);
    assert!(
        image_rate > text_rate * 1.5,
        "image negatives should collide with indicative ids: image {image_rate:.4} vs text {text_rate:.4}"
    );
}
