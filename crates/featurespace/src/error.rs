//! The workspace's shared error type.
//!
//! Library crates return [`CmError`] instead of panicking on data-dependent
//! paths (the `xtask lint` gate enforces this); the pre-execution validator
//! in `cm-check` reports rule violations with the same vocabulary of kinds.

/// Category of a pipeline error; stable, machine-matchable tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Two artifacts disagree about a schema (column count, feature kind).
    SchemaMismatch,
    /// Matrix/vector/table shapes disagree.
    ShapeMismatch,
    /// An index is outside its container or vocabulary.
    OutOfBounds,
    /// A configuration value is unusable (empty spec, bad dimension).
    InvalidConfig,
    /// A named entity does not exist.
    NotFound,
    /// A numeric invariant failed (NaN, non-finite, degenerate input).
    Numeric,
    /// A parallel worker panicked; the panic was captured by `cm-par` and
    /// surfaced as an error instead of aborting the pipeline.
    Panic,
}

impl ErrorKind {
    /// Short stable name, used in messages and validator rules.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::SchemaMismatch => "schema-mismatch",
            ErrorKind::ShapeMismatch => "shape-mismatch",
            ErrorKind::OutOfBounds => "out-of-bounds",
            ErrorKind::InvalidConfig => "invalid-config",
            ErrorKind::NotFound => "not-found",
            ErrorKind::Numeric => "numeric",
            ErrorKind::Panic => "panic",
        }
    }
}

/// An error from a pipeline library crate.
#[derive(Debug, Clone, PartialEq)]
pub struct CmError {
    /// What class of invariant failed.
    pub kind: ErrorKind,
    /// Where it was detected, e.g. `"FeatureTable::push_row"`.
    pub location: &'static str,
    /// Human-readable details.
    pub message: String,
}

impl CmError {
    /// Builds an error.
    pub fn new(kind: ErrorKind, location: &'static str, message: impl Into<String>) -> Self {
        Self { kind, location, message: message.into() }
    }
}

impl std::fmt::Display for CmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]: {}", self.location, self.kind.name(), self.message)
    }
}

impl std::error::Error for CmError {}

impl From<cm_par::ParError> for CmError {
    fn from(e: cm_par::ParError) -> Self {
        CmError::new(ErrorKind::Panic, "cm_par", e.message().to_owned())
    }
}

/// Result alias used across the workspace.
pub type CmResult<T> = Result<T, CmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location_kind_message() {
        let e = CmError::new(ErrorKind::ShapeMismatch, "Matrix::matmul", "2x3 vs 4x5");
        assert_eq!(e.to_string(), "Matrix::matmul [shape-mismatch]: 2x3 vs 4x5");
    }

    #[test]
    fn kind_names_are_distinct() {
        let kinds = [
            ErrorKind::SchemaMismatch,
            ErrorKind::ShapeMismatch,
            ErrorKind::OutOfBounds,
            ErrorKind::InvalidConfig,
            ErrorKind::NotFound,
            ErrorKind::Numeric,
            ErrorKind::Panic,
        ];
        let names: std::collections::HashSet<_> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
    }

    #[test]
    fn par_errors_convert_to_cm_errors() {
        let par_err = cm_par::par_map(&cm_par::ParConfig::serial(), 2, |i| {
            assert!(i != 1, "captured panic");
            i
        })
        .unwrap_err();
        let e: CmError = par_err.into();
        assert_eq!(e.kind, ErrorKind::Panic);
        assert!(e.message.contains("captured panic"));
    }
}
