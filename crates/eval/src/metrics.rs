//! Thresholded binary metrics and ROC-AUC.

/// Confusion-matrix-derived metrics at a fixed threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinaryMetrics {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
    /// `tp / (tp + fp)` (0 when undefined).
    pub precision: f64,
    /// `tp / (tp + fn)` (0 when undefined).
    pub recall: f64,
    /// Harmonic mean of precision and recall (0 when undefined).
    pub f1: f64,
    /// Overall accuracy.
    pub accuracy: f64,
}

impl BinaryMetrics {
    /// Computes metrics of `scores >= threshold` against ground truth.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn at_threshold(scores: &[f64], positives: &[bool], threshold: f64) -> Self {
        assert_eq!(scores.len(), positives.len(), "score/label length mismatch");
        let (mut tp, mut fp, mut tn, mut fn_) = (0usize, 0usize, 0usize, 0usize);
        for (&s, &p) in scores.iter().zip(positives) {
            match (s >= threshold, p) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, false) => tn += 1,
                (false, true) => fn_ += 1,
            }
        }
        Self::from_counts(tp, fp, tn, fn_)
    }

    /// Builds metrics from raw confusion counts.
    pub fn from_counts(tp: usize, fp: usize, tn: usize, fn_: usize) -> Self {
        let precision = if tp + fp > 0 { tp as f64 / (tp + fp) as f64 } else { 0.0 };
        let recall = if tp + fn_ > 0 { tp as f64 / (tp + fn_) as f64 } else { 0.0 };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        let total = tp + fp + tn + fn_;
        let accuracy = if total > 0 { (tp + tn) as f64 / total as f64 } else { 0.0 };
        Self { tp, fp, tn, fn_, precision, recall, f1, accuracy }
    }
}

/// ROC-AUC via the rank statistic (Mann–Whitney), with tie correction.
/// Returns 0.5 when either class is absent.
///
/// # Panics
/// Panics if lengths differ.
pub fn roc_auc(scores: &[f64], positives: &[bool]) -> f64 {
    assert_eq!(scores.len(), positives.len(), "score/label length mismatch");
    let n_pos = positives.iter().filter(|&&p| p).count();
    let n_neg = scores.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    // Average ranks over tie groups.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j < order.len() && scores[order[j]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = ((i + 1 + j) as f64) / 2.0; // ranks are 1-based
        for &idx in &order[i..j] {
            if positives[idx] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_rates() {
        let scores = [0.9, 0.8, 0.3, 0.1];
        let pos = [true, false, true, false];
        let m = BinaryMetrics::at_threshold(&scores, &pos, 0.5);
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (1, 1, 1, 1));
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 0.5);
        assert_eq!(m.f1, 0.5);
        assert_eq!(m.accuracy, 0.5);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let m = BinaryMetrics::at_threshold(&[0.1], &[true], 0.5);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.f1, 0.0);
        let empty = BinaryMetrics::from_counts(0, 0, 0, 0);
        assert_eq!(empty.accuracy, 0.0);
    }

    #[test]
    fn perfect_separation_auc_is_one() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let pos = [true, true, false, false];
        assert!((roc_auc(&scores, &pos) - 1.0).abs() < 1e-12);
        let inverted = [0.1, 0.2, 0.8, 0.9];
        assert!(roc_auc(&inverted, &pos).abs() < 1e-12);
    }

    #[test]
    fn tied_scores_give_half_auc() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let pos = [true, true, false, false];
        assert!((roc_auc(&scores, &pos) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_class_returns_half() {
        assert_eq!(roc_auc(&[0.5, 0.6], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[], &[]), 0.5);
    }

    #[test]
    fn auc_matches_pair_counting() {
        let scores = [0.9, 0.4, 0.6, 0.3, 0.8];
        let pos = [true, false, true, false, false];
        // Count concordant pairs by brute force.
        let mut concordant = 0.0;
        let mut total = 0.0;
        for (i, &pi) in pos.iter().enumerate() {
            for (j, &pj) in pos.iter().enumerate() {
                if pi && !pj {
                    total += 1.0;
                    if scores[i] > scores[j] {
                        concordant += 1.0;
                    } else if scores[i] == scores[j] {
                        concordant += 0.5;
                    }
                }
            }
        }
        assert!((roc_auc(&scores, &pos) - concordant / total).abs() < 1e-12);
    }
}
