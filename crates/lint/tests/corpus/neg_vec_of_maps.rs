//@ path: crates/demo/src/lib.rs
// Seeded negative (nondet-iteration): iterating a Vec or slice whose
// *elements* are hash maps is order-stable — the watched type sits below
// the top level of the annotation.

use std::collections::HashMap;

pub fn f(shards: Vec<HashMap<String, u32>>) -> usize {
    let owned: Vec<HashMap<String, u32>> = shards;
    let mut total = 0;
    for shard in &owned {
        total += shard.len();
    }
    total + owned.iter().count()
}

pub fn g(slices: &[HashMap<String, u32>]) -> usize {
    let mut total = slices.iter().count();
    for shard in slices {
        total += shard.len();
    }
    total
}
