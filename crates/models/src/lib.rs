//! Discriminative model substrate (paper §5, §6.3).
//!
//! The paper's TFX pipelines support logistic regression and fully-connected
//! deep networks, trained with a cross-entropy loss modified to accept
//! *probabilistic* labels from the weak-supervision step. This crate
//! implements both model families from scratch:
//!
//! - [`loss`] — noise-aware binary cross-entropy over soft targets, with
//!   optional per-sample weights (class re-weighting under heavy imbalance);
//! - [`optim`] — SGD with momentum and Adam;
//! - [`logistic`] — L2-regularized logistic regression;
//! - [`mlp`] — fully-connected ReLU networks with a sigmoid head, exposing
//!   the penultimate activation (`embed`) for intermediate fusion and the
//!   DeViSE adaptation;
//! - [`trainer`] — a unified [`trainer::train_model`] entry point with
//!   mini-batching, shuffling, and early stopping on validation loss.

pub mod logistic;
pub mod loss;
pub mod mlp;
pub mod optim;
pub mod trainer;
pub mod tuner;

pub use logistic::{LogisticConfig, LogisticRegression};
pub use mlp::{Mlp, MlpEpochConfig};
pub use optim::{Adam, Optimizer, Sgd};
pub use trainer::{train_model, BinaryClassifier, ModelKind, TrainConfig, TrainedModel};
pub use tuner::{grid_search, TunerGrid, TunerOutcome, TunerTrial};
