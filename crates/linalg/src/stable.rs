//! [`StableSum`]: an exact, associatively mergeable `f64` accumulator.
//!
//! Floating-point addition is not associative, so a sum computed over a
//! stream of segments and merged segment-by-segment is normally *not*
//! bit-identical to the same sum computed over the resident whole. The
//! sharded curation layer (`cm-shard`) promises exactly that identity, so
//! every float reduction that crosses a segment boundary runs through this
//! type instead of a bare `f64`.
//!
//! `StableSum` is a fixed-point superaccumulator: each finite `f64` is
//! split into its integer mantissa and exponent and added into a bank of
//! 32-bit-spaced `i128` limbs spanning the entire finite exponent range
//! (including subnormals). Integer limb addition is exact, commutative,
//! and associative, so:
//!
//! - accumulation order never changes the result;
//! - [`StableSum::merge`] of per-segment partials equals accumulating the
//!   concatenated stream, bit for bit, for **any** partition;
//! - [`StableSum::value`] renders the exact total to the nearest `f64`
//!   (round half to even), the same answer an infinitely precise sum
//!   would round to.
//!
//! Non-finite inputs make the accumulator sticky: the rendered value
//! follows IEEE addition over the non-finite inputs alone (`+∞` stays
//! `+∞`, opposing infinities or any NaN yield NaN), matching what a
//! sequential `f64` sum converges to once an infinity or NaN enters it.

/// Number of `i128` limbs. Limb `k` holds a signed integer scaled by
/// `2^(32k - 1074)`; positions 0..=2045 receive direct mantissa deposits
/// (the full finite `f64` range) and the upper limbs absorb carries.
const LIMBS: usize = 70;

/// Bits per limb position step.
const LIMB_BITS: u32 = 32;

/// Unnormalized deposits allowed before a carry-propagation pass. Each
/// deposit adds at most `2^85` in magnitude to one limb, so `2^38`
/// deposits keep every limb below `2^(85 + 38) = 2^123`, and merging two
/// saturated accumulators stays below `2^124` — comfortably inside
/// `i128`.
const MAX_PENDING: u64 = 1 << 38;

/// An exact `f64` accumulator with associative merge. See the module
/// docs; construct with [`StableSum::new`], feed with [`StableSum::add`],
/// combine partials with [`StableSum::merge`], and render with
/// [`StableSum::value`].
#[derive(Debug, Clone)]
pub struct StableSum {
    limbs: Vec<i128>,
    pending: u64,
    /// IEEE running sum of the non-finite inputs; meaningful only when
    /// `has_special` is set.
    special: f64,
    has_special: bool,
}

impl Default for StableSum {
    fn default() -> Self {
        Self::new()
    }
}

impl StableSum {
    /// An empty accumulator (renders `0.0`).
    pub fn new() -> Self {
        Self { limbs: vec![0; LIMBS], pending: 0, special: 0.0, has_special: false }
    }

    /// An accumulator holding the values of `iter`.
    pub fn of(iter: impl IntoIterator<Item = f64>) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.add(x);
        }
        s
    }

    /// Adds one value. Exact for every finite input; non-finite inputs
    /// switch the accumulator to sticky IEEE semantics.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            self.special = if self.has_special { self.special + x } else { x };
            self.has_special = true;
            return;
        }
        if x == 0.0 {
            return;
        }
        let bits = x.to_bits();
        let neg = (bits >> 63) != 0;
        let biased = ((bits >> 52) & 0x7FF) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        // x = mantissa * 2^(position - 1074), position in 0..=2045.
        let (mantissa, position) =
            if biased == 0 { (frac, 0) } else { (frac | (1 << 52), biased as usize - 1) };
        let (limb, shift) = (position / LIMB_BITS as usize, position % LIMB_BITS as usize);
        let deposit = (mantissa as i128) << shift;
        self.limbs[limb] += if neg { -deposit } else { deposit };
        self.pending += 1;
        if self.pending >= MAX_PENDING {
            self.carry_propagate();
        }
    }

    /// Folds another accumulator into this one: exact limb-wise integer
    /// addition, so `merge` is associative and commutative and merging
    /// per-segment partials reproduces the whole-stream accumulation bit
    /// for bit.
    pub fn merge(&mut self, other: &StableSum) {
        if other.has_special {
            self.special =
                if self.has_special { self.special + other.special } else { other.special };
            self.has_special = true;
        }
        for (a, b) in self.limbs.iter_mut().zip(&other.limbs) {
            *a += *b;
        }
        self.pending = self.pending.saturating_add(other.pending);
        if self.pending >= MAX_PENDING {
            self.carry_propagate();
        }
    }

    /// Renders the exact total, correctly rounded to the nearest `f64`
    /// (ties to even). Totals beyond the finite range overflow to
    /// infinity; a sticky non-finite state renders its IEEE combination.
    pub fn value(&self) -> f64 {
        if self.has_special {
            return self.special;
        }
        let mut limbs = self.limbs.clone();
        propagate(&mut limbs);
        let mut negative = false;
        if limbs[LIMBS - 1] < 0 {
            negative = true;
            for l in limbs.iter_mut() {
                *l = -*l;
            }
            propagate(&mut limbs);
        }
        let Some(top) = limbs.iter().rposition(|&l| l != 0) else {
            return 0.0;
        };
        debug_assert!(limbs[top] > 0 && limbs[top] < (1i128 << LIMB_BITS), "unnormalized limb");
        // A 128-bit window over the top (up to) four limbs holds the
        // mantissa, guard, and most of the sticky information.
        let low = top.saturating_sub(3);
        let mut window: u128 = 0;
        for k in (low..=top).rev() {
            window = (window << LIMB_BITS) | self_low_bits(limbs[k]);
        }
        let sticky_below = limbs[..low].iter().any(|&l| l != 0);
        let window_msb = (127 - window.leading_zeros()) as usize;
        let msb_position = low * LIMB_BITS as usize + window_msb;
        let exponent = msb_position as i64 - 1074;
        // Normal results keep 53 significant bits; subnormal results keep
        // however many bits sit at or above position 0 (all of them — the
        // window always reaches position 0 in that regime, so the render
        // is exact).
        let keep = if exponent >= -1022 { 53 } else { (exponent + 1075) as usize };
        let shift = window_msb + 1 - keep;
        let mut mantissa = (window >> shift) as u64;
        let round_bit = shift > 0 && (window >> (shift - 1)) & 1 == 1;
        let sticky = sticky_below || (shift > 1 && window & ((1u128 << (shift - 1)) - 1) != 0);
        if round_bit && (sticky || mantissa & 1 == 1) {
            mantissa += 1;
        }
        let magnitude = if keep < 53 {
            // Subnormal scale: value = mantissa * 2^-1074, and the bit
            // pattern of a subnormal (or of 2^-1022 exactly, when the
            // mantissa reaches 2^52) *is* the mantissa.
            f64::from_bits(mantissa)
        } else {
            let mut exponent = exponent;
            if mantissa >> 53 != 0 {
                mantissa >>= 1;
                exponent += 1;
            }
            if exponent > 1023 {
                f64::INFINITY
            } else {
                let biased = (exponent + 1023) as u64;
                f64::from_bits((biased << 52) | (mantissa & ((1u64 << 52) - 1)))
            }
        };
        if negative {
            -magnitude
        } else {
            magnitude
        }
    }
}

/// The low 32 bits of a normalized (non-negative, `< 2^32`) limb.
fn self_low_bits(limb: i128) -> u128 {
    debug_assert!((0..(1i128 << LIMB_BITS)).contains(&limb));
    limb as u128
}

/// Carry-propagates so every limb below the top lands in `[0, 2^32)`;
/// the top limb keeps the (signed) overflow and thereby the sign of the
/// whole number.
fn propagate(limbs: &mut [i128]) {
    for k in 0..limbs.len() - 1 {
        let carry = limbs[k] >> LIMB_BITS;
        limbs[k] -= carry << LIMB_BITS;
        limbs[k + 1] += carry;
    }
}

impl StableSum {
    fn carry_propagate(&mut self) {
        propagate(&mut self.limbs);
        self.pending = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, StdRng};

    fn random_values(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let magnitude = rng.gen_range(-300.0..300.0);
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                sign * rng.gen_range(0.5..2.0) * 10f64.powf(magnitude / 10.0)
            })
            .collect()
    }

    #[test]
    fn exact_on_representable_integers() {
        let mut s = StableSum::new();
        for x in [1.0, 2.0, 3.0, -4.0, 1048576.0] {
            s.add(x);
        }
        assert_eq!(s.value(), 1048578.0);
    }

    #[test]
    fn cancellation_is_exact() {
        // 1e16 + 1 - 1e16 loses the 1 in plain f64 arithmetic.
        assert_eq!((1e16 + 1.0) - 1e16, 0.0);
        let s = StableSum::of([1e16, 1.0, -1e16]);
        assert_eq!(s.value(), 1.0);
        let s = StableSum::of([1e300, 2.5, -1e300, 1e-300, -1e-300]);
        assert_eq!(s.value(), 2.5);
    }

    #[test]
    fn permutation_invariant() {
        let values = random_values(7, 500);
        let forward = StableSum::of(values.iter().copied());
        let backward = StableSum::of(values.iter().rev().copied());
        let mut shuffled = values.clone();
        let mut rng = StdRng::seed_from_u64(9);
        use crate::rng::SliceRandom;
        shuffled.shuffle(&mut rng);
        let shuffled = StableSum::of(shuffled);
        assert_eq!(forward.value().to_bits(), backward.value().to_bits());
        assert_eq!(forward.value().to_bits(), shuffled.value().to_bits());
    }

    #[test]
    fn merge_of_any_split_matches_whole() {
        let values = random_values(11, 400);
        let whole = StableSum::of(values.iter().copied());
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..25 {
            let mut cuts: Vec<usize> = (0..4).map(|_| rng.gen_range(0..values.len())).collect();
            cuts.push(0);
            cuts.push(values.len());
            cuts.sort_unstable();
            let mut merged = StableSum::new();
            for pair in cuts.windows(2) {
                let part = StableSum::of(values[pair[0]..pair[1]].iter().copied());
                merged.merge(&part);
            }
            assert_eq!(merged.value().to_bits(), whole.value().to_bits());
        }
    }

    #[test]
    fn rounds_half_to_even() {
        // 1 + 2^-53 sits exactly between 1.0 and the next float: ties to
        // the even mantissa, i.e. 1.0.
        let s = StableSum::of([1.0, 2f64.powi(-53)]);
        assert_eq!(s.value(), 1.0);
        // Any sticky bit below the guard breaks the tie upward.
        let s = StableSum::of([1.0, 2f64.powi(-53), 2f64.powi(-105)]);
        assert_eq!(s.value(), 1.0 + 2f64.powi(-52));
        // 1 + 3 * 2^-54 rounds to the nearest (upper) neighbour.
        let s = StableSum::of([1.0, 2f64.powi(-54), 2f64.powi(-54), 2f64.powi(-54)]);
        assert_eq!(s.value(), 1.0 + 2f64.powi(-52));
    }

    #[test]
    fn subnormal_and_overflow_ranges() {
        let tiny = f64::from_bits(1); // smallest subnormal, 2^-1074
        let s = StableSum::of([tiny, tiny, tiny]);
        assert_eq!(s.value(), 3.0 * tiny);
        let s = StableSum::of(std::iter::repeat(tiny).take(4096));
        assert_eq!(s.value(), 4096.0 * tiny);
        // Crossing from subnormal into normal territory.
        let s = StableSum::of([f64::MIN_POSITIVE, -tiny]);
        assert_eq!(s.value(), f64::MIN_POSITIVE - tiny);
        // Exceeding f64::MAX overflows to infinity, like the IEEE sum.
        let s = StableSum::of([f64::MAX, f64::MAX]);
        assert_eq!(s.value(), f64::INFINITY);
        let s = StableSum::of([f64::MAX, f64::MAX, -f64::MAX]);
        assert_eq!(s.value(), f64::MAX);
    }

    #[test]
    fn non_finite_inputs_are_sticky() {
        let s = StableSum::of([1.0, f64::INFINITY, 2.0]);
        assert_eq!(s.value(), f64::INFINITY);
        let s = StableSum::of([f64::INFINITY, f64::NEG_INFINITY]);
        assert!(s.value().is_nan());
        let s = StableSum::of([f64::NAN, 1.0]);
        assert!(s.value().is_nan());
        let mut a = StableSum::of([1.0]);
        let b = StableSum::of([f64::NEG_INFINITY]);
        a.merge(&b);
        assert_eq!(a.value(), f64::NEG_INFINITY);
    }

    #[test]
    fn matches_naive_sum_on_exact_cases() {
        // Sums of same-sign values with small dynamic range stay exact in
        // plain f64 arithmetic only by luck; verify against an exact
        // integer-scaled reference instead.
        let values: Vec<f64> = (1..=1000).map(|i| i as f64 * 0.25).collect();
        let s = StableSum::of(values.iter().copied());
        assert_eq!(s.value(), (1000 * 1001 / 2) as f64 * 0.25);
    }

    #[test]
    fn empty_renders_zero() {
        assert_eq!(StableSum::new().value(), 0.0);
        assert_eq!(StableSum::of([0.0, -0.0]).value(), 0.0);
    }
}
