//@ path: crates/par/src/lib.rs
// Seeded negative (path scoping): crates/par is the one place allowed to
// touch std::thread directly — the threading bans are off here.

pub fn f() {
    std::thread::scope(|scope| {
        let _h = scope.spawn(|| 1);
    });
    let _j = std::thread::spawn(|| 2);
}
