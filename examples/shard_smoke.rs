//! Shard smoke gate: run the streamed (out-of-core) curation driver at
//! several shard sizes and assert its output is bit-identical to the
//! resident driver.
//!
//! `scripts/ci.sh` runs this under `CM_THREADS=1` and `CM_THREADS=4`; the
//! program exits non-zero on the first divergence, and prints a
//! deterministic label checksum so cross-thread runs can also be diffed
//! line by line.
//!
//! ```sh
//! CM_THREADS=4 cargo run --release --example shard_smoke
//! ```

use cross_modal::mining::MiningConfig;
use cross_modal::prelude::*;

fn checksum(labels: &[f64]) -> u64 {
    labels.iter().fold(0u64, |acc, p| acc.rotate_left(7) ^ p.to_bits())
}

fn task() -> TaskConfig {
    TaskConfig::paper(TaskId::Ct2).scaled(0.02)
}

fn main() {
    let seed = 5;
    let config = CurationConfig {
        prop_max_seeds: 400,
        mining: MiningConfig { min_recall: 0.05, ..Default::default() },
        ..Default::default()
    };

    let data = TaskData::generate(task(), seed, Some(64));
    let want = curate(&data, &config);
    let want_sum = checksum(&want.probabilistic_labels);
    println!(
        "resident: {} pool labels (checksum {want_sum:016x}), coverage {:.4}",
        want.probabilistic_labels.len(),
        want.degradation.pool_coverage
    );

    let mut failures = 0usize;
    for shard_rows in [1usize, 97, 1 << 20] {
        let streamed =
            curate_streamed(task(), seed, &config, &ShardConfig::with_segment_rows(shard_rows))
                .unwrap_or_else(|e| {
                    eprintln!("streamed curation failed at shard_rows={shard_rows}: {e}");
                    std::process::exit(1);
                });
        let got = &streamed.output;
        let got_sum = checksum(&got.probabilistic_labels);
        let identical = got_sum == want_sum
            && got.probabilistic_labels.len() == want.probabilistic_labels.len()
            && got
                .probabilistic_labels
                .iter()
                .zip(&want.probabilistic_labels)
                .all(|(g, w)| g.to_bits() == w.to_bits())
            && got.lf_names == want.lf_names
            && got.conflict.to_bits() == want.conflict.to_bits();
        println!(
            "sharded shard_rows={shard_rows}: {} segments, peak {} bytes, checksum {got_sum:016x} \
             -> {}",
            streamed.stats.segments,
            streamed.stats.peak_bytes,
            if identical { "identical" } else { "DIVERGED" }
        );
        if !identical {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("{failures} shard size(s) diverged from the resident driver");
        std::process::exit(1);
    }
    println!("shard smoke: all shard sizes bit-identical to the resident driver");
}
