//! Hand-written "domain expert" labeling functions (§6.7.1).
//!
//! The paper compares automatically mined LFs against LFs a ground-truth
//! collection team hand-built over 7 hours spread across two weeks, and
//! finds the mined suite wins by 2.7 F1 points — a *14.3% precision
//! increase* and a *9.6% recall decrease*: the expert writes broad,
//! high-recall rules whose precision trails the miner's threshold-vetted
//! itemsets.
//!
//! Our expert analogue is written against the *semantics* of the generative
//! world (what a domain expert knows: which topic/keyword/object families
//! correlate with violations) but not its ground truth:
//!
//! - rules are **broad any-of matches** over the expert's known sensitive
//!   vocabulary — the head two-thirds of each indicative range (experts
//!   know the common behavioral modes, not the rare borderline ones);
//! - the expert does not know the new modality's aliased taxonomy
//!   (vocabulary drift), nor the exact numeric cut-points quantile
//!   discretization finds;
//! - several rules are multi-feature conjunctions (the paper notes the
//!   human suite is "more complex, multi-feature");
//! - the authoring cost is the paper's constant: 7 hours of expert time.

use std::time::Duration;

use cm_featurespace::{CmError, CmResult, ErrorKind, FeatureSchema};
use cm_labelmodel::{
    CategoricalContainsLf, ConjunctionLf, LabelingFunction, NumericThresholdLf, Predicate,
    ThresholdDirection, Vote,
};

/// The paper's reported expert authoring cost (7 hours, spread over days to
/// weeks).
pub const EXPERT_AUTHORING: Duration = Duration::from_secs(7 * 3600);

/// Builds the expert LF suite for a task schema.
///
/// # Errors
/// Returns [`ErrorKind::NotFound`] if the schema lacks any of the
/// standard-registry features the expert rules are written against.
pub fn expert_lfs(schema: &FeatureSchema) -> CmResult<Vec<Box<dyn LabelingFunction>>> {
    let col = |name: &str| {
        schema.column(name).ok_or_else(|| {
            CmError::new(
                ErrorKind::NotFound,
                "expert_lfs",
                format!("expert LFs need feature {name:?} in the schema"),
            )
        })
    };
    let topics = col("topics")?;
    let subtopics = col("subtopics")?;
    let entities = col("kg_entities")?;
    let keywords = col("keywords")?;
    let rule_flags = col("rule_flags")?;
    let objects = col("objects")?;
    let url_category = col("url_category")?;
    let page_topics = col("page_topics")?;
    let page_keywords = col("page_keywords")?;
    let user_reports = col("user_reports")?;
    let url_reputation = col("url_reputation")?;
    let page_quality = col("page_quality")?;

    // The expert's sensitive vocabulary: the head ~2/3 of each indicative
    // range (ids are interned indicative-first in the standard registry).
    let head = |n_ind: u32| -> Vec<u32> { (0..(n_ind * 2).div_ceil(3)).collect() };

    let mut lfs: Vec<Box<dyn LabelingFunction>> = Vec::new();
    // Broad topical rules — one per service the expert understands well.
    for (name, column, n_ind) in [
        ("topics", topics, 12u32),
        ("subtopics", subtopics, 18),
        ("kg_entities", entities, 24),
        ("keywords", keywords, 30),
        ("objects", objects, 15),
        ("url_category", url_category, 9),
        ("page_topics", page_topics, 12),
        ("page_keywords", page_keywords, 24),
    ] {
        let lf = CategoricalContainsLf::new(column, head(n_ind), false, Vote::Positive);
        lfs.push(Box::new(ExpertNamed { inner: lf, name: format!("expert_{name}_watchlist") }));
    }
    // Behavioral rules.
    lfs.push(Box::new(NumericThresholdLf::new(
        user_reports,
        9.0,
        ThresholdDirection::Above,
        Vote::Positive,
    )));
    lfs.push(Box::new(ConjunctionLf::new(
        "expert_flagged_and_reported",
        vec![
            Predicate::CatContains { column: rule_flags, id: 0 },
            Predicate::NumAbove { column: user_reports, threshold: 5.0 },
        ],
        Vote::Positive,
    )));
    lfs.push(Box::new(ConjunctionLf::new(
        "expert_lowrep_reported",
        vec![
            Predicate::NumBelow { column: url_reputation, threshold: 0.58 },
            Predicate::NumAbove { column: user_reports, threshold: 4.0 },
        ],
        Vote::Positive,
    )));
    // Negative rules: quiet authors, reputable URLs, clean pages.
    lfs.push(Box::new(ConjunctionLf::new(
        "expert_quiet_user",
        vec![
            Predicate::NumBelow { column: user_reports, threshold: 2.5 },
            Predicate::NumAbove { column: url_reputation, threshold: 0.72 },
        ],
        Vote::Negative,
    )));
    lfs.push(Box::new(ConjunctionLf::new(
        "expert_clean_page",
        vec![
            Predicate::NumAbove { column: page_quality, threshold: 0.70 },
            Predicate::NumBelow { column: user_reports, threshold: 3.5 },
        ],
        Vote::Negative,
    )));
    lfs.push(Box::new(NumericThresholdLf::new(
        url_reputation,
        0.88,
        ThresholdDirection::Above,
        Vote::Negative,
    )));
    Ok(lfs)
}

/// Wraps an LF with an expert-facing name.
struct ExpertNamed {
    inner: CategoricalContainsLf,
    name: String,
}

impl LabelingFunction for ExpertNamed {
    fn name(&self) -> &str {
        &self.name
    }

    fn vote(&self, table: &cm_featurespace::FeatureTable, row: usize) -> cm_labelmodel::Vote {
        self.inner.vote(table, row)
    }
}

#[cfg(test)]
mod tests {
    use cm_labelmodel::LabelMatrix;
    use cm_orgsim::{TaskConfig, TaskId, World, WorldConfig};

    use super::*;

    #[test]
    fn suite_has_both_polarities() {
        let world = World::build(WorldConfig::new(TaskConfig::paper(TaskId::Ct1).scaled(0.001), 1));
        let lfs = expert_lfs(world.schema()).unwrap();
        assert!(lfs.len() >= 12);
        assert!(lfs.iter().any(|l| l.name().contains("quiet")));
        assert!(lfs.iter().any(|l| l.name().contains("watchlist")));
    }

    #[test]
    fn expert_lfs_fire_more_on_positives() {
        let world = World::build(WorldConfig::new(TaskConfig::paper(TaskId::Ct2).scaled(0.01), 2));
        let data = world.generate(cm_featurespace::ModalityKind::Text, 4000, 3);
        let lfs = expert_lfs(world.schema()).unwrap();
        let m = LabelMatrix::apply(&data.table, &lfs);
        let (mut pos_hits, mut n_pos, mut neg_hits, mut n_neg) = (0usize, 0usize, 0usize, 0usize);
        for (r, label) in data.labels.iter().enumerate() {
            let hit = m.row(r).iter().any(|&v| v > 0);
            if label.is_positive() {
                n_pos += 1;
                pos_hits += usize::from(hit);
            } else {
                n_neg += 1;
                neg_hits += usize::from(hit);
            }
        }
        let pos_rate = pos_hits as f64 / n_pos.max(1) as f64;
        let neg_rate = neg_hits as f64 / n_neg.max(1) as f64;
        assert!(pos_rate > 0.7, "expert positive coverage of positives {pos_rate}");
        assert!(
            pos_rate > neg_rate * 1.5,
            "expert positive LFs: pos rate {pos_rate}, neg rate {neg_rate}"
        );
    }

    #[test]
    fn rejects_foreign_schema() {
        let err = expert_lfs(&FeatureSchema::new()).err().unwrap();
        assert_eq!(err.kind, cm_featurespace::ErrorKind::NotFound);
        assert!(err.message.contains("expert LFs need feature"));
    }
}
