//! Randomized tests for discretization and itemset mining (seeded, in-tree
//! PRNG).

use std::sync::Arc;

use cm_featurespace::{
    CatSet, FeatureDef, FeatureSchema, FeatureSet, FeatureTable, FeatureValue, Label, ServingMode,
    Vocabulary,
};
use cm_linalg::rng::{Rng, StdRng};
use cm_mining::{mine_itemsets, Discretizer, MiningConfig};

const CASES: u64 = 48;

fn schema() -> Arc<FeatureSchema> {
    Arc::new(FeatureSchema::from_defs(vec![
        FeatureDef::numeric("n", FeatureSet::A, ServingMode::Servable),
        FeatureDef::categorical(
            "c",
            FeatureSet::C,
            ServingMode::Servable,
            Vocabulary::from_names((0..6).map(|i| format!("v{i}"))),
        ),
    ]))
}

fn labeled_table(rng: &mut StdRng) -> (FeatureTable, Vec<Label>) {
    let n = rng.gen_range(8..60usize);
    let mut t = FeatureTable::new(schema());
    let mut labels = Vec::new();
    for _ in 0..n {
        let num = rng.gen_range(-50.0..50.0);
        let n_cats = rng.gen_range(0..4usize);
        let mut cats: Vec<u32> = (0..n_cats).map(|_| rng.gen_range(0..6u32)).collect();
        cats.sort_unstable();
        cats.dedup();
        t.push_row(&[
            FeatureValue::Numeric(num),
            FeatureValue::Categorical(CatSet::from_ids(cats)),
        ]);
        labels.push(if rng.gen_bool(0.25) { Label::Positive } else { Label::Negative });
    }
    (t, labels)
}

/// Every value maps to exactly one bin, bins are monotone in the value,
/// and each value lies inside its bin's reported range.
#[test]
fn discretizer_bins_partition() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB14 ^ case);
        let n = rng.gen_range(4..50usize);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let mut t = FeatureTable::new(schema());
        for &v in &values {
            t.push_row(&[FeatureValue::Numeric(v), FeatureValue::Missing]);
        }
        let d = Discretizer::fit(&t, 0, 4).unwrap();
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut prev_bin = 0;
        for &v in &sorted {
            let b = d.bin(v);
            assert!(b >= prev_bin, "case {case}: bins must be monotone in the value");
            assert!((b as usize) < d.n_bins(), "case {case}");
            let (lo, hi) = d.bin_range(b);
            if let Some(lo) = lo {
                assert!(v >= lo, "case {case}: {v} below bin floor {lo}");
            }
            if let Some(hi) = hi {
                assert!(v <= hi, "case {case}: {v} above bin ceiling {hi}");
            }
            prev_bin = b;
        }
    }
}

/// Mined statistics are internally consistent: precision/recall in
/// [0,1], supports bounded by class sizes, and every reported itemset
/// actually clears the configured thresholds.
#[test]
fn mined_stats_respect_thresholds() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x57A7 ^ case);
        let (t, labels) = labeled_table(&mut rng);
        let cfg = MiningConfig { min_precision: 0.6, min_recall: 0.05, ..MiningConfig::default() };
        let mined = mine_itemsets(&t, &labels, &[0, 1], &cfg);
        let n_pos = labels.iter().filter(|l| l.is_positive()).count();
        let n_neg = labels.len() - n_pos;
        for s in &mined.positive {
            assert!(s.pos_support <= n_pos, "case {case}");
            assert!(s.neg_support <= n_neg, "case {case}");
            assert!((0.0..=1.0).contains(&s.precision), "case {case}");
            assert!((0.0..=1.0).contains(&s.recall), "case {case}");
            assert!(s.precision >= cfg.min_precision - 1e-12, "case {case}");
            assert!(s.recall >= cfg.min_recall - 1e-12, "case {case}");
        }
        for s in &mined.negative {
            let neg_precision =
                s.neg_support as f64 / (s.pos_support + s.neg_support).max(1) as f64;
            assert!(neg_precision >= cfg.min_neg_precision - 1e-12, "case {case}");
        }
    }
}

/// Anti-monotonicity: an order-2 itemset's support never exceeds the
/// positive support of either member.
#[test]
fn order2_support_is_anti_monotone() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x02D2 ^ case);
        let (t, labels) = labeled_table(&mut rng);
        let cfg = MiningConfig {
            min_precision: 0.99, // push singles into the frontier
            min_recall: 0.02,
            max_order: 2,
            ..MiningConfig::default()
        };
        let mined = mine_itemsets(&t, &labels, &[1], &cfg);
        // Recompute single-item supports directly.
        let single_support = |item: cm_mining::Item| {
            labels
                .iter()
                .enumerate()
                .filter(|(r, l)| {
                    l.is_positive()
                        && matches!(item.value, cm_mining::ItemValue::Cat(id)
                            if t.categorical(*r, item.column)
                                .is_some_and(|ids| ids.binary_search(&id).is_ok()))
                })
                .count()
        };
        for s in mined.positive.iter().filter(|s| s.items.len() == 2) {
            for &item in &s.items {
                assert!(
                    s.pos_support <= single_support(item),
                    "case {case}: pair support {} exceeds member support",
                    s.pos_support
                );
            }
        }
    }
}

/// Mining is deterministic.
#[test]
fn mining_is_deterministic() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xDE7 ^ case);
        let (t, labels) = labeled_table(&mut rng);
        let cfg = MiningConfig::default();
        let a = mine_itemsets(&t, &labels, &[0, 1], &cfg);
        let b = mine_itemsets(&t, &labels, &[0, 1], &cfg);
        assert_eq!(a.positive, b.positive, "case {case}");
        assert_eq!(a.negative, b.negative, "case {case}");
    }
}
