//@ path: crates/demo/src/effects.rs
//! Positive: ambient effects in an unsanctioned module, reported at the
//! effect site with the call chain back to the workspace entry point.

use std::env;
use std::fs;

pub fn entry() -> String {
    middle()
}

fn middle() -> String {
    leaf()
}

fn leaf() -> String {
    env::var("CM_DEMO").unwrap_or_default()
}

pub fn read_side(path: &str) -> usize {
    fs::read_to_string(path).map(|s| s.len()).unwrap_or(0)
}
