//! End-to-end integration: the three pipeline steps composed over the
//! synthetic organizational world, across crate boundaries.

use cross_modal::prelude::*;

fn small_data(id: TaskId, seed: u64) -> TaskData {
    TaskData::generate(TaskConfig::paper(id).scaled(0.04), seed, Some(600))
}

fn fast_runner(data: &TaskData) -> ScenarioRunner<'_> {
    ScenarioRunner {
        data,
        model: ModelKind::Logistic,
        train: TrainConfig { epochs: 8, ..TrainConfig::default() },
    }
}

#[test]
fn full_pipeline_produces_meaningful_model() {
    let data = small_data(TaskId::Ct2, 5);
    let curation = curate(&data, &CurationConfig::default());
    // Curation quality floor: the easy task must be labelable.
    assert!(curation.ws_quality.f1 > 0.3, "{:?}", curation.ws_quality);
    assert!(curation.ws_quality.coverage > 0.3);

    let runner = fast_runner(&data);
    let eval = runner.run(&Scenario::cross_modal(&FeatureSet::SHARED), Some(&curation)).unwrap();
    // A cross-modal model trained with zero image labels must clearly beat
    // random ranking (random AUPRC = positive rate ~= 0.09).
    assert!(eval.auprc > 0.3, "cross-modal AUPRC {} is too close to chance", eval.auprc);
}

#[test]
fn pipeline_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let data = small_data(TaskId::Ct1, seed);
        let curation = curate(&data, &CurationConfig::default());
        let runner = fast_runner(&data);
        let eval =
            runner.run(&Scenario::cross_modal(&FeatureSet::SHARED), Some(&curation)).unwrap();
        (curation.probabilistic_labels, eval.auprc)
    };
    let (labels_a, auprc_a) = run(9);
    let (labels_b, auprc_b) = run(9);
    assert_eq!(labels_a, labels_b, "curation must be deterministic");
    assert_eq!(auprc_a, auprc_b, "training must be deterministic");
    let (_, auprc_c) = run(10);
    assert_ne!(auprc_a, auprc_c, "different seeds must differ");
}

#[test]
fn curation_labels_align_with_pool() {
    let data = small_data(TaskId::Ct2, 7);
    let curation = curate(&data, &CurationConfig::default());
    assert_eq!(curation.probabilistic_labels.len(), data.pool.len());
    assert_eq!(curation.covered.len(), data.pool.len());
    for (&q, &cov) in curation.probabilistic_labels.iter().zip(&curation.covered) {
        assert!((0.0..=1.0).contains(&q));
        if !cov && !curation.lf_names.is_empty() {
            // Uncovered rows sit near the prior, i.e. clearly below 0.5 in
            // these imbalanced tasks.
            assert!(q < 0.5, "uncovered row with q = {q}");
        }
    }
}

#[test]
fn fully_supervised_scenario_scales_with_labels() {
    let data = small_data(TaskId::Ct2, 11);
    let runner = fast_runner(&data);
    let sets = FeatureSet::SHARED;
    let small = runner.run(&Scenario::fully_supervised(&sets, 80), None).unwrap();
    let large = runner.run(&Scenario::fully_supervised(&sets, 600), None).unwrap();
    assert_eq!(small.n_train_rows, 80);
    assert_eq!(large.n_train_rows, 600);
    // More supervision should not make things dramatically worse.
    assert!(large.auprc > small.auprc * 0.8, "{} vs {}", large.auprc, small.auprc);
}

#[test]
fn relative_auprc_uses_baseline() {
    let data = small_data(TaskId::Ct2, 13);
    let curation = curate(&data, &CurationConfig::default());
    let runner = fast_runner(&data);
    let baseline = runner.baseline_auprc().unwrap();
    assert!(baseline > 0.0);
    let eval = runner
        .run_relative(&Scenario::cross_modal(&FeatureSet::SHARED), Some(&curation), baseline)
        .unwrap();
    let rel = eval.relative_auprc.unwrap();
    assert!((rel - eval.auprc / baseline).abs() < 1e-12);
}

#[test]
fn video_modality_flows_through_the_pipeline() {
    // The paper's motivating example is video; make sure nothing in the
    // pipeline is image-specific.
    let task = TaskConfig::paper(TaskId::Ct2).scaled(0.04);
    let world = World::build(WorldConfig::new(task.clone(), 21));
    let data = TaskData {
        text: world.generate(ModalityKind::Text, task.n_text_labeled, 1),
        pool: world.generate(ModalityKind::Video, task.n_image_unlabeled, 2),
        test: world.generate(ModalityKind::Video, task.n_image_test, 3),
        labeled_image: world.generate(ModalityKind::Video, 400, 4),
        world,
        fault_summary: None,
    };
    let curation = curate(&data, &CurationConfig::default());
    assert!(curation.ws_quality.coverage > 0.2);
    let runner = fast_runner(&data);
    let eval = runner.run(&Scenario::cross_modal(&FeatureSet::SHARED), Some(&curation)).unwrap();
    assert!(eval.auprc > 0.2, "video cross-modal AUPRC {}", eval.auprc);
}
