//! The validator's machine-readable report, mirroring
//! `cm_lint::report_json` so the two gate layers archive the same shape.
//!
//! Deterministic: violations must be pre-sorted with
//! [`crate::Violation::sort_key_cmp`] (file, line, col, rule); successive
//! runs diff cleanly. Artifact violations (no span) report `line`/`col`
//! 0 and their legacy location string as the file key.

use cm_json::Json;

use crate::Violation;

/// Builds the machine-readable report object. `violations` must already
/// be sorted.
#[must_use]
pub fn report_json(violations: &[Violation], files_scanned: usize) -> Json {
    Json::obj([
        ("version", Json::Num(1.0)),
        ("tool", Json::Str("cm-check".to_owned())),
        ("files_scanned", Json::Num(files_scanned as f64)),
        ("violation_count", Json::Num(violations.len() as f64)),
        (
            "violations",
            Json::Arr(
                violations
                    .iter()
                    .map(|v| {
                        Json::obj([
                            ("file", Json::Str(v.file_key().to_owned())),
                            ("line", Json::Num(f64::from(v.line()))),
                            ("col", Json::Num(f64::from(v.col()))),
                            ("rule", Json::Str(v.rule.name().to_owned())),
                            ("message", Json::Str(v.message.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}
