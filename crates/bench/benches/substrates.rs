//! Microbenchmarks for every substrate on the pipeline's hot path:
//! feature generation, densification, itemset mining, label-model
//! fitting, graph construction, propagation, and model training.
//!
//! Uses a small in-tree timing harness (`harness = false`) so the
//! workspace builds with zero registry access. Each benchmark warms up,
//! then reports the median and minimum wall time over a fixed number of
//! samples. Filter by substring: `cargo bench --bench substrates -- mining`.

use std::hint::black_box;
use std::time::{Duration, Instant};

use cm_featurespace::{FeatureSet, ModalityKind, SimilarityConfig};
use cm_json::Json;
use cm_labelmodel::{AnchoredModel, GenerativeConfig, GenerativeModel, LabelMatrix};
use cm_linalg::Matrix;
use cm_mining::{mine_itemsets, mine_itemsets_with, MiningConfig};
use cm_models::{LogisticRegression, Mlp, MlpEpochConfig};
use cm_orgsim::{TaskConfig, TaskId, World, WorldConfig};
use cm_par::ParConfig;
use cm_pipeline::{curate, curate_streamed, CurationConfig, DenseView, TaskData};
use cm_propagation::{propagate, propagate_streaming, GraphBuilder, PropagationConfig};
use cm_shard::ShardConfig;

/// Minimal stand-in for a criterion benchmark group: warmup + sampled
/// median/min timings, with substring filtering from the command line.
struct Harness {
    filter: Option<String>,
    /// `CM_BENCH_SAMPLES` override: when set, every group runs exactly
    /// this many samples regardless of its configured size. The CI smoke
    /// sets it to 1 so the benchmarks compile-and-execute cheaply.
    sample_override: Option<usize>,
}

impl Harness {
    fn from_args() -> Self {
        // `cargo bench -- <substring>`; ignore harness-style flags.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let sample_override = std::env::var("CM_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0);
        Self { filter, sample_override }
    }

    fn samples(&self, configured: usize) -> usize {
        self.sample_override.unwrap_or(configured)
    }

    fn group(&self, name: &'static str) -> Group<'_> {
        Group { harness: self, group: name, sample_size: self.samples(20) }
    }
}

struct Group<'a> {
    harness: &'a Harness,
    group: &'static str,
    sample_size: usize,
}

impl Group<'_> {
    fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = self.harness.samples(n);
        self
    }

    fn enabled(&self, name: &str) -> bool {
        let full = format!("{}/{}", self.group, name);
        self.harness.filter.as_deref().is_none_or(|f| full.contains(f))
    }

    /// Time `f` directly: one warmup call, then `sample_size` timed calls.
    fn bench_function<T>(&mut self, name: impl AsRef<str>, mut f: impl FnMut() -> T) -> &mut Self {
        self.bench_batched(name, || (), move |()| f())
    }

    /// Time `routine` on fresh input from `setup`; setup time is excluded.
    fn bench_batched<I, T>(
        &mut self,
        name: impl AsRef<str>,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> T,
    ) -> &mut Self {
        let name = name.as_ref();
        if !self.enabled(name) {
            return self;
        }
        black_box(routine(setup()));
        let mut samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                start.elapsed()
            })
            .collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        println!(
            "{}/{:<32} median {:>12?}  min {:>12?}  ({} samples)",
            self.group,
            name,
            median,
            min,
            samples.len()
        );
        self
    }

    fn finish(&mut self) {}
}

fn world() -> World {
    World::build(WorldConfig::new(TaskConfig::paper(TaskId::Ct1).scaled(0.05), 7))
}

fn bench_feature_generation(c: &Harness) {
    let mut group = c.group("featuregen");
    group.sample_size(20);
    let w = world();
    group.bench_function("generate_1k_image_rows", || w.generate(ModalityKind::Image, 1000, 3));

    let data = w.generate(ModalityKind::Image, 2000, 4);
    let cols = w.schema().columns_in_sets(&FeatureSet::SHARED, true);
    group.bench_function("dense_fit_2k", || DenseView::fit(&[&data.table], cols.clone()).unwrap());
    let view = DenseView::fit(&[&data.table], cols).unwrap();
    group.bench_function("dense_encode_2k", || view.encode(&data.table));
    group.finish();
}

fn bench_mining(c: &Harness) {
    let mut group = c.group("mining");
    group.sample_size(20);
    let w = world();
    let data = w.generate(ModalityKind::Text, 5000, 5);
    let cols = w.schema().columns_in_sets(&FeatureSet::SHARED, false);
    for order in [1usize, 2] {
        let cfg = MiningConfig { max_order: order, ..MiningConfig::default() };
        group.bench_function(format!("apriori_5k_order{order}"), || {
            mine_itemsets(&data.table, &data.labels, &cols, &cfg)
        });
    }
    group.finish();
}

fn synthetic_matrix(n: usize, n_lfs: usize) -> (LabelMatrix, Vec<cm_featurespace::Label>) {
    use cm_featurespace::Label;
    let mut votes = Vec::with_capacity(n * n_lfs);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let pos = i % 20 == 0;
        labels.push(if pos { Label::Positive } else { Label::Negative });
        for j in 0..n_lfs {
            let fires = (i * 31 + j * 7) % 10 < 3;
            votes.push(if !fires {
                0
            } else if pos == (j % 2 == 0) {
                1
            } else {
                -1
            });
        }
    }
    let names = (0..n_lfs).map(|j| format!("lf{j}")).collect();
    (LabelMatrix::from_votes(n, n_lfs, votes, names), labels)
}

fn bench_label_model(c: &Harness) {
    let mut c = c.group("labelmodel");
    c.sample_size(20);
    let (m, labels) = synthetic_matrix(20_000, 40);
    c.bench_function("anchored_fit_predict_20k_x40", || {
        let model = AnchoredModel::fit(&m, &labels, None);
        model.predict(&m)
    });
    c.bench_function("em_fit_20k_x40", || {
        GenerativeModel::fit(&m, &GenerativeConfig { max_iters: 20, ..GenerativeConfig::default() })
    });
    c.finish();
}

fn bench_propagation(c: &Harness) {
    let mut c = c.group("propagation");
    c.sample_size(10);
    let w = world();
    let mut combined = w.generate(ModalityKind::Text, 1500, 8).table;
    combined.extend_from(&w.generate(ModalityKind::Image, 1500, 9).table);
    let mut cols = w.schema().columns_in_sets(&FeatureSet::SHARED, false);
    cols.push(w.schema().column("img_embedding").unwrap());
    let sim = SimilarityConfig::uniform(cols).fit_scales(&combined);

    c.bench_function("knn_graph_3k_anchors", || {
        GraphBuilder::approximate(10, combined.len()).build(&combined, &sim, 1)
    });
    let graph = GraphBuilder::approximate(10, combined.len()).build(&combined, &sim, 1);
    let seeds: Vec<(usize, f64)> = (0..1000).map(|v| (v, (v % 20 == 0) as u8 as f64)).collect();
    let cfg = PropagationConfig::default();
    c.bench_function("jacobi_3k", || propagate(&graph, &seeds, &cfg));
    c.bench_function("gauss_seidel_3k", || propagate_streaming(&graph, &seeds, &cfg));
    c.finish();
}

fn bench_training(c: &Harness) {
    let mut c = c.group("training");
    c.sample_size(10);
    let w = world();
    let data = w.generate(ModalityKind::Image, 4000, 11);
    let cols = w.schema().columns_in_sets(&FeatureSet::SHARED, true);
    let view = DenseView::fit(&[&data.table], cols).unwrap();
    let x = view.encode(&data.table);
    let y = data.labels_f64();

    c.bench_function("logistic_fit_4k", || {
        LogisticRegression::fit(
            &x,
            &y,
            None,
            &cm_models::logistic::LogisticConfig { epochs: 3, ..Default::default() },
        )
    });
    c.bench_batched(
        "mlp_epoch_4k_h32",
        || Mlp::new(x.cols(), &[32], 0.01, 1),
        |mut mlp| {
            mlp.train_epoch(
                &x,
                &y,
                None,
                &MlpEpochConfig { batch_size: 128, l2: 1e-4, shuffle_seed: 0 },
            )
        },
    );
    c.finish();
}

/// Serial-vs-parallel comparison of the `cm-par`-wired hot paths at
/// explicit thread counts (independent of `CM_THREADS`). On a single-core
/// host the t4 rows measure substrate overhead rather than speedup; see
/// `results/BENCH_par.json` for recorded context.
fn bench_par_substrate(c: &Harness) {
    let mut group = c.group("par");
    group.sample_size(10);

    // Apriori candidate-support counting (two chunked counting passes).
    let w = world();
    let data = w.generate(ModalityKind::Text, 8000, 5);
    let cols = w.schema().columns_in_sets(&FeatureSet::SHARED, false);
    let mine_cfg = MiningConfig::default();
    for threads in [1usize, 4] {
        let par = ParConfig::threads(threads);
        group.bench_function(format!("apriori_support_8k_t{threads}"), || {
            mine_itemsets_with(&data.table, &data.labels, &cols, &mine_cfg, &par)
        });
    }

    // Vote-matrix statistics over a 100k x 8 matrix (single fused pass).
    let (m, _) = synthetic_matrix(100_000, 8);
    for threads in [1usize, 4] {
        let par = ParConfig::threads(threads);
        group.bench_function(format!("vote_stats_100k_x8_t{threads}"), || m.vote_stats_with(&par));
    }

    // Dense GEMM, 256^3 (row chunks above the flop threshold).
    let fill = |seed: u32| {
        let mut m = Matrix::zeros(256, 256);
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            *v = (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 16) & 0xFF) as f32
                / 255.0
                - 0.5;
        }
        m
    };
    let (a, b) = (fill(1), fill(2));
    for threads in [1usize, 4] {
        let par = ParConfig::threads(threads);
        group.bench_function(format!("matmul_256_t{threads}"), || a.matmul_with(&b, &par));
    }
    group.finish();
}

/// The columnar hot-path kernels, benchmarked at an explicit single
/// thread so speedups are layout/fusion wins, not parallelism. The names
/// here are referenced by `results/BENCH_kernels.json`; the CI smoke runs
/// this group once with `CM_BENCH_SAMPLES=1`.
fn bench_kernels(c: &Harness) {
    let mut group = c.group("kernels");
    group.sample_size(10);
    let w = world();
    let par = ParConfig::threads(1);

    // Fused pair-weight kernel: mixed-modality 3k-row knn graph (same
    // workload as propagation/knn_graph_3k_anchors).
    let mut combined = w.generate(ModalityKind::Text, 1500, 8).table;
    combined.extend_from(&w.generate(ModalityKind::Image, 1500, 9).table);
    let mut cols = w.schema().columns_in_sets(&FeatureSet::SHARED, false);
    cols.push(w.schema().column("img_embedding").unwrap());
    let sim = SimilarityConfig::uniform(cols).fit_scales(&combined);
    group.bench_function("frozen_build_3k", || cm_featurespace::FrozenTable::freeze(&combined));
    group.bench_function("knn_graph_3k_anchors", || {
        GraphBuilder::approximate(10, combined.len()).build_with(&combined, &sim, 1, &par)
    });

    // Vertical bitset support counting (same workload as
    // mining/apriori_5k_order{1,2}).
    let data = w.generate(ModalityKind::Text, 5000, 5);
    let mine_cols = w.schema().columns_in_sets(&FeatureSet::SHARED, false);
    for order in [1usize, 2] {
        let cfg = MiningConfig { max_order: order, ..MiningConfig::default() };
        group.bench_function(format!("apriori_5k_order{order}"), || {
            mine_itemsets_with(&data.table, &data.labels, &mine_cols, &cfg, &par)
        });
    }

    // Cache-blocked GEMM, 256^3 (same operands as par/matmul_256_t1).
    let fill = |seed: u32| {
        let mut m = Matrix::zeros(256, 256);
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            *v = (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 16) & 0xFF) as f32
                / 255.0
                - 0.5;
        }
        m
    };
    let (a, b) = (fill(1), fill(2));
    group.bench_function("matmul_256", || a.matmul_with(&b, &par));
    group.finish();
}

fn bench_end_to_end_curation(c: &Harness) {
    let mut group = c.group("pipeline");
    group.sample_size(10);
    let data = TaskData::generate(TaskConfig::paper(TaskId::Ct1).scaled(0.02), 3, Some(64));
    let cfg = CurationConfig { prop_max_seeds: 500, ..CurationConfig::default() };
    group.bench_function("curate_ct1_tiny", || curate(&data, &cfg));
    group.finish();
}

/// Overhead of the resilient access layer (see `results/BENCH_faults.json`):
/// featurization routed through a *disabled* fault plan must cost <1% over
/// direct generation, and the degradation accounting in curation must not
/// move the end-to-end hot path.
fn bench_faults(c: &Harness) {
    use cm_faults::{AccessLayer, AccessPolicy, FaultPlan};
    let mut group = c.group("faults");
    group.sample_size(20);
    let w = world();
    group.bench_function("generate_2k_direct", || w.generate(ModalityKind::Image, 2000, 3));
    let disabled = FaultPlan::disabled();
    let descriptors = w.service_descriptors();
    group.bench_function("generate_2k_disabled_layer", || {
        let mut layer =
            AccessLayer::new(&disabled, AccessPolicy::default(), &descriptors, 3).unwrap();
        w.generate_via(ModalityKind::Image, 2000, 3, &mut layer, 0).unwrap()
    });
    let storm = FaultPlan::parse(
        "seed=7;topics=unavailable@0.5;keywords=transient(2)@0.6;page_quality=latency(300)@0.5;\
         user_reports=corrupt@0.4;kg_entities=stale",
    )
    .unwrap();
    group.bench_function("generate_2k_storm", || {
        let mut layer = AccessLayer::new(&storm, AccessPolicy::default(), &descriptors, 3).unwrap();
        w.generate_via(ModalityKind::Image, 2000, 3, &mut layer, 0).unwrap()
    });

    let task = TaskConfig::paper(TaskId::Ct1).scaled(0.02);
    let clean = TaskData::generate(task.clone(), 3, Some(64));
    let faulted =
        TaskData::generate_with_faults(task, 3, Some(64), &storm, AccessPolicy::default()).unwrap();
    let cfg = CurationConfig { prop_max_seeds: 500, ..CurationConfig::default() };
    group.bench_function("curate_clean", || curate(&clean, &cfg));
    group.bench_function("curate_under_storm", || curate(&faulted, &cfg));
    group.finish();
}

/// Scale sweep for the sharded out-of-core curation driver: 10^4 -> 10^6
/// pool rows streamed through `curate_streamed` under the default
/// `CM_MEM_BUDGET`, recording rows/sec and peak resident bytes into
/// `results/BENCH_scale.json`. Each size is one end-to-end timed run (these
/// are full curations, not microbenchmarks). `CM_SCALE_MAX_ROWS` caps the
/// sweep for smoke runs; `CM_SCALE_JSON` overrides the output path.
fn bench_scale(c: &Harness) {
    let group = c.group("scale");
    let max_rows = std::env::var("CM_SCALE_MAX_ROWS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1_000_000);
    let config = CurationConfig { use_label_propagation: false, ..CurationConfig::default() };
    let shard = ShardConfig::default();
    let mut rows: Vec<Json> = Vec::new();
    for n in [10_000usize, 100_000, 1_000_000] {
        let name = format!("curate_streamed_{n}");
        if n > max_rows || !group.enabled(&name) {
            continue;
        }
        let task = TaskConfig {
            n_text_labeled: 2000,
            n_image_unlabeled: n,
            n_image_test: 0,
            ..TaskConfig::paper(TaskId::Ct1)
        };
        let start = Instant::now();
        let streamed = curate_streamed(task, 3, &config, &shard).unwrap();
        let elapsed = start.elapsed();
        let rows_per_sec = n as f64 / elapsed.as_secs_f64();
        let stages = streamed.timing;
        println!(
            "scale/{:<32} {:>12?}  {:>10.0} rows/s  peak {:>11} bytes  ({} segments)",
            name, elapsed, rows_per_sec, streamed.stats.peak_bytes, streamed.stats.segments
        );
        println!(
            "scale/{:<32} stages ms: mining {:.0} propagation {:.0} lf_apply {:.0} \
             concat {:.0} model {:.0}",
            name,
            stages.mining.as_secs_f64() * 1e3,
            stages.propagation.as_secs_f64() * 1e3,
            stages.lf_application.as_secs_f64() * 1e3,
            stages.concat.as_secs_f64() * 1e3,
            stages.model.as_secs_f64() * 1e3
        );
        assert_eq!(streamed.output.probabilistic_labels.len(), n);
        rows.push(Json::obj([
            ("rows", Json::Num(n as f64)),
            ("segments", Json::Num(streamed.stats.segments as f64)),
            ("segment_rows", Json::Num(streamed.stats.segment_rows as f64)),
            ("elapsed_ms", Json::Num(elapsed.as_secs_f64() * 1e3)),
            ("rows_per_sec", Json::Num(rows_per_sec)),
            ("peak_resident_bytes", Json::Num(streamed.stats.peak_bytes as f64)),
            ("mining_ms", Json::Num(stages.mining.as_secs_f64() * 1e3)),
            ("propagation_ms", Json::Num(stages.propagation.as_secs_f64() * 1e3)),
            ("lf_application_ms", Json::Num(stages.lf_application.as_secs_f64() * 1e3)),
            ("concat_ms", Json::Num(stages.concat.as_secs_f64() * 1e3)),
            ("model_ms", Json::Num(stages.model.as_secs_f64() * 1e3)),
        ]));
    }
    if rows.is_empty() {
        return;
    }
    let report = Json::obj([
        ("bench", Json::Str("scale".to_owned())),
        ("source", Json::Str("cargo bench -p cm-bench --bench substrates -- scale".to_owned())),
        (
            "config",
            Json::obj([
                ("task", Json::Str("CT1 profile, n_text_labeled=2000, no test set".to_owned())),
                ("label_model", Json::Str("anchored".to_owned())),
                ("use_label_propagation", Json::Bool(false)),
                ("shard_rows", Json::Num(shard.segment_rows as f64)),
                ("mem_budget_bytes", Json::Num(shard.budget.limit() as f64)),
            ]),
        ),
        ("results", Json::Arr(rows)),
    ]);
    let path = std::env::var("CM_SCALE_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_scale.json").to_owned()
    });
    if let Some(dir) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(dir).unwrap();
    }
    std::fs::write(&path, report.to_string_pretty()).unwrap();
    println!("scale: wrote {path}");
}

/// End-to-end incremental serving benchmark over a 64-tick run: the
/// wire-format delta-log checkpoint, the legacy whole-file JSON
/// checkpoint, and no checkpointing at all. Records ingest throughput,
/// per-batch latency (simulated clock), the serving envelope, and the
/// per-tick checkpoint cost curve — flat for the delta log (O(batch) per
/// tick), linear for JSON (O(pool) per tick). Acceptance: final-tick
/// delta cost within 2x of the tick-4 cost, and wire-checkpointed wall
/// throughput >= 85% of the no-checkpoint path. Results go to
/// `results/BENCH_serve.json`; `CM_SERVE_JSON` overrides the output path.
fn bench_serve(c: &Harness) {
    use cm_serve::{run as serve_run, CheckpointFormat, RunOutcome, ServeConfig};
    let group = c.group("serve");
    // 64 ticks of ~40-row batches; one arrival per tick, so ticks track
    // batches and the checkpoint curve gets 64 points.
    let total_rows = 64 * 40;
    let config_for = |format: Option<CheckpointFormat>| {
        let task = TaskConfig::paper(TaskId::Ct2).scaled(0.02);
        let mut config = ServeConfig::new(task, 11);
        config.total_rows = total_rows;
        config.batch_rows = 40;
        config.incremental.curation.prop_max_seeds = 400;
        config.incremental.curation.mining.min_recall = 0.05;
        if let Some(format) = format {
            let path = std::env::temp_dir().join("cm_bench_serve_ckpt.bin");
            // A stale checkpoint would make the run resume (and measure
            // an empty service loop) instead of serving from scratch.
            let _ = std::fs::remove_file(&path);
            config.checkpoint_path = Some(path);
            config.checkpoint_format = format;
        }
        config
    };
    let par = ParConfig::from_env();
    let mut rows: Vec<Json> = Vec::new();
    let mut wall_by_name: Vec<(&str, f64)> = Vec::new();
    for (name, format) in [
        ("serve_ct2_wire_checkpoint", Some(CheckpointFormat::Wire)),
        ("serve_ct2_json_checkpoint", Some(CheckpointFormat::Json)),
        ("serve_ct2_no_checkpoint", None),
    ] {
        if !group.enabled(name) {
            continue;
        }
        let config = config_for(format);
        let start = Instant::now();
        let outcome = serve_run(&config, &par).unwrap();
        let elapsed = start.elapsed();
        let RunOutcome::Completed { report, timing } = outcome else {
            panic!("bench run crashed without crash injection");
        };
        let mut lat: Vec<u64> = report.latencies_ms.clone();
        lat.sort_unstable();
        let p50 = lat[lat.len() / 2];
        let max = *lat.last().unwrap();
        let mean = lat.iter().sum::<u64>() as f64 / lat.len() as f64;
        let wall_rows_per_sec = report.rows_ingested as f64 / elapsed.as_secs_f64();
        wall_by_name.push((name, wall_rows_per_sec));
        println!(
            "serve/{:<32} {:>12?}  {:>10.0} rows/s wall  {:>8.1} rows/s sim  \
             latency p50 {p50} max {max} sim-ms  envelope {:.2}% of curation",
            name,
            elapsed,
            wall_rows_per_sec,
            report.rows_per_sim_sec,
            timing.overhead_pct()
        );
        // The per-tick persistence curve: steady-state = non-base writes
        // when a delta log is in force, every write for whole-file JSON.
        let ticks = &timing.checkpoint_ticks;
        let steady: Vec<f64> = {
            let deltas: Vec<f64> = ticks
                .iter()
                .filter(|t| !t.wrote_base)
                .map(|t| t.elapsed.as_secs_f64() * 1e3)
                .collect();
            if deltas.is_empty() {
                ticks.iter().map(|t| t.elapsed.as_secs_f64() * 1e3).collect()
            } else {
                deltas
            }
        };
        let (tick4_ms, final_ms) = match steady.as_slice() {
            [] => (0.0, 0.0),
            s => (s[3.min(s.len() - 1)], s[s.len() - 1]),
        };
        if format.is_some() {
            println!(
                "serve/{:<32} checkpoint {} writes, {} bytes total; steady-state \
                 ms/tick: tick4 {tick4_ms:.3} final {final_ms:.3}",
                name,
                ticks.len(),
                timing.checkpoint_bytes
            );
        }
        let curve: Vec<Json> = ticks
            .iter()
            .map(|t| {
                Json::obj([
                    ("tick", Json::Num(t.tick as f64)),
                    ("ms", Json::Num(t.elapsed.as_secs_f64() * 1e3)),
                    ("bytes_written", Json::Num(t.bytes_written as f64)),
                    ("wrote_base", Json::Bool(t.wrote_base)),
                ])
            })
            .collect();
        rows.push(Json::obj([
            ("name", Json::Str(name.to_owned())),
            ("checkpointed", Json::Bool(format.is_some())),
            (
                "checkpoint_format",
                match format {
                    Some(CheckpointFormat::Wire) => Json::Str("wire".to_owned()),
                    Some(CheckpointFormat::Json) => Json::Str("json".to_owned()),
                    None => Json::Null,
                },
            ),
            ("rows_ingested", Json::Num(report.rows_ingested as f64)),
            ("batches", Json::Num(report.batches.len() as f64)),
            ("ticks", Json::Num(report.ticks as f64)),
            ("sim_ms", Json::Num(report.sim_ms as f64)),
            ("rows_per_sim_sec", Json::Num(report.rows_per_sim_sec)),
            ("wall_elapsed_ms", Json::Num(elapsed.as_secs_f64() * 1e3)),
            ("wall_rows_per_sec", Json::Num(wall_rows_per_sec)),
            ("latency_sim_ms_mean", Json::Num(mean)),
            ("latency_sim_ms_p50", Json::Num(p50 as f64)),
            ("latency_sim_ms_max", Json::Num(max as f64)),
            ("setup_ms", Json::Num(timing.setup.as_secs_f64() * 1e3)),
            ("generation_ms", Json::Num(timing.generation.as_secs_f64() * 1e3)),
            ("curation_ms", Json::Num(timing.curation.as_secs_f64() * 1e3)),
            ("checkpoint_ms", Json::Num(timing.checkpoint.as_secs_f64() * 1e3)),
            ("checkpoint_bytes", Json::Num(timing.checkpoint_bytes as f64)),
            ("checkpoint_steady_ms_tick4", Json::Num(tick4_ms)),
            ("checkpoint_steady_ms_final", Json::Num(final_ms)),
            ("checkpoint_ticks", Json::Arr(curve)),
            ("envelope_ms", Json::Num(timing.envelope().as_secs_f64() * 1e3)),
            ("serving_overhead_pct_of_curation", Json::Num(timing.overhead_pct())),
        ]));
    }
    if rows.is_empty() {
        return;
    }
    let throughput_ratio = {
        let wall = |n: &str| wall_by_name.iter().find(|(name, _)| *name == n).map(|&(_, w)| w);
        match (wall("serve_ct2_wire_checkpoint"), wall("serve_ct2_no_checkpoint")) {
            (Some(wire), Some(none)) if none > 0.0 => Some(wire / none),
            _ => None,
        }
    };
    if let Some(r) = throughput_ratio {
        println!("serve/wire_vs_no_checkpoint_throughput   {:.1}%", 100.0 * r);
    }
    let report = Json::obj([
        ("bench", Json::Str("serve".to_owned())),
        ("source", Json::Str("cargo bench -p cm-bench --bench substrates -- serve".to_owned())),
        (
            "config",
            Json::obj([
                (
                    "task",
                    Json::Str(
                        "CT2 profile scaled 0.02, 2560 rows in 40-row batches (64 ticks), seed 11"
                            .to_owned(),
                    ),
                ),
                (
                    "acceptance",
                    Json::Str(
                        "steady-state checkpoint ms/tick flat (final within 2x of tick 4); \
                         wire-checkpointed wall throughput >= 85% of no-checkpoint"
                            .to_owned(),
                    ),
                ),
            ]),
        ),
        ("wire_throughput_vs_no_checkpoint", throughput_ratio.map_or(Json::Null, Json::Num)),
        ("results", Json::Arr(rows)),
    ]);
    let path = std::env::var("CM_SERVE_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_serve.json").to_owned()
    });
    if let Some(dir) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(dir).unwrap();
    }
    std::fs::write(&path, report.to_string_pretty()).unwrap();
    println!("serve: wrote {path}");
}

fn main() {
    let harness = Harness::from_args();
    bench_feature_generation(&harness);
    bench_mining(&harness);
    bench_label_model(&harness);
    bench_propagation(&harness);
    bench_training(&harness);
    bench_par_substrate(&harness);
    bench_kernels(&harness);
    bench_end_to_end_curation(&harness);
    bench_faults(&harness);
    bench_serve(&harness);
    bench_scale(&harness);
}
