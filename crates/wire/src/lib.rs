//! # cm-wire
//!
//! A compact binary codec for durable state, built with the same hermetic
//! discipline as `cm-json`: zero registry dependencies, deterministic
//! output, and decoders that return errors instead of panicking on any
//! input whatsoever.
//!
//! Three layers:
//!
//! - **Primitives** ([`Writer`]/[`Reader`]) — LEB128 varints for unsigned
//!   ints, zigzag varints for signed ints, raw little-endian IEEE-754 bits
//!   for floats (NaN payloads and ±Inf round-trip bit-exactly, which JSON
//!   cannot do), and length-prefixed byte strings.
//! - **Frames** ([`append_frame`]/[`read_frame`]) — a tagged,
//!   length-prefixed record with a trailing FNV-1a 64 checksum over the
//!   tag, length, and payload. A truncated or bit-flipped frame is
//!   *detected*, not misparsed: [`read_frame`] fails cleanly and the
//!   caller can discard the torn tail of an append-only log and resume
//!   from the last complete record.
//! - **Headers** ([`write_header`]/[`read_header`]) — a 4-byte magic plus
//!   a format-version varint at the front of a stream, so version drift is
//!   an explicit error rather than a garbage decode.
//!
//! The primary consumer is `cm-serve`'s incremental checkpoint log
//! (base snapshot + append-only per-tick deltas); the codec itself knows
//! nothing about checkpoints and is reusable for any framed binary state.

use std::fmt;

/// Maximum encoded length of a u64 LEB128 varint.
const MAX_VARINT_BYTES: usize = 10;

/// Decode failure: position and reason. Never a panic — every decoder in
/// this crate returns `WireResult` on arbitrary (including adversarial)
/// input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset in the reader at which the failure was detected.
    pub offset: usize,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for WireError {}

/// Result alias for decoders.
pub type WireResult<T> = Result<T, WireError>;

/// FNV-1a 64 over a byte slice — the per-frame checksum primitive (also
/// usable standalone for cheap content digests).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// --- writer --------------------------------------------------------------

/// Append-only encoder over a growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The encoded bytes so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Encoded length so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Unsigned LEB128 varint.
    pub fn u64v(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// `usize` as an unsigned varint.
    pub fn usizev(&mut self, v: usize) {
        self.u64v(v as u64);
    }

    /// `u32` as an unsigned varint.
    pub fn u32v(&mut self, v: u32) {
        self.u64v(u64::from(v));
    }

    /// Signed zigzag varint: small magnitudes of either sign stay short.
    pub fn i64z(&mut self, v: i64) {
        self.u64v(((v << 1) ^ (v >> 63)) as u64);
    }

    /// `f64` as its raw little-endian IEEE-754 bits: every value —
    /// including NaN payloads and ±Inf — round-trips bit-exactly.
    pub fn f64b(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// `f32` as raw little-endian bits.
    pub fn f32b(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usizev(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

// --- reader --------------------------------------------------------------

/// Bounds-checked decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the reader is exhausted.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn err<T>(&self, message: impl Into<String>) -> WireResult<T> {
        Err(WireError { offset: self.pos, message: message.into() })
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        match self.buf.get(self.pos..self.pos.saturating_add(n)) {
            Some(slice) => {
                self.pos += n;
                Ok(slice)
            }
            None => self.err(format!("truncated: wanted {n} bytes, had {}", self.remaining())),
        }
    }

    /// One raw byte.
    pub fn u8(&mut self) -> WireResult<u8> {
        match self.buf.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => self.err("truncated: wanted 1 byte, had 0"),
        }
    }

    /// Bool from one byte; anything but 0/1 is an error.
    pub fn bool(&mut self) -> WireResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => self.err(format!("invalid bool byte {b:#04x}")),
        }
    }

    /// Unsigned LEB128 varint.
    pub fn u64v(&mut self) -> WireResult<u64> {
        let mut v: u64 = 0;
        for i in 0..MAX_VARINT_BYTES {
            let byte = self.u8()?;
            let bits = u64::from(byte & 0x7f);
            // The 10th byte may only carry the single remaining bit.
            if i == MAX_VARINT_BYTES - 1 && bits > 1 {
                return self.err("varint overflows u64");
            }
            v |= bits << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        self.err("varint longer than 10 bytes")
    }

    /// `usize` from an unsigned varint, rejecting values over `usize::MAX`.
    pub fn usizev(&mut self) -> WireResult<usize> {
        let v = self.u64v()?;
        usize::try_from(v).or_else(|_| self.err(format!("varint {v} overflows usize")))
    }

    /// `u32` from an unsigned varint, range-checked.
    pub fn u32v(&mut self) -> WireResult<u32> {
        let v = self.u64v()?;
        u32::try_from(v).or_else(|_| self.err(format!("varint {v} overflows u32")))
    }

    /// Signed zigzag varint.
    pub fn i64z(&mut self) -> WireResult<i64> {
        let v = self.u64v()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// `f64` from raw little-endian bits (bit-exact, NaN/Inf included).
    pub fn f64b(&mut self) -> WireResult<f64> {
        let raw = self.take(8)?;
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(raw);
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    /// `f32` from raw little-endian bits.
    pub fn f32b(&mut self) -> WireResult<f32> {
        let raw = self.take(4)?;
        let mut bytes = [0u8; 4];
        bytes.copy_from_slice(raw);
        Ok(f32::from_bits(u32::from_le_bytes(bytes)))
    }

    /// Length-prefixed byte string.
    pub fn bytes(&mut self) -> WireResult<&'a [u8]> {
        let n = self.usizev()?;
        if n > self.remaining() {
            return self
                .err(format!("truncated: string claims {n} bytes, had {}", self.remaining()));
        }
        self.take(n)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> WireResult<String> {
        let offset = self.pos;
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| WireError { offset, message: "invalid UTF-8 string".to_owned() })
    }
}

// --- headers -------------------------------------------------------------

/// Writes a stream header: 4 magic bytes + a format-version varint.
pub fn write_header(out: &mut Writer, magic: &[u8; 4], version: u32) {
    out.buf.extend_from_slice(magic);
    out.u32v(version);
}

/// Reads and validates a stream header, returning the format version.
///
/// # Errors
/// Fails on truncation or a magic mismatch; the caller owns the version
/// check so it can phrase its own compatibility error.
pub fn read_header(reader: &mut Reader<'_>, magic: &[u8; 4]) -> WireResult<u32> {
    let offset = reader.pos();
    let got = reader.take(4)?;
    if got != magic {
        return Err(WireError {
            offset,
            message: format!("bad magic {got:02x?} (expected {magic:02x?})"),
        });
    }
    reader.u32v()
}

// --- frames --------------------------------------------------------------

/// One decoded frame: a tag byte and its checksummed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame<'a> {
    /// Record-type tag.
    pub tag: u8,
    /// Verified payload bytes.
    pub payload: &'a [u8],
}

/// Appends one frame: `tag`, payload-length varint, payload, then an
/// FNV-1a 64 checksum (little-endian) over everything before it. Any
/// single corrupted or missing byte makes [`read_frame`] fail.
pub fn append_frame(out: &mut Writer, tag: u8, payload: &[u8]) {
    let start = out.len();
    out.u8(tag);
    out.usizev(payload.len());
    out.buf.extend_from_slice(payload);
    let sum = fnv1a64(&out.buf[start..]);
    out.buf.extend_from_slice(&sum.to_le_bytes());
}

/// Reads and verifies one frame.
///
/// # Errors
/// Fails on truncation (tag, length, payload, or checksum cut short) and
/// on checksum mismatch. On error the reader position is unspecified;
/// callers recovering a torn log should remember the offset of the last
/// good frame and discard everything after it.
pub fn read_frame<'a>(reader: &mut Reader<'a>) -> WireResult<Frame<'a>> {
    let start = reader.pos();
    let tag = reader.u8()?;
    let len = reader.usizev()?;
    if len > reader.remaining() {
        return Err(WireError {
            offset: reader.pos(),
            message: format!(
                "truncated frame: payload claims {len} bytes, had {}",
                reader.remaining()
            ),
        });
    }
    let payload_at = reader.pos();
    let payload = reader.take(len)?;
    let framed = &reader.buf[start..reader.pos()];
    let expected = fnv1a64(framed);
    let raw = reader.take(8)?;
    let mut sum = [0u8; 8];
    sum.copy_from_slice(raw);
    if u64::from_le_bytes(sum) != expected {
        return Err(WireError {
            offset: payload_at,
            message: format!("frame checksum mismatch (tag {tag:#04x}, {len}-byte payload)"),
        });
    }
    Ok(Frame { tag, payload })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip_at_the_edges() {
        let mut w = Writer::new();
        let values = [0u64, 1, 127, 128, 16383, 16384, u64::from(u32::MAX), u64::MAX];
        for &v in &values {
            w.u64v(v);
        }
        let mut r = Reader::new(w.as_bytes());
        for &v in &values {
            assert_eq!(r.u64v().unwrap(), v);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn zigzag_round_trips_signed_extremes() {
        let mut w = Writer::new();
        let values = [0i64, -1, 1, i64::MIN, i64::MAX, -64, 63];
        for &v in &values {
            w.i64z(v);
        }
        let mut r = Reader::new(w.as_bytes());
        for &v in &values {
            assert_eq!(r.i64z().unwrap(), v);
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly_including_nan() {
        let mut w = Writer::new();
        let specials =
            [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, f64::MIN_POSITIVE, 1.0 / 3.0];
        for &v in &specials {
            w.f64b(v);
        }
        let mut r = Reader::new(w.as_bytes());
        for &v in &specials {
            assert_eq!(r.f64b().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn frames_detect_any_single_bit_flip() {
        let mut w = Writer::new();
        append_frame(&mut w, 7, b"hello, frame");
        let clean = w.as_bytes().to_vec();
        assert_eq!(read_frame(&mut Reader::new(&clean)).unwrap().payload, b"hello, frame");
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut bad = clean.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    read_frame(&mut Reader::new(&bad)).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncated_frames_error_at_every_cut() {
        let mut w = Writer::new();
        append_frame(&mut w, 1, &[0xAB; 32]);
        let clean = w.as_bytes();
        for cut in 0..clean.len() {
            assert!(read_frame(&mut Reader::new(&clean[..cut])).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn header_rejects_wrong_magic() {
        let mut w = Writer::new();
        write_header(&mut w, b"CMW1", 3);
        let mut r = Reader::new(w.as_bytes());
        assert_eq!(read_header(&mut r, b"CMW1").unwrap(), 3);
        let mut r = Reader::new(w.as_bytes());
        assert!(read_header(&mut r, b"XXXX").is_err());
    }

    #[test]
    fn decoders_never_panic_on_garbage() {
        // Deterministic garbage: every decode either succeeds or errors.
        let garbage: Vec<u8> =
            (0..512u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        for start in 0..64 {
            let mut r = Reader::new(&garbage[start..]);
            let _ = read_frame(&mut r);
            let mut r = Reader::new(&garbage[start..]);
            let _ = r.u64v();
            let _ = r.str();
            let _ = r.bool();
        }
    }
}
