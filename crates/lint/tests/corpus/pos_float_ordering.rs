//@ path: crates/demo/src/lib.rs
// Seeded positive: partial_cmp comparators and NaN-dropping fold
// functions.

pub fn f(scores: &mut [f64], xs: &[f32]) -> f64 {
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let hi = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let lo = xs.iter().copied().reduce(f32::min).unwrap_or(0.0);
    let near = scores
        .iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
        .unwrap_or(0.0);
    hi + f64::from(lo) + near
}
