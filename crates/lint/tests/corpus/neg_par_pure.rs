//@ path: crates/demo/src/pure.rs
//! Negative: pure closures over their own arguments are exactly what the
//! cm-par entry points are for.

fn double(v: u64) -> u64 {
    v * 2
}

pub fn scale(items: &[u64]) -> Vec<u64> {
    cm_par::par_map(items.len(), |i| double(items[i]))
}

pub fn windowed(items: &[u64], chunk: usize) -> Vec<u64> {
    cm_par::par_map_chunks(items.len(), chunk, |range| {
        range.map(|i| items[i]).sum::<u64>()
    })
}
