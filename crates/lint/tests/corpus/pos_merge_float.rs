//@ path: crates/demo/src/train.rs
//! Positive: float accumulation in `par_map_reduce` merge position —
//! once in an inline merge closure, once through a named merge function.

fn add_grad(mut a: Vec<f64>, b: Vec<f64>) -> Vec<f64> {
    for (x, y) in a.iter_mut().zip(&b) {
        *x += *y;
    }
    a
}

pub fn train_inline(cfg: &cm_par::ParConfig, n: usize, grads: &[Vec<f64>]) -> Vec<f64> {
    let folded = cm_par::par_map_reduce(
        cfg,
        n,
        |range| {
            let mut acc = vec![0.0f64; 4];
            for i in range {
                for (a, g) in acc.iter_mut().zip(&grads[i]) {
                    *a += *g;
                }
            }
            acc
        },
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += *y;
            }
            a
        },
    );
    folded.unwrap_or_default()
}

pub fn train_named(cfg: &cm_par::ParConfig, n: usize, grads: &[Vec<f64>]) -> Vec<f64> {
    let folded = cm_par::par_map_reduce(cfg, n, |_range| vec![0.0f64; 4], add_grad);
    folded.unwrap_or_default()
}
