//! Regenerates **Table 1**: per-task dataset sizes and test-set positive
//! rates, at the configured synthetic scale (default 1/1000 of the paper).
//!
//! Tasks, scale, and seed come from `specs/table1.json`; `CM_SCALE` and
//! `CM_SEED` override the spec's defaults.

use cm_bench::{load_spec, maybe_write_json, spec_scale, spec_seed};
use cm_json::{Json, ToJson};
use cm_orgsim::{TaskConfig, World, WorldConfig};

struct Row {
    task: String,
    n_labeled_text: usize,
    n_unlabeled_image: usize,
    n_labeled_image_test: usize,
    test_positive_rate: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("task", self.task.to_json()),
            ("n_labeled_text", self.n_labeled_text.to_json()),
            ("n_unlabeled_image", self.n_unlabeled_image.to_json()),
            ("n_labeled_image_test", self.n_labeled_image_test.to_json()),
            ("test_positive_rate", self.test_positive_rate.to_json()),
        ])
    }
}

fn main() {
    let spec = load_spec("table1");
    let scale = spec_scale(&spec);
    let seed = spec_seed(&spec);
    println!("Table 1 (synthetic scale {scale} of the 1/1000-paper sizes, seed {seed})");
    println!(
        "{:<6} {:>14} {:>18} {:>14} {:>8}",
        "Task", "n_lbld_text", "n_unlbld_image", "n_lbld_image", "% Pos"
    );
    let mut rows = Vec::new();
    for &id in &spec.tasks {
        let task = TaskConfig::paper(id).scaled(scale);
        let world = World::build(WorldConfig::new(task.clone(), seed));
        let (text, pool, test) = world.generate_task_datasets(seed);
        let row = Row {
            task: id.name().to_owned(),
            n_labeled_text: text.len(),
            n_unlabeled_image: pool.len(),
            n_labeled_image_test: test.len(),
            test_positive_rate: test.positive_rate(),
        };
        println!(
            "{:<6} {:>14} {:>18} {:>14} {:>7.1}%",
            row.task,
            row.n_labeled_text,
            row.n_unlabeled_image,
            row.n_labeled_image_test,
            row.test_positive_rate * 100.0
        );
        rows.push(row);
    }
    maybe_write_json(&rows);
}
