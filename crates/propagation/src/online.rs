//! Online k-NN graph maintenance for the incremental serving loop.
//!
//! The batch [`GraphBuilder`](crate::GraphBuilder) rebuilds the whole
//! graph from scratch; a long-running curation service cannot afford that
//! on every arrival batch. [`OnlineGraph`] instead *grows* an anchor-based
//! approximate graph: each new row is routed to its nearest existing
//! anchors, scanned only against co-routed rows, and — while the anchor
//! pool is below its size target — promoted to an anchor itself so later
//! arrivals keep routing well as the corpus grows.
//!
//! Two contracts matter for serving:
//!
//! - **Cut invariance**: inserting rows one at a time, or in arrival
//!   batches of any size, produces the identical edge list. Rows are
//!   inserted strictly sequentially (each sees exactly the anchors and
//!   members left by its predecessors), so batch boundaries are invisible
//!   by construction — and so is the thread count.
//! - **Resumability**: [`OnlineGraph::snapshot`] exports the full
//!   routing state ([`OnlineGraphState`]); a graph restored from it
//!   continues bit-identically to one that never stopped. This is what the
//!   serve checkpoint stores instead of edge-by-edge deltas.
//!
//! Earlier rows are never re-routed when a new anchor appears — that is
//! the accepted approximation cost of avoiding full rebuilds, mirroring
//! how Expander-style systems absorb incremental updates between offline
//! rebuilds.

use cm_featurespace::{FrozenTable, PairKernel, SimilarityConfig};

use crate::builder::{candidate_stride, route_row, TopK};
use crate::graph::SparseGraph;

/// Anchor-pool size target for a corpus of `n` rows. Matches the batch
/// builder's [`GraphBuilder::approximate`](crate::GraphBuilder::approximate)
/// sizing so online and batch graphs face comparable routing fan-out.
pub fn target_anchor_count(n: usize) -> usize {
    ((n as f64).sqrt() as usize).clamp(16, 512)
}

/// Exported routing state of an [`OnlineGraph`]: everything needed to
/// resume insertion bit-identically. Serialized into the serve checkpoint
/// by `cm-serve`'s snapshot module (the `checkpoint-drift` lint confines
/// field access to that module and to this crate).
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineGraphState {
    /// Rows inserted so far; the next insertion starts here.
    pub n_rows: usize,
    /// Row ids promoted to anchors, in promotion order.
    pub anchors: Vec<u32>,
    /// Per-anchor member lists (rows routed to that anchor), aligned with
    /// `anchors`.
    pub anchor_members: Vec<Vec<u32>>,
    /// Accumulated `(src, dst, weight)` edges; `src` is always the newer
    /// row, symmetrization happens when the [`SparseGraph`] is built.
    pub edges: Vec<(u32, u32, f32)>,
}

/// Incrementally grown approximate k-NN graph.
#[derive(Debug, Clone)]
pub struct OnlineGraph {
    /// Neighbors kept per inserted row.
    pub k: usize,
    /// Anchors each new row is routed to.
    pub probes: usize,
    /// Cap on exact comparisons per inserted row.
    pub max_candidates: usize,
    /// Minimum similarity for an edge to exist at all.
    pub min_weight: f64,
    n_rows: usize,
    anchors: Vec<u32>,
    anchor_members: Vec<Vec<u32>>,
    edges: Vec<(u32, u32, f32)>,
}

impl OnlineGraph {
    /// An empty graph keeping `k` neighbors per row, with the batch
    /// builder's default routing parameters (4 probes, 256 candidates,
    /// weight floor 0.05).
    pub fn new(k: usize) -> Self {
        OnlineGraph {
            k,
            probes: 4,
            max_candidates: 256,
            min_weight: 0.05,
            n_rows: 0,
            anchors: Vec::new(),
            anchor_members: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Rows inserted so far.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Current anchor-pool size.
    pub fn n_anchors(&self) -> usize {
        self.anchors.len()
    }

    /// Accumulated edge count (pre-symmetrization).
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Inserts every row the frozen table holds beyond the rows already
    /// inserted. The table must be a prefix-stable view of the growing
    /// corpus: rows `0..self.n_rows()` are the previously inserted ones,
    /// in the same order.
    ///
    /// # Panics
    /// Panics if the table has fewer rows than were already inserted.
    pub fn insert_rows(&mut self, frozen: &FrozenTable<'_>, config: &SimilarityConfig) {
        assert!(
            frozen.len() >= self.n_rows,
            "frozen table shrank below the inserted prefix ({} < {})",
            frozen.len(),
            self.n_rows
        );
        if frozen.len() == self.n_rows {
            return;
        }
        let kernel = PairKernel::compile(frozen, config);
        for i in self.n_rows..frozen.len() {
            self.insert_row(&kernel, i);
        }
        self.n_rows = frozen.len();
    }

    fn insert_row(&mut self, kernel: &PairKernel<'_>, i: usize) {
        let scores: Vec<f64> = self.anchors.iter().map(|&a| kernel.pair(i, a as usize)).collect();
        let route = route_row(&scores, self.probes);
        let mut candidates: Vec<u32> = Vec::new();
        for &a in &route {
            candidates.extend_from_slice(&self.anchor_members[a]);
        }
        candidates.sort_unstable();
        candidates.dedup();
        let stride = candidate_stride(candidates.len(), self.max_candidates);
        let mut top = TopK::new(self.k);
        for &j in candidates.iter().step_by(stride) {
            let s = kernel.pair(i, j as usize);
            if s >= self.min_weight {
                top.push(j, s as f32);
            }
        }
        top.drain_into(i as u32, &mut self.edges);
        for &a in &route {
            self.anchor_members[a].push(i as u32);
        }
        // Grow the anchor pool toward its size target by promoting the
        // newest row; existing rows are never re-routed.
        if self.anchors.len() < target_anchor_count(i + 1) {
            self.anchors.push(i as u32);
            self.anchor_members.push(vec![i as u32]);
        }
    }

    /// Materializes the current graph (symmetrized CSR over all inserted
    /// rows). Rebuilding from the same edge list is deterministic, so the
    /// propagation stage sees identical graphs before and after a resume.
    pub fn graph(&self) -> SparseGraph {
        SparseGraph::from_edges(self.n_rows, &self.edges)
    }

    /// Exports the full routing state for checkpointing.
    pub fn snapshot(&self) -> OnlineGraphState {
        OnlineGraphState {
            n_rows: self.n_rows,
            anchors: self.anchors.clone(),
            anchor_members: self.anchor_members.clone(),
            edges: self.edges.clone(),
        }
    }

    /// Rebuilds a graph from an exported state; insertion resumes exactly
    /// where the snapshot was taken. The routing parameters are not part
    /// of the state and must match the original graph's.
    ///
    /// # Panics
    /// Panics if the state's anchor and member lists disagree in length.
    pub fn from_snapshot(k: usize, state: OnlineGraphState) -> Self {
        assert_eq!(
            state.anchors.len(),
            state.anchor_members.len(),
            "anchor list and member lists disagree"
        );
        let mut g = OnlineGraph::new(k);
        g.n_rows = state.n_rows;
        g.anchors = state.anchors;
        g.anchor_members = state.anchor_members;
        g.edges = state.edges;
        g
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use cm_featurespace::{
        CatSet, FeatureDef, FeatureSchema, FeatureSet, FeatureTable, FeatureValue, ServingMode,
        Vocabulary,
    };

    use super::*;

    /// Two clean clusters: rows < n/2 share ids {0,1}; the rest share {2,3}.
    fn clustered(n: usize) -> FeatureTable {
        let schema = Arc::new(FeatureSchema::from_defs(vec![FeatureDef::categorical(
            "c",
            FeatureSet::C,
            ServingMode::Servable,
            Vocabulary::from_names(["a", "b", "c", "d"]),
        )]));
        let mut t = FeatureTable::new(schema);
        for i in 0..n {
            let ids = if i < n / 2 { vec![0, 1] } else { vec![2, 3] };
            t.push_row(&[FeatureValue::Categorical(CatSet::from_ids(ids))]);
        }
        t
    }

    /// Interleaved clusters, so any contiguous arrival batch mixes both.
    fn interleaved(n: usize) -> FeatureTable {
        let schema = Arc::new(FeatureSchema::from_defs(vec![FeatureDef::categorical(
            "c",
            FeatureSet::C,
            ServingMode::Servable,
            Vocabulary::from_names(["a", "b", "c", "d"]),
        )]));
        let mut t = FeatureTable::new(schema);
        for i in 0..n {
            let ids = if i % 2 == 0 { vec![0, 1] } else { vec![2, 3] };
            t.push_row(&[FeatureValue::Categorical(CatSet::from_ids(ids))]);
        }
        t
    }

    /// The first `end` rows of `t` as their own table, simulating the
    /// corpus as it looked mid-arrival.
    fn prefix_table(t: &FeatureTable, end: usize) -> FeatureTable {
        let mut prefix = FeatureTable::new(t.schema().clone());
        for r in 0..end {
            prefix.push_row(&t.row(r));
        }
        prefix
    }

    fn insert_in_cuts(t: &FeatureTable, cfg: &SimilarityConfig, cuts: &[usize]) -> OnlineGraph {
        let mut g = OnlineGraph::new(4);
        for &end in cuts.iter().chain([&t.len()]) {
            let prefix = prefix_table(t, end);
            g.insert_rows(&FrozenTable::freeze(&prefix), cfg);
        }
        g
    }

    #[test]
    fn batch_cuts_are_invisible() {
        let t = interleaved(120);
        let cfg = SimilarityConfig::uniform(vec![0]);
        let frozen = FrozenTable::freeze(&t);
        let mut whole = OnlineGraph::new(4);
        whole.insert_rows(&frozen, &cfg);
        for cuts in [vec![1usize], vec![64], vec![10, 30, 90], vec![120]] {
            let g = insert_in_cuts(&t, &cfg, &cuts);
            assert_eq!(g.snapshot(), whole.snapshot(), "cuts = {cuts:?}");
        }
    }

    #[test]
    fn online_graph_recovers_cluster_structure() {
        let t = clustered(400);
        let cfg = SimilarityConfig::uniform(vec![0]);
        let frozen = FrozenTable::freeze(&t);
        let mut og = OnlineGraph::new(5);
        og.insert_rows(&frozen, &cfg);
        let g = og.graph();
        let mut cross = 0usize;
        let mut total = 0usize;
        for v in 0..400 {
            let (neigh, _) = g.neighbors(v);
            for &u in neigh {
                total += 1;
                if (v < 200) != ((u as usize) < 200) {
                    cross += 1;
                }
            }
        }
        assert!(total > 0);
        assert_eq!(cross, 0, "{cross}/{total} cross-cluster edges");
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let t = interleaved(200);
        let cfg = SimilarityConfig::uniform(vec![0]);
        // Uninterrupted run.
        let frozen = FrozenTable::freeze(&t);
        let mut whole = OnlineGraph::new(4);
        whole.insert_rows(&frozen, &cfg);
        // Run to row 80, snapshot, restore into a fresh graph, continue.
        let mut first = OnlineGraph::new(4);
        first.insert_rows(&FrozenTable::freeze(&prefix_table(&t, 80)), &cfg);
        let state = first.snapshot();
        let mut resumed = OnlineGraph::from_snapshot(4, state);
        resumed.insert_rows(&frozen, &cfg);
        assert_eq!(resumed.snapshot(), whole.snapshot());
        assert_eq!(resumed.graph(), whole.graph());
    }

    #[test]
    fn anchor_pool_tracks_size_target() {
        let t = clustered(600);
        let cfg = SimilarityConfig::uniform(vec![0]);
        let mut og = OnlineGraph::new(4);
        og.insert_rows(&FrozenTable::freeze(&t), &cfg);
        assert_eq!(og.n_anchors(), target_anchor_count(600));
    }

    #[test]
    fn empty_insert_is_a_no_op() {
        let t = clustered(50);
        let cfg = SimilarityConfig::uniform(vec![0]);
        let mut og = OnlineGraph::new(4);
        let frozen = FrozenTable::freeze(&t);
        og.insert_rows(&frozen, &cfg);
        let before = og.snapshot();
        og.insert_rows(&frozen, &cfg);
        assert_eq!(og.snapshot(), before);
    }
}
