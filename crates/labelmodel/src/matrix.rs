//! The label matrix: LF votes over a dataset, plus aggregate vote
//! statistics (coverage, overlap, conflict — Snorkel's standard
//! diagnostics).

use cm_featurespace::FeatureTable;

use crate::lf::{LabelingFunction, Vote};

/// Dense `n_rows x n_lfs` matrix of vote encodings (`+1/-1/0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelMatrix {
    n_rows: usize,
    n_lfs: usize,
    votes: Vec<i8>,
    names: Vec<String>,
}

impl LabelMatrix {
    /// Applies every LF to every row of `table`.
    ///
    /// LF application parallelizes across row chunks with scoped threads
    /// when the workload is large enough to pay for it; the paper applies
    /// LFs with MapReduce for the same reason (§6.3).
    pub fn apply(table: &FeatureTable, lfs: &[Box<dyn LabelingFunction>]) -> Self {
        let n_rows = table.len();
        let n_lfs = lfs.len();
        let names = lfs.iter().map(|lf| lf.name().to_owned()).collect();
        let mut votes = vec![0i8; n_rows * n_lfs];

        const PAR_THRESHOLD: usize = 50_000;
        let work = n_rows.saturating_mul(n_lfs);
        if work < PAR_THRESHOLD || n_rows < 2 {
            fill_votes(table, lfs, &mut votes, 0, n_rows);
        } else {
            let n_threads = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
                .min(8);
            let chunk_rows = n_rows.div_ceil(n_threads);
            std::thread::scope(|scope| {
                for (i, chunk) in votes.chunks_mut(chunk_rows * n_lfs).enumerate() {
                    let start = i * chunk_rows;
                    let end = (start + chunk.len() / n_lfs).min(n_rows);
                    scope.spawn(move || {
                        let mut local = vec![0i8; chunk.len()];
                        fill_votes_into(table, lfs, &mut local, start, end);
                        chunk.copy_from_slice(&local);
                    });
                }
            });
        }
        Self { n_rows, n_lfs, votes, names }
    }

    /// Builds a matrix from raw encodings (row-major).
    ///
    /// # Panics
    /// Panics if the data length or any encoding is invalid.
    pub fn from_votes(n_rows: usize, n_lfs: usize, votes: Vec<i8>, names: Vec<String>) -> Self {
        assert_eq!(votes.len(), n_rows * n_lfs, "vote matrix shape mismatch");
        assert_eq!(names.len(), n_lfs, "LF name count mismatch");
        assert!(votes.iter().all(|v| (-1..=1).contains(v)), "votes must be in {{-1, 0, 1}}");
        Self { n_rows, n_lfs, votes, names }
    }

    /// Number of data points.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of labeling functions.
    pub fn n_lfs(&self) -> usize {
        self.n_lfs
    }

    /// LF names in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The vote of LF `lf` on row `row`.
    #[inline]
    pub fn vote(&self, row: usize, lf: usize) -> Vote {
        Vote::from_i8(self.votes[row * self.n_lfs + lf])
    }

    /// Raw encoded votes of one row.
    #[inline]
    pub fn row(&self, row: usize) -> &[i8] {
        &self.votes[row * self.n_lfs..(row + 1) * self.n_lfs]
    }

    /// Fraction of rows where at least one LF does not abstain.
    pub fn coverage(&self) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        let covered = (0..self.n_rows).filter(|&r| self.row(r).iter().any(|&v| v != 0)).count();
        covered as f64 / self.n_rows as f64
    }

    /// Per-LF coverage: fraction of rows the LF labels.
    pub fn lf_coverage(&self, lf: usize) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        let n = (0..self.n_rows).filter(|&r| self.row(r)[lf] != 0).count();
        n as f64 / self.n_rows as f64
    }

    /// Fraction of rows labeled by two or more LFs.
    pub fn overlap(&self) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        let n = (0..self.n_rows)
            .filter(|&r| self.row(r).iter().filter(|&&v| v != 0).count() >= 2)
            .count();
        n as f64 / self.n_rows as f64
    }

    /// Fraction of rows with at least one positive and one negative vote.
    pub fn conflict(&self) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        let n = (0..self.n_rows)
            .filter(|&r| {
                let row = self.row(r);
                row.iter().any(|&v| v > 0) && row.iter().any(|&v| v < 0)
            })
            .count();
        n as f64 / self.n_rows as f64
    }

    /// Rows labeled by at least one LF (the trainable subset).
    pub fn covered_rows(&self) -> Vec<usize> {
        (0..self.n_rows).filter(|&r| self.row(r).iter().any(|&v| v != 0)).collect()
    }
}

fn fill_votes(
    table: &FeatureTable,
    lfs: &[Box<dyn LabelingFunction>],
    votes: &mut [i8],
    start: usize,
    end: usize,
) {
    let n_lfs = lfs.len();
    for r in start..end {
        for (j, lf) in lfs.iter().enumerate() {
            votes[r * n_lfs + j] = lf.vote(table, r).as_i8();
        }
    }
}

fn fill_votes_into(
    table: &FeatureTable,
    lfs: &[Box<dyn LabelingFunction>],
    local: &mut [i8],
    start: usize,
    end: usize,
) {
    let n_lfs = lfs.len();
    for (i, r) in (start..end).enumerate() {
        for (j, lf) in lfs.iter().enumerate() {
            local[i * n_lfs + j] = lf.vote(table, r).as_i8();
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use cm_featurespace::{
        CatSet, FeatureDef, FeatureSchema, FeatureSet, FeatureTable, FeatureValue, ServingMode,
        Vocabulary,
    };

    use super::*;
    use crate::lf::CategoricalContainsLf;

    fn table(n: usize) -> FeatureTable {
        let schema = Arc::new(FeatureSchema::from_defs(vec![FeatureDef::categorical(
            "c",
            FeatureSet::A,
            ServingMode::Servable,
            Vocabulary::from_names(["x", "y"]),
        )]));
        let mut t = FeatureTable::new(schema);
        for i in 0..n {
            t.push_row(&[FeatureValue::Categorical(CatSet::single((i % 2) as u32))]);
        }
        t
    }

    fn lfs() -> Vec<Box<dyn LabelingFunction>> {
        vec![
            Box::new(CategoricalContainsLf::new(0, vec![0], false, Vote::Positive)),
            Box::new(CategoricalContainsLf::new(0, vec![1], false, Vote::Negative)),
        ]
    }

    #[test]
    fn apply_collects_votes() {
        let t = table(4);
        let m = LabelMatrix::apply(&t, &lfs());
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.n_lfs(), 2);
        assert_eq!(m.vote(0, 0), Vote::Positive);
        assert_eq!(m.vote(0, 1), Vote::Abstain);
        assert_eq!(m.vote(1, 0), Vote::Abstain);
        assert_eq!(m.vote(1, 1), Vote::Negative);
    }

    #[test]
    fn coverage_overlap_conflict() {
        // LF0 labels even rows +, LF1 labels odd rows -: full coverage,
        // no overlap, no conflict.
        let m = LabelMatrix::apply(&table(10), &lfs());
        assert_eq!(m.coverage(), 1.0);
        assert_eq!(m.overlap(), 0.0);
        assert_eq!(m.conflict(), 0.0);
        assert_eq!(m.lf_coverage(0), 0.5);
    }

    #[test]
    fn conflict_detected() {
        let m = LabelMatrix::from_votes(2, 2, vec![1, -1, 0, 0], vec!["a".into(), "b".into()]);
        assert_eq!(m.conflict(), 0.5);
        assert_eq!(m.overlap(), 0.5);
        assert_eq!(m.coverage(), 0.5);
        assert_eq!(m.covered_rows(), vec![0]);
    }

    #[test]
    fn parallel_path_matches_serial() {
        // 30k rows x 2 LFs crosses the parallel threshold.
        let t = table(30_000);
        let m_par = LabelMatrix::apply(&t, &lfs());
        let serial = {
            let mut votes = vec![0i8; 30_000 * 2];
            fill_votes(&t, &lfs(), &mut votes, 0, 30_000);
            LabelMatrix::from_votes(30_000, 2, votes, vec!["a".into(), "b".into()])
        };
        assert_eq!(m_par.votes, serial.votes);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_votes_checks_shape() {
        LabelMatrix::from_votes(2, 2, vec![0; 3], vec!["a".into(), "b".into()]);
    }

    #[test]
    #[should_panic(expected = "votes must be in")]
    fn from_votes_checks_encoding() {
        LabelMatrix::from_votes(1, 1, vec![5], vec!["a".into()]);
    }

    #[test]
    fn empty_matrix_statistics() {
        let m = LabelMatrix::from_votes(0, 1, vec![], vec!["a".into()]);
        assert_eq!(m.coverage(), 0.0);
        assert_eq!(m.overlap(), 0.0);
        assert_eq!(m.conflict(), 0.0);
    }
}
