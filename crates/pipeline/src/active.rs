//! Active-learning review selection (paper §6.4, §7.2).
//!
//! The paper ships the cross-modal model immediately and then improves it
//! "via techniques for active learning or self-training on the order of
//! days". This module selects which pool points to send to human review,
//! and folds the resulting labels back into the training targets.

use cm_linalg::rng::SliceRandom;
use cm_linalg::rng::StdRng;

use cm_featurespace::Label;

use crate::curation::CurationOutput;

/// Review-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReviewStrategy {
    /// Points whose probabilistic label is closest to 0.5 — the label
    /// model is most unsure about them.
    Uncertainty,
    /// Points the LFs *disagree* on (conflicting votes produce mid-range
    /// posteriors) plus uncovered points, interleaved — the paper's "data
    /// slices the experts should explore".
    DisagreementFirst,
    /// Uniform random (baseline).
    Random,
}

/// Selects up to `budget` pool rows for human review.
///
/// Returns row indices in review-priority order, deduplicated.
pub fn select_for_review(
    curation: &CurationOutput,
    strategy: ReviewStrategy,
    budget: usize,
    seed: u64,
) -> Vec<usize> {
    let n = curation.probabilistic_labels.len();
    let budget = budget.min(n);
    match strategy {
        ReviewStrategy::Random => {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(&mut StdRng::seed_from_u64(seed));
            idx.truncate(budget);
            idx
        }
        ReviewStrategy::Uncertainty => {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by(|&a, &b| {
                let ua = (curation.probabilistic_labels[a] - 0.5).abs();
                let ub = (curation.probabilistic_labels[b] - 0.5).abs();
                ua.total_cmp(&ub)
            });
            idx.truncate(budget);
            idx
        }
        ReviewStrategy::DisagreementFirst => {
            // Covered-but-uncertain rows first (LF conflict shows up as
            // mid-range posteriors), then uncovered rows shuffled.
            let mut covered_uncertain: Vec<usize> =
                (0..n).filter(|&r| curation.covered[r]).collect();
            covered_uncertain.sort_by(|&a, &b| {
                let ua = (curation.probabilistic_labels[a] - 0.5).abs();
                let ub = (curation.probabilistic_labels[b] - 0.5).abs();
                ua.total_cmp(&ub)
            });
            let mut uncovered: Vec<usize> = (0..n).filter(|&r| !curation.covered[r]).collect();
            uncovered.shuffle(&mut StdRng::seed_from_u64(seed));
            let take_cov = budget.div_ceil(2).min(covered_uncertain.len());
            let mut out: Vec<usize> = covered_uncertain[..take_cov].to_vec();
            for r in uncovered {
                if out.len() >= budget {
                    break;
                }
                out.push(r);
            }
            // Top up from the remaining covered rows if uncovered ran dry.
            for &r in &covered_uncertain[take_cov..] {
                if out.len() >= budget {
                    break;
                }
                out.push(r);
            }
            out
        }
    }
}

/// Folds human review results back into the probabilistic labels: reviewed
/// rows become hard 0/1 targets and count as covered.
pub fn apply_review(
    curation: &mut CurationOutput,
    reviews: impl IntoIterator<Item = (usize, Label)>,
) {
    for (row, label) in reviews {
        assert!(row < curation.probabilistic_labels.len(), "review row {row} out of range");
        curation.probabilistic_labels[row] = label.as_f64();
        curation.covered[row] = true;
    }
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;
    use crate::curation::{CurationOutput, WsQuality};

    fn fake_curation(probs: Vec<f64>, covered: Vec<bool>) -> CurationOutput {
        CurationOutput {
            probabilistic_labels: probs,
            covered,
            lf_names: vec!["lf".into()],
            ws_quality: WsQuality { precision: 0.0, recall: 0.0, f1: 0.0, coverage: 0.0 },
            mining_time: Duration::ZERO,
            propagation_time: None,
            conflict: 0.0,
            degradation: crate::report::DegradationReport::clean(),
        }
    }

    #[test]
    fn uncertainty_picks_mid_range_posteriors() {
        let cur = fake_curation(vec![0.95, 0.52, 0.05, 0.48, 0.9], vec![true; 5]);
        let picks = select_for_review(&cur, ReviewStrategy::Uncertainty, 2, 0);
        assert_eq!(picks.len(), 2);
        assert!(picks.contains(&1) && picks.contains(&3), "{picks:?}");
    }

    #[test]
    fn disagreement_first_mixes_uncertain_and_uncovered() {
        let cur = fake_curation(
            vec![0.5, 0.9, 0.1, 0.04, 0.04, 0.04],
            vec![true, true, true, false, false, false],
        );
        let picks = select_for_review(&cur, ReviewStrategy::DisagreementFirst, 4, 1);
        assert_eq!(picks.len(), 4);
        assert!(picks.contains(&0), "most conflicted covered row must be reviewed");
        assert!(
            picks.iter().any(|&r| !cur.covered[r]),
            "some uncovered rows must be reviewed: {picks:?}"
        );
    }

    #[test]
    fn budgets_and_dedup_are_respected() {
        let cur = fake_curation(vec![0.5; 10], vec![true; 10]);
        for strategy in
            [ReviewStrategy::Random, ReviewStrategy::Uncertainty, ReviewStrategy::DisagreementFirst]
        {
            let picks = select_for_review(&cur, strategy, 25, 2);
            assert!(picks.len() <= 10);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), picks.len(), "{strategy:?} produced duplicates");
        }
    }

    #[test]
    fn apply_review_hardens_labels() {
        let mut cur = fake_curation(vec![0.5, 0.5], vec![false, true]);
        apply_review(&mut cur, [(0, Label::Positive), (1, Label::Negative)]);
        assert_eq!(cur.probabilistic_labels, vec![1.0, 0.0]);
        assert!(cur.covered[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn apply_review_checks_bounds() {
        let mut cur = fake_curation(vec![0.5], vec![true]);
        apply_review(&mut cur, [(7, Label::Positive)]);
    }
}
