//! The resilient access layer: retries, deadlines, circuit breaking, and
//! per-service fault statistics around organizational service calls.
//!
//! An [`AccessLayer`] sits between the service registry and the pipeline.
//! Every call passes through [`AccessLayer::apply`], which injects the
//! plan's faults and then behaves the way a hardened client would: retry
//! with exponential backoff and jitter, give up when the per-service
//! deadline budget is spent, and trip a circuit breaker after enough
//! consecutive lost calls so a dead service stops wasting budget. All
//! timing runs on a [`SimClock`](crate::SimClock) and all randomness on
//! per-call seeded streams, so a fault scenario is bit-for-bit reproducible
//! at any thread count.
//!
//! A lost call degrades to [`FeatureValue::Missing`] — never a panic, never
//! a poisoned value — which is what lets the downstream pipeline abstain
//! instead of mislabeling.

use cm_featurespace::{CmError, CmResult, ErrorKind, FeatureValue};
use cm_linalg::rng::{Rng, StdRng};

use crate::clock::SimClock;
use crate::plan::{FaultMode, FaultPlan};

/// What the access layer needs to know about one registry service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDescriptor {
    /// Service name, matching [`FaultPlan`] spec names.
    pub name: String,
    /// Vocabulary size for categorical services (`None` for numeric and
    /// embedding services); used to synthesize and detect out-of-vocabulary
    /// corruption.
    pub vocab_size: Option<u32>,
}

impl ServiceDescriptor {
    /// Builds a descriptor.
    pub fn new(name: impl Into<String>, vocab_size: Option<u32>) -> Self {
        Self { name: name.into(), vocab_size }
    }
}

/// Client-side resilience policy, shared by every service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessPolicy {
    /// Retries after the first failed attempt (so `max_retries + 1` total
    /// attempts).
    pub max_retries: u32,
    /// First-retry backoff in simulated milliseconds; doubles per retry.
    pub base_backoff_ms: u64,
    /// Upper bound on the per-retry jitter added to the backoff.
    pub max_jitter_ms: u64,
    /// Simulated-time budget per call; once waiting (backoff + latency)
    /// exceeds it, the call is abandoned.
    pub deadline_ms: u64,
    /// Consecutive lost calls before the breaker trips and the service is
    /// treated as degraded for the rest of the run.
    pub breaker_threshold: u32,
    /// Simulated milliseconds an open breaker waits before admitting a
    /// single half-open probe call. A successful probe closes the breaker;
    /// a failed one re-opens it for another cooldown. `0` disables
    /// recovery entirely (the pre-serving behavior: a trip is permanent
    /// for the rest of the run), which keeps batch-mode fixtures
    /// bit-identical.
    pub breaker_cooldown_ms: u64,
}

impl Default for AccessPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff_ms: 10,
            max_jitter_ms: 4,
            deadline_ms: 250,
            breaker_threshold: 5,
            breaker_cooldown_ms: 0,
        }
    }
}

/// Per-service counters, reported inside the degradation output.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServiceStats {
    /// Service name.
    pub name: String,
    /// Fault mode assigned by the plan (stable mode name).
    pub mode: String,
    /// Per-call fault probability from the plan.
    pub rate: f64,
    /// Total calls routed through the layer.
    pub calls: u64,
    /// Calls on which the fault fired.
    pub faulted: u64,
    /// Faulted calls that still produced a live value after retries.
    pub recovered: u64,
    /// Calls abandoned (degraded to a missing value).
    pub lost: u64,
    /// Corrupt responses caught by response validation.
    pub corrupt_detected: u64,
    /// Calls served from the stale snapshot instead of the live value.
    pub stale_served: u64,
    /// Calls rejected immediately because the breaker was open.
    pub short_circuited: u64,
    /// Half-open probe calls admitted after the breaker cooldown elapsed.
    pub probes: u64,
    /// Probes that failed and re-opened the breaker for another cooldown.
    pub reopened: u64,
    /// Total retry attempts across all calls.
    pub retries: u64,
    /// Simulated milliseconds spent waiting (backoff + latency).
    pub sim_wait_ms: u64,
    /// Whether the breaker tripped at any point (sticky: a later
    /// successful probe closes the breaker but keeps this flag, so
    /// degradation reports still name the service).
    pub tripped: bool,
}

/// A fault scenario's outcome: the plan seed, total simulated wait, and
/// per-service statistics for every service the plan touched.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSummary {
    /// Seed of the plan that produced this summary.
    pub seed: u64,
    /// Total simulated milliseconds the layer spent waiting.
    pub sim_elapsed_ms: u64,
    /// Stats for each service with a fault assignment, in plan order.
    pub services: Vec<ServiceStats>,
}

impl FaultSummary {
    /// Names of services whose breaker tripped.
    pub fn tripped_services(&self) -> Vec<String> {
        self.services.iter().filter(|s| s.tripped).map(|s| s.name.clone()).collect()
    }
}

impl cm_json::ToJson for ServiceStats {
    fn to_json(&self) -> cm_json::Json {
        use cm_json::Json;
        let n = |v: u64| Json::Num(v as f64);
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("mode", Json::Str(self.mode.clone())),
            ("rate", Json::Num(self.rate)),
            ("calls", n(self.calls)),
            ("faulted", n(self.faulted)),
            ("recovered", n(self.recovered)),
            ("lost", n(self.lost)),
            ("corrupt_detected", n(self.corrupt_detected)),
            ("stale_served", n(self.stale_served)),
            ("short_circuited", n(self.short_circuited)),
            ("probes", n(self.probes)),
            ("reopened", n(self.reopened)),
            ("retries", n(self.retries)),
            ("sim_wait_ms", n(self.sim_wait_ms)),
            ("tripped", Json::Bool(self.tripped)),
        ])
    }
}

impl ServiceStats {
    /// Rebuilds stats from their JSON form.
    pub fn from_json(json: &cm_json::Json) -> CmResult<Self> {
        const LOC: &str = "ServiceStats::from_json";
        let missing =
            |field: &str| CmError::new(ErrorKind::NotFound, LOC, format!("missing {field}"));
        let num = |field: &str| -> CmResult<u64> {
            json.get(field)
                .and_then(cm_json::Json::as_f64)
                .map(|v| v as u64)
                .ok_or_else(|| missing(field))
        };
        Ok(Self {
            name: json
                .get("name")
                .and_then(cm_json::Json::as_str)
                .ok_or_else(|| missing("name"))?
                .to_owned(),
            mode: json
                .get("mode")
                .and_then(cm_json::Json::as_str)
                .ok_or_else(|| missing("mode"))?
                .to_owned(),
            rate: json
                .get("rate")
                .and_then(cm_json::Json::as_f64)
                .ok_or_else(|| missing("rate"))?,
            calls: num("calls")?,
            faulted: num("faulted")?,
            recovered: num("recovered")?,
            lost: num("lost")?,
            corrupt_detected: num("corrupt_detected")?,
            stale_served: num("stale_served")?,
            short_circuited: num("short_circuited")?,
            // Tolerant: summaries archived before the half-open breaker
            // lack the probe counters.
            probes: num("probes").unwrap_or(0),
            reopened: num("reopened").unwrap_or(0),
            retries: num("retries")?,
            sim_wait_ms: num("sim_wait_ms")?,
            tripped: json
                .get("tripped")
                .and_then(cm_json::Json::as_bool)
                .ok_or_else(|| missing("tripped"))?,
        })
    }
}

impl cm_json::ToJson for FaultSummary {
    fn to_json(&self) -> cm_json::Json {
        use cm_json::Json;
        Json::obj([
            ("seed", Json::Num(self.seed as f64)),
            ("sim_elapsed_ms", Json::Num(self.sim_elapsed_ms as f64)),
            ("services", Json::arr(self.services.iter())),
        ])
    }
}

impl FaultSummary {
    /// Rebuilds a summary from its JSON form.
    pub fn from_json(json: &cm_json::Json) -> CmResult<Self> {
        const LOC: &str = "FaultSummary::from_json";
        let missing =
            |field: &str| CmError::new(ErrorKind::NotFound, LOC, format!("missing {field}"));
        let services = json
            .get("services")
            .and_then(cm_json::Json::as_arr)
            .ok_or_else(|| missing("services"))?
            .iter()
            .map(ServiceStats::from_json)
            .collect::<CmResult<Vec<_>>>()?;
        Ok(Self {
            seed: json.get("seed").and_then(cm_json::Json::as_f64).ok_or_else(|| missing("seed"))?
                as u64,
            sim_elapsed_ms: json
                .get("sim_elapsed_ms")
                .and_then(cm_json::Json::as_f64)
                .ok_or_else(|| missing("sim_elapsed_ms"))? as u64,
            services,
        })
    }
}

/// Checks a service response for detectable corruption: non-finite
/// numerics, out-of-vocabulary category ids (when the vocabulary size is
/// known), or non-finite embedding components. Missing is always valid.
pub fn validate_value(value: &FeatureValue, vocab_size: Option<u32>) -> bool {
    match value {
        FeatureValue::Numeric(x) => x.is_finite(),
        FeatureValue::Categorical(set) => match vocab_size {
            Some(n) => set.iter().all(|id| id < n),
            None => true,
        },
        FeatureValue::Embedding(e) => e.iter().all(|x| x.is_finite()),
        FeatureValue::Missing => true,
    }
}

/// Fault state for one service with an assignment.
#[derive(Debug, Clone)]
struct FaultState {
    mode: FaultMode,
    rate: f64,
    consecutive_lost: u32,
    tripped: bool,
    /// Simulated instant the breaker last opened; the half-open probe is
    /// admitted once `now >= opened_at_ms + breaker_cooldown_ms`.
    opened_at_ms: u64,
    /// Last live value, served when a stale fault fires.
    snapshot: Option<FeatureValue>,
}

/// One registry service as the layer sees it.
#[derive(Debug, Clone)]
struct ServiceState {
    vocab_size: Option<u32>,
    fault: Option<FaultState>,
    stats: ServiceStats,
}

/// The resilient client wrapping every organizational service call.
#[derive(Debug, Clone)]
pub struct AccessLayer {
    seed: u64,
    salt: u64,
    policy: AccessPolicy,
    clock: SimClock,
    services: Vec<ServiceState>,
}

impl AccessLayer {
    /// Builds a layer for `services` under `plan`. `salt` separates fault
    /// streams of independent dataset generations run under one plan (pass
    /// e.g. the dataset seed). Fails if the plan names an unknown service
    /// or the policy is degenerate.
    pub fn new(
        plan: &FaultPlan,
        policy: AccessPolicy,
        services: &[ServiceDescriptor],
        salt: u64,
    ) -> CmResult<Self> {
        const LOC: &str = "AccessLayer::new";
        if policy.breaker_threshold == 0 {
            return Err(CmError::new(
                ErrorKind::InvalidConfig,
                LOC,
                "breaker_threshold must be >= 1",
            ));
        }
        for spec in &plan.specs {
            if !services.iter().any(|d| d.name == spec.service) {
                return Err(CmError::new(
                    ErrorKind::NotFound,
                    LOC,
                    format!("fault plan names unknown service {:?}", spec.service),
                ));
            }
        }
        let services = services
            .iter()
            .map(|d| {
                let spec = plan.spec_for(&d.name);
                ServiceState {
                    vocab_size: d.vocab_size,
                    fault: spec.map(|s| FaultState {
                        mode: s.mode,
                        rate: s.rate,
                        consecutive_lost: 0,
                        tripped: false,
                        opened_at_ms: 0,
                        snapshot: None,
                    }),
                    stats: ServiceStats {
                        name: d.name.clone(),
                        mode: spec.map(|s| s.mode.name().to_owned()).unwrap_or_default(),
                        rate: spec.map(|s| s.rate).unwrap_or_default(),
                        ..ServiceStats::default()
                    },
                }
            })
            .collect();
        Ok(Self { seed: plan.seed, salt, policy, clock: SimClock::new(), services })
    }

    /// Routes one service response through the layer: injects the plan's
    /// fault for `(service, row)` if one fires, then retries / waits /
    /// short-circuits per policy. Returns the value the pipeline should
    /// see; a lost call degrades to [`FeatureValue::Missing`].
    ///
    /// `row` must identify the call uniquely within this layer's stream
    /// (e.g. a global row counter): the fault draw depends only on
    /// `(plan seed, salt, service, row)`, never on thread count.
    pub fn apply(&mut self, service: usize, row: u64, base: FeatureValue) -> FeatureValue {
        let policy = self.policy;
        let (seed, salt) = (self.seed, self.salt);
        let now_ms = self.clock.now_ms();
        let Some(state) = self.services.get_mut(service) else {
            return base;
        };
        state.stats.calls += 1;
        let Some(fault) = state.fault.as_mut() else {
            return base;
        };
        let mut probing = false;
        if fault.tripped {
            let cooled = policy.breaker_cooldown_ms > 0
                && now_ms >= fault.opened_at_ms.saturating_add(policy.breaker_cooldown_ms);
            if !cooled {
                state.stats.short_circuited += 1;
                state.stats.lost += 1;
                return FeatureValue::Missing;
            }
            // Half-open: the cooldown elapsed, so this one call goes
            // through as the probe. Its outcome decides whether the
            // breaker closes or re-opens.
            state.stats.probes += 1;
            probing = true;
        }

        // Computed only once a fault is actually assigned: the unfaulted
        // fast path must stay within noise of a direct service call.
        let stream = call_stream(seed, salt, service as u64, row);
        let mut rng = StdRng::seed_from_u64(stream);
        let fired = rng.gen::<f64>() < fault.rate;
        if !fired {
            fault.consecutive_lost = 0;
            if probing {
                // The probe came back clean: close the breaker.
                fault.tripped = false;
            }
            if matches!(fault.mode, FaultMode::Stale) {
                fault.snapshot = Some(base.clone());
            }
            return base;
        }
        state.stats.faulted += 1;

        // Stale service: degraded but answering — serve the frozen snapshot
        // (or freeze this first observation). Never a failure, never a
        // breaker event.
        if matches!(fault.mode, FaultMode::Stale) {
            return match &fault.snapshot {
                Some(frozen) => {
                    state.stats.stale_served += 1;
                    frozen.clone()
                }
                None => {
                    fault.snapshot = Some(base.clone());
                    base
                }
            };
        }

        // Retry loop on the simulated clock.
        let mut wait_ms = 0u64;
        let mut attempt = 0u32;
        let outcome: Option<FeatureValue> = loop {
            let attempt_value = match fault.mode {
                FaultMode::Unavailable => None,
                FaultMode::Transient { fails } => (attempt >= fails).then(|| base.clone()),
                FaultMode::Latency { delay_ms } => {
                    wait_ms = wait_ms.saturating_add(delay_ms);
                    (wait_ms <= policy.deadline_ms).then(|| base.clone())
                }
                FaultMode::Corrupt => {
                    // Each attempt independently returns garbage with the
                    // plan's rate (the first attempt is the fired call
                    // itself); response validation catches it.
                    let corrupt = attempt == 0 || rng.gen::<f64>() < fault.rate;
                    if corrupt {
                        let garbage = corrupt_value(&base, state.vocab_size, &mut rng);
                        if validate_value(&garbage, state.vocab_size) {
                            // Nothing detectable to corrupt (e.g. Missing).
                            Some(garbage)
                        } else {
                            state.stats.corrupt_detected += 1;
                            None
                        }
                    } else {
                        Some(base.clone())
                    }
                }
                // Stale handled above.
                FaultMode::Stale => Some(base.clone()),
            };
            if let Some(v) = attempt_value {
                break Some(v);
            }
            attempt += 1;
            if attempt > policy.max_retries || wait_ms > policy.deadline_ms {
                break None;
            }
            state.stats.retries += 1;
            let backoff = policy.base_backoff_ms.saturating_mul(1u64 << (attempt - 1).min(16));
            let jitter = rng.gen_range(0..=policy.max_jitter_ms);
            wait_ms = wait_ms.saturating_add(backoff).saturating_add(jitter);
            if wait_ms > policy.deadline_ms {
                break None;
            }
        };
        state.stats.sim_wait_ms += wait_ms;
        self.clock.advance_ms(wait_ms);
        let now_after_ms = self.clock.now_ms();

        let state = &mut self.services[service];
        let fault = match state.fault.as_mut() {
            Some(f) => f,
            None => return base,
        };
        match outcome {
            Some(value) => {
                fault.consecutive_lost = 0;
                if probing {
                    // The probe recovered a live value: close the breaker.
                    fault.tripped = false;
                }
                if attempt > 0 {
                    state.stats.recovered += 1;
                }
                value
            }
            None => {
                state.stats.lost += 1;
                fault.consecutive_lost += 1;
                if probing {
                    // Failed probe: the breaker stays open for another
                    // cooldown, counted from now.
                    fault.opened_at_ms = now_after_ms;
                    state.stats.reopened += 1;
                } else if fault.consecutive_lost >= policy.breaker_threshold {
                    fault.tripped = true;
                    fault.opened_at_ms = now_after_ms;
                    state.stats.tripped = true;
                }
                FeatureValue::Missing
            }
        }
    }

    /// Whether the plan assigned any fault at all.
    pub fn is_enabled(&self) -> bool {
        self.services.iter().any(|s| s.fault.is_some())
    }

    /// Names of services whose breaker has tripped so far.
    pub fn tripped_services(&self) -> Vec<String> {
        self.services.iter().filter(|s| s.stats.tripped).map(|s| s.stats.name.clone()).collect()
    }

    /// The simulated clock (total simulated wait so far).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Snapshot of the scenario outcome: stats for every fault-assigned
    /// service, in registry order.
    pub fn summary(&self) -> FaultSummary {
        FaultSummary {
            seed: self.seed,
            sim_elapsed_ms: self.clock.now_ms(),
            services: self
                .services
                .iter()
                .filter(|s| s.fault.is_some())
                .map(|s| s.stats.clone())
                .collect(),
        }
    }

    /// Advances the simulated clock by `ms` host-driven milliseconds (e.g.
    /// the inter-batch cadence of a serving loop). Open breakers measure
    /// their cooldown against this clock, so advancing it is what makes a
    /// half-open probe eligible between batches.
    pub fn advance_clock_ms(&mut self, ms: u64) {
        self.clock.advance_ms(ms);
    }

    /// Current simulated time in milliseconds (arrival/completion stamps
    /// for serving latency accounting).
    pub fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// Exports the layer's replayable live state: the simulated clock plus
    /// every service's breaker/snapshot state and accumulated statistics.
    /// Restoring this into a freshly built layer (same plan, policy, and
    /// registry) continues the fault scenario bit-identically — per-call
    /// fault draws are keyed on `(seed, salt, service, row)` and carry no
    /// RNG state of their own.
    pub fn export_state(&self) -> AccessState {
        AccessState {
            now_ms: self.clock.now_ms(),
            services: self
                .services
                .iter()
                .map(|s| {
                    let fault = s.fault.as_ref();
                    ServiceAccessState {
                        name: s.stats.name.clone(),
                        consecutive_lost: fault.map_or(0, |f| f.consecutive_lost),
                        open: fault.is_some_and(|f| f.tripped),
                        opened_at_ms: fault.map_or(0, |f| f.opened_at_ms),
                        snapshot: fault.and_then(|f| f.snapshot.clone()),
                        stats: s.stats.clone(),
                    }
                })
                .collect(),
        }
    }

    /// Restores state previously captured by [`AccessLayer::export_state`]
    /// into this layer. Fails if the state's service list does not match
    /// the layer's registry (names, order, and count must agree).
    pub fn restore_state(&mut self, state: &AccessState) -> CmResult<()> {
        const LOC: &str = "AccessLayer::restore_state";
        if state.services.len() != self.services.len() {
            return Err(CmError::new(
                ErrorKind::InvalidConfig,
                LOC,
                format!(
                    "state has {} services, layer has {}",
                    state.services.len(),
                    self.services.len()
                ),
            ));
        }
        for (mine, theirs) in self.services.iter().zip(&state.services) {
            if mine.stats.name != theirs.name {
                return Err(CmError::new(
                    ErrorKind::InvalidConfig,
                    LOC,
                    format!(
                        "service mismatch: layer has {:?}, state has {:?}",
                        mine.stats.name, theirs.name
                    ),
                ));
            }
        }
        for (mine, theirs) in self.services.iter_mut().zip(&state.services) {
            mine.stats = theirs.stats.clone();
            if let Some(fault) = mine.fault.as_mut() {
                fault.consecutive_lost = theirs.consecutive_lost;
                fault.tripped = theirs.open;
                fault.opened_at_ms = theirs.opened_at_ms;
                fault.snapshot = theirs.snapshot.clone();
            }
        }
        self.clock = SimClock::new();
        self.clock.advance_ms(state.now_ms);
        Ok(())
    }
}

/// Replayable live state of an [`AccessLayer`], exported after a serving
/// batch and restored on crash recovery. Serializes via [`cm_json::ToJson`]
/// into the service checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessState {
    /// Simulated clock reading at export time.
    pub now_ms: u64,
    /// Per-service state, in registry order.
    pub services: Vec<ServiceAccessState>,
}

/// One service's live state inside an [`AccessState`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceAccessState {
    /// Service name; must match the layer's registry on restore.
    pub name: String,
    /// Consecutive lost calls toward the breaker threshold.
    pub consecutive_lost: u32,
    /// Whether the breaker is currently open.
    pub open: bool,
    /// Simulated instant the breaker last opened.
    pub opened_at_ms: u64,
    /// Frozen stale-mode snapshot, if one was taken.
    pub snapshot: Option<FeatureValue>,
    /// Accumulated statistics.
    pub stats: ServiceStats,
}

/// Encodes a feature value for the checkpoint (tagged object). Finite
/// floats round-trip bit-exactly through cm-json's shortest-round-trip
/// number formatting; snapshots hold validated live values, which are
/// always finite.
fn feature_value_to_json(value: &FeatureValue) -> cm_json::Json {
    use cm_json::Json;
    match value {
        FeatureValue::Missing => Json::obj([("kind", Json::Str("missing".to_owned()))]),
        FeatureValue::Numeric(x) => {
            Json::obj([("kind", Json::Str("numeric".to_owned())), ("value", Json::Num(*x))])
        }
        FeatureValue::Categorical(set) => Json::obj([
            ("kind", Json::Str("categorical".to_owned())),
            ("ids", Json::Arr(set.iter().map(|id| Json::Num(f64::from(id))).collect())),
        ]),
        FeatureValue::Embedding(e) => Json::obj([
            ("kind", Json::Str("embedding".to_owned())),
            ("values", Json::Arr(e.iter().map(|&x| Json::Num(f64::from(x))).collect())),
        ]),
    }
}

/// Decodes a feature value written by [`feature_value_to_json`].
fn feature_value_from_json(json: &cm_json::Json) -> CmResult<FeatureValue> {
    use cm_featurespace::CatSet;
    const LOC: &str = "feature_value_from_json";
    let bad = |msg: &str| CmError::new(ErrorKind::InvalidConfig, LOC, msg.to_owned());
    let kind = json.get("kind").and_then(cm_json::Json::as_str).ok_or_else(|| bad("no kind"))?;
    match kind {
        "missing" => Ok(FeatureValue::Missing),
        "numeric" => {
            let x =
                json.get("value").and_then(cm_json::Json::as_f64).ok_or_else(|| bad("no value"))?;
            Ok(FeatureValue::Numeric(x))
        }
        "categorical" => {
            let ids =
                json.get("ids").and_then(cm_json::Json::as_arr).ok_or_else(|| bad("no ids"))?;
            let mut set = CatSet::new();
            for id in ids {
                let id = id.as_f64().ok_or_else(|| bad("bad id"))?;
                set.insert(id as u32);
            }
            Ok(FeatureValue::Categorical(set))
        }
        "embedding" => {
            let values = json
                .get("values")
                .and_then(cm_json::Json::as_arr)
                .ok_or_else(|| bad("no values"))?;
            let e = values
                .iter()
                .map(|v| v.as_f64().map(|x| x as f32).ok_or_else(|| bad("bad component")))
                .collect::<CmResult<Vec<f32>>>()?;
            Ok(FeatureValue::Embedding(e))
        }
        other => Err(CmError::new(
            ErrorKind::InvalidConfig,
            LOC,
            format!("unknown feature value kind {other:?}"),
        )),
    }
}

impl cm_json::ToJson for ServiceAccessState {
    fn to_json(&self) -> cm_json::Json {
        use cm_json::Json;
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("consecutive_lost", Json::Num(f64::from(self.consecutive_lost))),
            ("open", Json::Bool(self.open)),
            ("opened_at_ms", Json::Num(self.opened_at_ms as f64)),
            ("snapshot", self.snapshot.as_ref().map_or(cm_json::Json::Null, feature_value_to_json)),
            ("stats", cm_json::ToJson::to_json(&self.stats)),
        ])
    }
}

impl ServiceAccessState {
    /// Rebuilds one service's state from its JSON form.
    pub fn from_json(json: &cm_json::Json) -> CmResult<Self> {
        const LOC: &str = "ServiceAccessState::from_json";
        let missing =
            |field: &str| CmError::new(ErrorKind::NotFound, LOC, format!("missing {field}"));
        let snapshot = match json.get("snapshot") {
            None | Some(cm_json::Json::Null) => None,
            Some(v) => Some(feature_value_from_json(v)?),
        };
        Ok(Self {
            name: json
                .get("name")
                .and_then(cm_json::Json::as_str)
                .ok_or_else(|| missing("name"))?
                .to_owned(),
            consecutive_lost: json
                .get("consecutive_lost")
                .and_then(cm_json::Json::as_f64)
                .ok_or_else(|| missing("consecutive_lost"))? as u32,
            open: json
                .get("open")
                .and_then(cm_json::Json::as_bool)
                .ok_or_else(|| missing("open"))?,
            opened_at_ms: json
                .get("opened_at_ms")
                .and_then(cm_json::Json::as_f64)
                .ok_or_else(|| missing("opened_at_ms"))? as u64,
            snapshot,
            stats: ServiceStats::from_json(json.get("stats").ok_or_else(|| missing("stats"))?)?,
        })
    }
}

impl cm_json::ToJson for AccessState {
    fn to_json(&self) -> cm_json::Json {
        use cm_json::Json;
        Json::obj([
            ("now_ms", Json::Num(self.now_ms as f64)),
            ("services", Json::arr(self.services.iter())),
        ])
    }
}

impl AccessState {
    /// Rebuilds a layer state from its JSON form.
    pub fn from_json(json: &cm_json::Json) -> CmResult<Self> {
        const LOC: &str = "AccessState::from_json";
        let missing =
            |field: &str| CmError::new(ErrorKind::NotFound, LOC, format!("missing {field}"));
        Ok(Self {
            now_ms: json
                .get("now_ms")
                .and_then(cm_json::Json::as_f64)
                .ok_or_else(|| missing("now_ms"))? as u64,
            services: json
                .get("services")
                .and_then(cm_json::Json::as_arr)
                .ok_or_else(|| missing("services"))?
                .iter()
                .map(ServiceAccessState::from_json)
                .collect::<CmResult<Vec<_>>>()?,
        })
    }
}

/// Synthesizes a detectably corrupt response for `base`: NaN numerics,
/// out-of-vocabulary category ids, NaN embedding components. Missing stays
/// missing (there is nothing to corrupt).
fn corrupt_value(base: &FeatureValue, vocab_size: Option<u32>, rng: &mut StdRng) -> FeatureValue {
    match base {
        FeatureValue::Numeric(_) => FeatureValue::Numeric(f64::NAN),
        FeatureValue::Categorical(set) => {
            let mut s = set.clone();
            let floor = vocab_size.unwrap_or(u32::MAX - 8);
            s.insert(floor.saturating_add(rng.gen_range(0..8u32)));
            FeatureValue::Categorical(s)
        }
        FeatureValue::Embedding(e) => {
            let mut e = e.clone();
            if let Some(first) = e.first_mut() {
                *first = f32::NAN;
            }
            FeatureValue::Embedding(e)
        }
        FeatureValue::Missing => FeatureValue::Missing,
    }
}

/// Mixes the call coordinates into one rng stream seed (splitmix64
/// finalizer over xor-folded words).
fn call_stream(seed: u64, salt: u64, service: u64, row: u64) -> u64 {
    let mut z = seed
        ^ salt.rotate_left(32)
        ^ service.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ row.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultSpec;
    use cm_json::ToJson;

    fn descriptors() -> Vec<ServiceDescriptor> {
        vec![
            ServiceDescriptor::new("alpha", Some(10)),
            ServiceDescriptor::new("beta", None),
            ServiceDescriptor::new("gamma", None),
        ]
    }

    fn plan(specs: Vec<FaultSpec>) -> FaultPlan {
        FaultPlan { seed: 11, specs }
    }

    fn spec(service: &str, mode: FaultMode, rate: f64) -> FaultSpec {
        FaultSpec { service: service.to_owned(), mode, rate }
    }

    #[test]
    fn unknown_service_is_rejected() {
        let p = plan(vec![spec("nope", FaultMode::Unavailable, 1.0)]);
        let err = AccessLayer::new(&p, AccessPolicy::default(), &descriptors(), 0).unwrap_err();
        assert_eq!(err.kind, ErrorKind::NotFound);
    }

    #[test]
    fn zero_breaker_threshold_is_rejected() {
        let policy = AccessPolicy { breaker_threshold: 0, ..AccessPolicy::default() };
        let err = AccessLayer::new(&FaultPlan::disabled(), policy, &descriptors(), 0).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidConfig);
    }

    #[test]
    fn clean_service_passes_through() {
        let p = plan(vec![spec("alpha", FaultMode::Unavailable, 1.0)]);
        let mut layer = AccessLayer::new(&p, AccessPolicy::default(), &descriptors(), 0).unwrap();
        let v = layer.apply(1, 0, FeatureValue::Numeric(2.5));
        assert_eq!(v, FeatureValue::Numeric(2.5));
        assert_eq!(layer.summary().services.len(), 1, "only faulted services in summary");
    }

    #[test]
    fn unavailable_degrades_and_trips_breaker() {
        let p = plan(vec![spec("beta", FaultMode::Unavailable, 1.0)]);
        let policy = AccessPolicy { breaker_threshold: 3, ..AccessPolicy::default() };
        let mut layer = AccessLayer::new(&p, policy, &descriptors(), 0).unwrap();
        for row in 0..10u64 {
            let v = layer.apply(1, row, FeatureValue::Numeric(1.0));
            assert_eq!(v, FeatureValue::Missing, "row {row}");
        }
        let s = layer.summary();
        let stats = &s.services[0];
        assert_eq!(stats.lost, 10);
        assert!(stats.tripped);
        assert_eq!(stats.short_circuited, 7, "breaker opens after 3 losses");
        assert_eq!(s.tripped_services(), vec!["beta".to_owned()]);
        assert!(stats.sim_wait_ms > 0, "retries waited on the simulated clock");
    }

    #[test]
    fn transient_recovers_within_retry_budget() {
        let p = plan(vec![spec("beta", FaultMode::Transient { fails: 2 }, 1.0)]);
        let mut layer = AccessLayer::new(&p, AccessPolicy::default(), &descriptors(), 0).unwrap();
        let v = layer.apply(1, 0, FeatureValue::Numeric(3.0));
        assert_eq!(v, FeatureValue::Numeric(3.0));
        let stats = &layer.summary().services[0];
        assert_eq!(stats.recovered, 1);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.lost, 0);
    }

    #[test]
    fn transient_beyond_retry_budget_is_lost() {
        let p = plan(vec![spec("beta", FaultMode::Transient { fails: 9 }, 1.0)]);
        let mut layer = AccessLayer::new(&p, AccessPolicy::default(), &descriptors(), 0).unwrap();
        let v = layer.apply(1, 0, FeatureValue::Numeric(3.0));
        assert_eq!(v, FeatureValue::Missing);
        assert_eq!(layer.summary().services[0].lost, 1);
    }

    #[test]
    fn latency_within_deadline_succeeds_and_waits() {
        let p = plan(vec![spec("beta", FaultMode::Latency { delay_ms: 200 }, 1.0)]);
        let mut layer = AccessLayer::new(&p, AccessPolicy::default(), &descriptors(), 0).unwrap();
        let v = layer.apply(1, 0, FeatureValue::Numeric(4.0));
        assert_eq!(v, FeatureValue::Numeric(4.0));
        let s = layer.summary();
        assert_eq!(s.services[0].sim_wait_ms, 200);
        assert_eq!(s.sim_elapsed_ms, 200);
    }

    #[test]
    fn latency_beyond_deadline_is_lost() {
        let p = plan(vec![spec("beta", FaultMode::Latency { delay_ms: 400 }, 1.0)]);
        let mut layer = AccessLayer::new(&p, AccessPolicy::default(), &descriptors(), 0).unwrap();
        let v = layer.apply(1, 0, FeatureValue::Numeric(4.0));
        assert_eq!(v, FeatureValue::Missing);
        assert_eq!(layer.summary().services[0].lost, 1);
    }

    #[test]
    fn corrupt_numeric_is_detected_never_leaked() {
        let p = plan(vec![spec("beta", FaultMode::Corrupt, 1.0)]);
        let mut layer = AccessLayer::new(&p, AccessPolicy::default(), &descriptors(), 0).unwrap();
        for row in 0..20u64 {
            let v = layer.apply(1, row, FeatureValue::Numeric(5.0));
            match v {
                FeatureValue::Numeric(x) => assert!(x.is_finite(), "row {row}"),
                FeatureValue::Missing => {}
                other => panic!("unexpected value {other:?}"),
            }
        }
        assert!(layer.summary().services[0].corrupt_detected > 0);
    }

    #[test]
    fn corrupt_categorical_never_leaks_out_of_vocab_ids() {
        use cm_featurespace::CatSet;
        let p = plan(vec![spec("alpha", FaultMode::Corrupt, 1.0)]);
        let mut layer = AccessLayer::new(&p, AccessPolicy::default(), &descriptors(), 0).unwrap();
        for row in 0..20u64 {
            let v = layer.apply(0, row, FeatureValue::Categorical(CatSet::single(3)));
            if let FeatureValue::Categorical(set) = &v {
                assert!(set.iter().all(|id| id < 10), "row {row}: {set:?}");
            }
        }
    }

    #[test]
    fn stale_serves_frozen_snapshot() {
        let p = plan(vec![spec("beta", FaultMode::Stale, 1.0)]);
        let mut layer = AccessLayer::new(&p, AccessPolicy::default(), &descriptors(), 0).unwrap();
        let first = layer.apply(1, 0, FeatureValue::Numeric(1.0));
        assert_eq!(first, FeatureValue::Numeric(1.0), "first observation freezes");
        for row in 1..5u64 {
            let v = layer.apply(1, row, FeatureValue::Numeric(f64::from(row as u32) + 1.0));
            assert_eq!(v, FeatureValue::Numeric(1.0), "row {row} serves the snapshot");
        }
        let stats = &layer.summary().services[0];
        assert_eq!(stats.stale_served, 4);
        assert_eq!(stats.lost, 0, "stale is degraded, not failed");
    }

    #[test]
    fn identical_seeds_reproduce_identical_outcomes() {
        let p = plan(vec![
            spec("alpha", FaultMode::Unavailable, 0.4),
            spec("beta", FaultMode::Transient { fails: 2 }, 0.5),
        ]);
        let run = || {
            let mut layer =
                AccessLayer::new(&p, AccessPolicy::default(), &descriptors(), 7).unwrap();
            let values: Vec<FeatureValue> = (0..200u64)
                .flat_map(|row| {
                    [
                        layer.apply(0, row, FeatureValue::Numeric(row as f64)),
                        layer.apply(1, row, FeatureValue::Numeric(-(row as f64))),
                    ]
                })
                .collect();
            (values, layer.summary())
        };
        let (v1, s1) = run();
        let (v2, s2) = run();
        assert_eq!(v1, v2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn different_fault_seeds_differ() {
        let mut p = plan(vec![spec("beta", FaultMode::Unavailable, 0.5)]);
        let run = |p: &FaultPlan| {
            let mut layer =
                AccessLayer::new(p, AccessPolicy::default(), &descriptors(), 7).unwrap();
            (0..100u64)
                .map(|row| layer.apply(1, row, FeatureValue::Numeric(1.0)))
                .collect::<Vec<_>>()
        };
        let a = run(&p);
        p.seed = 999;
        let b = run(&p);
        assert_ne!(a, b, "different fault seeds should draw different faults");
    }

    #[test]
    fn salt_separates_streams() {
        let p = plan(vec![spec("beta", FaultMode::Unavailable, 0.5)]);
        let run = |salt: u64| {
            let mut layer =
                AccessLayer::new(&p, AccessPolicy::default(), &descriptors(), salt).unwrap();
            (0..100u64)
                .map(|row| layer.apply(1, row, FeatureValue::Numeric(1.0)))
                .collect::<Vec<_>>()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn summary_round_trips_through_json() {
        let p = plan(vec![
            spec("alpha", FaultMode::Corrupt, 0.5),
            spec("beta", FaultMode::Latency { delay_ms: 300 }, 0.8),
        ]);
        let mut layer = AccessLayer::new(&p, AccessPolicy::default(), &descriptors(), 3).unwrap();
        for row in 0..50u64 {
            use cm_featurespace::CatSet;
            layer.apply(0, row, FeatureValue::Categorical(CatSet::single(1)));
            layer.apply(1, row, FeatureValue::Numeric(0.5));
        }
        let summary = layer.summary();
        let json = summary.to_json();
        let back = FaultSummary::from_json(&json).unwrap();
        assert_eq!(back, summary);
    }

    #[test]
    fn zero_cooldown_keeps_breaker_open_forever() {
        let p = plan(vec![spec("beta", FaultMode::Unavailable, 1.0)]);
        let policy = AccessPolicy { breaker_threshold: 2, ..AccessPolicy::default() };
        let mut layer = AccessLayer::new(&p, policy, &descriptors(), 0).unwrap();
        for row in 0..4u64 {
            layer.apply(1, row, FeatureValue::Numeric(1.0));
        }
        // With the legacy cooldown of 0, no amount of elapsed time admits
        // a probe: the trip is permanent.
        layer.advance_clock_ms(1_000_000);
        let v = layer.apply(1, 99, FeatureValue::Numeric(1.0));
        assert_eq!(v, FeatureValue::Missing);
        let stats = &layer.summary().services[0];
        assert_eq!(stats.probes, 0);
        assert_eq!(stats.short_circuited, 3);
    }

    #[test]
    fn open_breaker_admits_probe_after_cooldown_and_reopens_on_failure() {
        let p = plan(vec![spec("beta", FaultMode::Unavailable, 1.0)]);
        let policy = AccessPolicy {
            breaker_threshold: 2,
            breaker_cooldown_ms: 100,
            ..AccessPolicy::default()
        };
        let mut layer = AccessLayer::new(&p, policy, &descriptors(), 0).unwrap();
        for row in 0..2u64 {
            assert_eq!(layer.apply(1, row, FeatureValue::Numeric(1.0)), FeatureValue::Missing);
        }
        assert_eq!(layer.tripped_services(), vec!["beta".to_owned()]);
        // Within the cooldown: short-circuited, no probe.
        let v = layer.apply(1, 2, FeatureValue::Numeric(1.0));
        assert_eq!(v, FeatureValue::Missing);
        assert_eq!(layer.summary().services[0].short_circuited, 1);
        // Past the cooldown: exactly one probe goes through (and fails
        // against the always-unavailable service, re-opening the breaker);
        // the immediately following call short-circuits again.
        layer.advance_clock_ms(200);
        let v = layer.apply(1, 3, FeatureValue::Numeric(1.0));
        assert_eq!(v, FeatureValue::Missing);
        let stats = &layer.summary().services[0];
        assert_eq!(stats.probes, 1);
        assert_eq!(stats.reopened, 1);
        let v = layer.apply(1, 4, FeatureValue::Numeric(1.0));
        assert_eq!(v, FeatureValue::Missing);
        assert_eq!(layer.summary().services[0].short_circuited, 2);
        assert_eq!(layer.summary().services[0].probes, 1, "no second probe before cooldown");
    }

    #[test]
    fn successful_probe_closes_breaker() {
        // Unavailable at rate 0.9: most calls are lost, but a probe whose
        // per-call draw does not fire returns the live value and must
        // close the breaker. Deterministic for the fixed plan seed.
        let p = plan(vec![spec("beta", FaultMode::Unavailable, 0.9)]);
        let policy = AccessPolicy {
            breaker_threshold: 1,
            breaker_cooldown_ms: 50,
            ..AccessPolicy::default()
        };
        let mut layer = AccessLayer::new(&p, policy, &descriptors(), 0).unwrap();
        let mut closed_at = None;
        for row in 0..200u64 {
            layer.advance_clock_ms(60); // every retry window elapses a cooldown
            let v = layer.apply(1, row, FeatureValue::Numeric(row as f64));
            let open_before = layer.summary().services[0].tripped;
            if open_before && v == FeatureValue::Numeric(row as f64) {
                closed_at = Some(row);
                break;
            }
        }
        let row = closed_at.expect("some probe draw must pass at rate 0.9 within 200 rows");
        let stats = layer.summary().services[0].clone();
        assert!(stats.probes >= 1, "the close went through a half-open probe");
        assert_eq!(stats.probes, stats.reopened + 1, "every probe but the last re-opened");
        assert!(stats.tripped, "the sticky trip flag survives the close");
        // After the close the breaker is genuinely shut: the very next
        // call cannot short-circuit (a fresh trip needs a loss first).
        let before = stats.short_circuited;
        let _ = layer.apply(1, row + 1, FeatureValue::Numeric(0.0));
        assert_eq!(layer.summary().services[0].short_circuited, before);
    }

    #[test]
    fn exported_state_resumes_bit_identically() {
        use cm_featurespace::CatSet;
        let p = plan(vec![
            spec("alpha", FaultMode::Corrupt, 0.5),
            spec("beta", FaultMode::Unavailable, 0.7),
            spec("gamma", FaultMode::Stale, 0.6),
        ]);
        let policy = AccessPolicy {
            breaker_threshold: 3,
            breaker_cooldown_ms: 40,
            ..AccessPolicy::default()
        };
        let call = |layer: &mut AccessLayer, row: u64| {
            [
                layer.apply(0, row, FeatureValue::Categorical(CatSet::single(2))),
                layer.apply(1, row, FeatureValue::Numeric(row as f64)),
                layer.apply(2, row, FeatureValue::Embedding(vec![row as f32, 0.5])),
            ]
        };
        let mut full = AccessLayer::new(&p, policy, &descriptors(), 9).unwrap();
        for row in 0..40u64 {
            call(&mut full, row);
        }
        // Crash after row 39: export, round-trip through JSON, restore
        // into a fresh layer, continue. Tail outputs and the final summary
        // must be bit-identical to the uninterrupted run.
        let json = cm_json::Json::parse(&full.export_state().to_json().to_string_pretty()).unwrap();
        let state = AccessState::from_json(&json).unwrap();
        assert_eq!(state, full.export_state());
        let mut resumed = AccessLayer::new(&p, policy, &descriptors(), 9).unwrap();
        resumed.restore_state(&state).unwrap();
        for row in 40..120u64 {
            assert_eq!(call(&mut full, row), call(&mut resumed, row), "row {row}");
        }
        assert_eq!(full.summary(), resumed.summary());
        assert_eq!(full.export_state(), resumed.export_state());
    }

    #[test]
    fn restore_rejects_mismatched_registry() {
        let p = plan(vec![spec("beta", FaultMode::Unavailable, 1.0)]);
        let layer = AccessLayer::new(&p, AccessPolicy::default(), &descriptors(), 0).unwrap();
        let mut state = layer.export_state();
        state.services[0].name = "delta".to_owned();
        let mut other = AccessLayer::new(&p, AccessPolicy::default(), &descriptors(), 0).unwrap();
        assert_eq!(
            other.restore_state(&state).unwrap_err().kind,
            ErrorKind::InvalidConfig,
            "renamed service"
        );
        state.services.pop();
        assert_eq!(other.restore_state(&state).unwrap_err().kind, ErrorKind::InvalidConfig);
    }

    #[test]
    fn validate_value_flags_garbage() {
        use cm_featurespace::CatSet;
        assert!(validate_value(&FeatureValue::Numeric(1.0), None));
        assert!(!validate_value(&FeatureValue::Numeric(f64::NAN), None));
        assert!(!validate_value(&FeatureValue::Numeric(f64::INFINITY), None));
        assert!(validate_value(&FeatureValue::Categorical(CatSet::single(3)), Some(5)));
        assert!(!validate_value(&FeatureValue::Categorical(CatSet::single(7)), Some(5)));
        assert!(validate_value(&FeatureValue::Embedding(vec![0.0, 1.0]), None));
        assert!(!validate_value(&FeatureValue::Embedding(vec![0.0, f32::NAN]), None));
        assert!(validate_value(&FeatureValue::Missing, Some(1)));
    }
}
