//! Structural analysis over the token stream: the "lightweight parser"
//! between the lexer and the passes.
//!
//! From one sweep over a file's tokens this derives everything the
//! semantic passes need that single tokens cannot express:
//!
//! - which tokens sit inside a `#[cfg(test)]` item (test code is exempt
//!   from every rule),
//! - `use`-alias resolution for the hash-ordered collection types the
//!   nondeterministic-iteration pass watches (`use std::collections::
//!   HashMap as Map` makes `Map` watched; `type Index = HashMap<…>` too),
//! - the set of local names whose declared type is hash-ordered: `let`
//!   bindings (by annotation, by `HashMap::new()`-style initializer, by
//!   `collect::<HashMap<…>>()` turbofish, or by calling a same-file `fn`
//!   whose return type is watched), `fn` parameters, and struct fields,
//! - every `lint: allow` waiver pragma with the line it
//!   targets, for waiver application and the staleness audit.
//!
//! The tracking is deliberately per-file and name-based — a lint, not a
//! type checker. Imprecision is resolved by the waiver mechanism, whose
//! audit guarantees that any over-waiving rots loudly.

use std::collections::BTreeSet;

use crate::lexer::{Tok, TokKind};

/// The hash-ordered std collections whose iteration order is
/// nondeterministic across runs.
pub const WATCHED_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Integral primitive types: `+=` on a name declared with one of these is
/// order-insensitive and never merge-float evidence.
pub const INT_TYPES: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128", "bool",
];

/// Floating primitive types: accumulation over names declared with one of
/// these is reduction-order-sensitive.
pub const FLOAT_TYPES: &[&str] = &["f32", "f64"];

/// One `lint: allow` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rule names listed in the pragma, in order.
    pub rules: Vec<String>,
    /// 1-based line of the pragma comment itself.
    pub line: u32,
    /// 1-based column of the pragma comment.
    pub col: u32,
    /// The line whose findings this pragma waives: its own line when code
    /// precedes the comment, otherwise the next line holding code. `None`
    /// when no code follows (a trailing pragma waives nothing).
    pub target_line: Option<u32>,
}

/// Everything the passes need to know about one file beyond raw tokens.
#[derive(Debug, Default)]
pub struct FileContext {
    /// Indices (into the token stream) of non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Parallel to the token stream: true inside `#[cfg(test)]` items.
    pub test_mask: Vec<bool>,
    /// Local names (`use` aliases and `type` aliases included) that
    /// denote a watched hash-ordered type.
    pub watched_types: BTreeSet<String>,
    /// `let`/parameter names whose type resolved to a watched type.
    pub watched_bindings: BTreeSet<String>,
    /// Struct field names whose declared type is watched.
    pub watched_fields: BTreeSet<String>,
    /// Same-file functions whose return type is watched.
    pub watched_fns: BTreeSet<String>,
    /// Names (`name : Type` anywhere: params, fields, `let` annotations)
    /// whose declared type is an integral primitive.
    pub int_typed: BTreeSet<String>,
    /// Names whose declared type is a floating primitive.
    pub float_typed: BTreeSet<String>,
    /// All waiver pragmas in the file.
    pub pragmas: Vec<Pragma>,
}

impl FileContext {
    /// True when the local name denotes a watched hash-ordered type.
    pub fn is_watched_type(&self, name: &str) -> bool {
        self.watched_types.contains(name)
    }
}

/// Runs the full structural analysis.
pub fn analyze(toks: &[Tok]) -> FileContext {
    let mut ctx = FileContext {
        code: toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.kind.is_comment())
            .map(|(i, _)| i)
            .collect(),
        test_mask: vec![false; toks.len()],
        ..FileContext::default()
    };
    for w in WATCHED_TYPES {
        ctx.watched_types.insert((*w).to_owned());
    }
    mark_test_regions(toks, &mut ctx);
    collect_aliases(toks, &mut ctx);
    collect_items(toks, &mut ctx);
    collect_numeric_typed(toks, &mut ctx);
    collect_pragmas(toks, &mut ctx);
    ctx
}

/// View helpers over the code-token index list. Shared with the
/// workspace-level symbol index and call graph, which walk the same
/// comment-free token view.
pub(crate) struct Code<'a> {
    pub(crate) toks: &'a [Tok],
    pub(crate) code: &'a [usize],
}

impl<'a> Code<'a> {
    pub(crate) fn new(toks: &'a [Tok], code: &'a [usize]) -> Self {
        Code { toks, code }
    }

    pub(crate) fn at(&self, j: usize) -> Option<&'a Tok> {
        self.code.get(j).map(|&i| &self.toks[i])
    }

    pub(crate) fn is_punct(&self, j: usize, c: char) -> bool {
        self.at(j).is_some_and(|t| t.is_punct(c))
    }

    pub(crate) fn is_ident(&self, j: usize, name: &str) -> bool {
        self.at(j).is_some_and(|t| t.is_ident(name))
    }

    /// Index of the code token matching the closing delimiter for the
    /// opener at `j` (which must be `(`, `[`, or `{`).
    pub(crate) fn matching_close(&self, j: usize) -> Option<usize> {
        let (open, close) = match self.at(j)?.text.chars().next()? {
            '(' => ('(', ')'),
            '[' => ('[', ']'),
            '{' => ('{', '}'),
            _ => return None,
        };
        let mut depth = 0i64;
        for k in j..self.code.len() {
            if self.is_punct(k, open) {
                depth += 1;
            } else if self.is_punct(k, close) {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
        None
    }
}

/// Marks `test_mask` for every token inside an item annotated
/// `#[cfg(test)]` (or any `cfg(…)` whose arguments mention `test` without
/// `not`). Handles attribute stacks and `mod tests;` declarations.
fn mark_test_regions(toks: &[Tok], ctx: &mut FileContext) {
    let code = Code { toks, code: &ctx.code };
    let mut pending_test = false;
    let mut j = 0usize;
    while let Some(tok) = code.at(j) {
        if tok.is_punct('#') && code.is_punct(j + 1, '[') {
            let close = code.matching_close(j + 1).unwrap_or(j + 1);
            pending_test = pending_test || attr_is_cfg_test(&code, j + 2, close);
            j = close + 1;
            continue;
        }
        if pending_test {
            if tok.is_punct('{') {
                let close = code.matching_close(j).unwrap_or(ctx.code.len() - 1);
                for &i in &ctx.code[j..=close.min(ctx.code.len() - 1)] {
                    ctx.test_mask[i] = true;
                }
                // Comments inside the region are test code too (their
                // pragmas must not be audited).
                let (start_b, end_b) =
                    (toks[ctx.code[j]].span.byte, toks[ctx.code[close]].span.end);
                for (i, t) in toks.iter().enumerate() {
                    if t.kind.is_comment() && t.span.byte >= start_b && t.span.end <= end_b {
                        ctx.test_mask[i] = true;
                    }
                }
                pending_test = false;
                j = close + 1;
                continue;
            }
            if tok.is_punct(';') {
                pending_test = false; // `#[cfg(test)] mod tests;`
            }
        }
        j += 1;
    }
}

/// True when the attribute body `code[from..close]` is a `cfg` whose
/// arguments mention `test` and not `not`.
fn attr_is_cfg_test(code: &Code<'_>, from: usize, close: usize) -> bool {
    if !code.is_ident(from, "cfg") {
        return false;
    }
    let mut saw_test = false;
    let mut saw_not = false;
    for j in from + 1..close {
        if code.is_ident(j, "test") {
            saw_test = true;
        }
        if code.is_ident(j, "not") {
            saw_not = true;
        }
    }
    saw_test && !saw_not
}

/// Collects `use` aliases and `type` aliases that bind a local name to a
/// watched type.
fn collect_aliases(toks: &[Tok], ctx: &mut FileContext) {
    let code = Code { toks, code: &ctx.code };
    // Aliases chain (`use HashMap as Map; type Index = Map<…>;`) and may
    // be declared in any order, so sweep to a fixpoint.
    loop {
        let before = ctx.watched_types.len();
        let mut new_names: Vec<String> = Vec::new();
        let mut j = 0usize;
        while let Some(tok) = code.at(j) {
            if tok.is_ident("use") {
                let end = stmt_end(&code, j + 1);
                use_tree_leaves(&code, j + 1, end, &mut new_names);
                j = end + 1;
                continue;
            }
            if tok.is_ident("type") && code.at(j + 1).is_some_and(|t| t.kind == TokKind::Ident) {
                let end = stmt_end(&code, j + 1);
                let eq = (j + 2..end).find(|&k| code.is_punct(k, '='));
                if let (Some(name), Some(eq)) = (code.at(j + 1), eq) {
                    if type_is_watched(&code, eq + 1, end, &ctx.watched_types) {
                        new_names.push(name.ident_text().to_owned());
                    }
                }
                j = end + 1;
                continue;
            }
            j += 1;
        }
        ctx.watched_types.extend(new_names);
        if ctx.watched_types.len() == before {
            break;
        }
    }
}

/// Index of the `;` ending the statement starting at `from` (at bracket
/// depth zero), or the last code index if unterminated.
pub(crate) fn stmt_end(code: &Code<'_>, from: usize) -> usize {
    let mut depth = 0i64;
    for k in from..code.code.len() {
        for c in ['(', '[', '{'] {
            if code.is_punct(k, c) {
                depth += 1;
            }
        }
        for c in [')', ']', '}'] {
            if code.is_punct(k, c) {
                depth -= 1;
            }
        }
        if depth <= 0 && code.is_punct(k, ';') {
            return k;
        }
    }
    code.code.len().saturating_sub(1)
}

/// Walks a `use` tree between `from` and `end`, pushing the bound name of
/// every leaf whose final path segment is a watched base type. Handles
/// nested groups and `as` renames: the bound name is the alias when
/// present, else the leaf segment.
fn use_tree_leaves(code: &Code<'_>, from: usize, end: usize, out: &mut Vec<String>) {
    let mut last_seg: Option<String> = None;
    let mut alias: Option<String> = None;
    let mut in_alias = false;
    let mut flush = |last_seg: &mut Option<String>, alias: &mut Option<String>| {
        if let Some(seg) = last_seg.take() {
            if WATCHED_TYPES.contains(&seg.as_str()) {
                out.push(alias.take().unwrap_or(seg));
            }
        }
        *alias = None;
    };
    let mut j = from;
    while j < end {
        let Some(tok) = code.at(j) else { break };
        if tok.is_ident("as") {
            in_alias = true;
        } else if tok.kind == TokKind::Ident {
            if in_alias {
                alias = Some(tok.ident_text().to_owned());
                in_alias = false;
            } else {
                last_seg = Some(tok.ident_text().to_owned());
            }
        } else if tok.is_punct(',') || tok.is_punct('}') {
            flush(&mut last_seg, &mut alias);
        } else if tok.is_punct('{') {
            // Group: the prefix so far applies to each element; recursion
            // is not needed because only leaf segments matter.
            last_seg = None;
        }
        j += 1;
    }
    flush(&mut last_seg, &mut alias);
}

/// True when the type spelled by `code[from..end]` has a watched type
/// name at top level (`HashMap<K, V>` yes; `Vec<HashMap<…>>` and
/// `&[HashMap<…>]` no — iterating the outer Vec/slice is order-stable).
fn type_is_watched(code: &Code<'_>, from: usize, end: usize, watched: &BTreeSet<String>) -> bool {
    let mut angle = 0i64;
    let mut bracket = 0i64;
    for k in from..end {
        let Some(tok) = code.at(k) else { break };
        if tok.is_punct('<') {
            angle += 1;
        } else if tok.is_punct('>') && !code.is_punct(k.wrapping_sub(1), '-') {
            angle = (angle - 1).max(0); // `->` must not close an angle
        } else if tok.is_punct('[') {
            bracket += 1;
        } else if tok.is_punct(']') {
            bracket = (bracket - 1).max(0);
        } else if angle == 0
            && bracket == 0
            && tok.kind == TokKind::Ident
            && watched.contains(tok.ident_text())
        {
            return true;
        }
    }
    false
}

/// Collects watched `fn` returns and parameters, struct fields, and `let`
/// bindings. Runs after [`collect_aliases`] so local aliases resolve.
fn collect_items(toks: &[Tok], ctx: &mut FileContext) {
    let code = Code { toks, code: &ctx.code };
    let mut bindings: BTreeSet<String> = BTreeSet::new();
    let mut fields: BTreeSet<String> = BTreeSet::new();
    let mut fns: BTreeSet<String> = BTreeSet::new();

    // Sweep 1: function signatures and struct fields, so calls and field
    // accesses resolve regardless of declaration order.
    let mut j = 0usize;
    while let Some(tok) = code.at(j) {
        if tok.is_ident("fn") && code.at(j + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let name = code.at(j + 1).map(|t| t.ident_text().to_owned());
            if let Some(open) = find_at_angle_depth0(&code, j + 2, '(') {
                let close = code.matching_close(open).unwrap_or(open);
                collect_typed_names(&code, open + 1, close, &ctx.watched_types, &mut bindings);
                // Return type: `-> T` up to the body `{`, a `;`, or `where`.
                if code.is_punct(close + 1, '-') && code.is_punct(close + 2, '>') {
                    let stop = (close + 3..code.code.len())
                        .find(|&k| {
                            code.is_punct(k, '{')
                                || code.is_punct(k, ';')
                                || code.is_ident(k, "where")
                        })
                        .unwrap_or(code.code.len());
                    if type_is_watched(&code, close + 3, stop, &ctx.watched_types) {
                        if let Some(name) = name {
                            fns.insert(name);
                        }
                    }
                }
                j = close + 1;
                continue;
            }
        }
        if tok.is_ident("struct") {
            if let Some(open) = (j + 1..code.code.len()).find(|&k| {
                angle_depth0(&code, j + 1, k)
                    && (code.is_punct(k, '{') || code.is_punct(k, ';') || code.is_punct(k, '('))
            }) {
                if code.is_punct(open, '{') {
                    let close = code.matching_close(open).unwrap_or(open);
                    collect_typed_names(&code, open + 1, close, &ctx.watched_types, &mut fields);
                    j = close + 1;
                    continue;
                }
                j = open + 1;
                continue;
            }
        }
        j += 1;
    }

    // Sweep 2: let bindings.
    let mut j = 0usize;
    while let Some(tok) = code.at(j) {
        if !tok.is_ident("let") {
            j += 1;
            continue;
        }
        let mut k = j + 1;
        while code.is_ident(k, "mut") {
            k += 1;
        }
        let Some(name) = code.at(k).filter(|t| t.kind == TokKind::Ident) else {
            j += 1;
            continue; // tuple/struct pattern: not tracked
        };
        let name = name.ident_text().to_owned();
        let end = stmt_end(&code, k + 1);
        let eq = (k + 1..end).find(|&q| code.is_punct(q, '='));
        let watched = if code.is_punct(k + 1, ':') {
            // Annotated: `let x: HashMap<…> = …`.
            type_is_watched(&code, k + 2, eq.unwrap_or(end), &ctx.watched_types)
        } else if let Some(eq) = eq {
            init_is_watched(&code, eq + 1, end, ctx, &fns)
        } else {
            false
        };
        if watched {
            bindings.insert(name);
        }
        j = end + 1;
    }

    ctx.watched_bindings.extend(bindings);
    ctx.watched_fields.extend(fields);
    ctx.watched_fns.extend(fns);
}

/// Collects names declared with integral vs floating primitive types, by
/// sweeping every `name : Type` pair in the file (parameters, struct
/// fields, `let` annotations). The merge-float pass uses the integral set
/// to suppress `+=` on provably order-insensitive accumulators and the
/// float set as positive evidence.
fn collect_numeric_typed(toks: &[Tok], ctx: &mut FileContext) {
    let code = Code { toks, code: &ctx.code };
    let ints: BTreeSet<String> = INT_TYPES.iter().map(|s| (*s).to_owned()).collect();
    let floats: BTreeSet<String> = FLOAT_TYPES.iter().map(|s| (*s).to_owned()).collect();
    let n = code.code.len();
    let mut int_typed = BTreeSet::new();
    let mut float_typed = BTreeSet::new();
    collect_typed_names(&code, 0, n, &ints, &mut int_typed);
    collect_typed_names(&code, 0, n, &floats, &mut float_typed);
    // A name seen with both flavors is not provably integral.
    for name in &float_typed {
        int_typed.remove(name);
    }
    ctx.int_typed = int_typed;
    ctx.float_typed = float_typed;
}

/// First index `>= from` where `what` occurs at angle-bracket depth zero
/// (so the `(` of a `Fn(…)` bound inside generics is never picked as a
/// parameter-list opener).
fn find_at_angle_depth0(code: &Code<'_>, from: usize, what: char) -> Option<usize> {
    (from..code.code.len()).find(|&k| angle_depth0(code, from, k) && code.is_punct(k, what))
}

/// True when position `k` sits at angle-bracket depth zero relative to
/// `from`.
fn angle_depth0(code: &Code<'_>, from: usize, k: usize) -> bool {
    let mut angle = 0i64;
    for q in from..k {
        if code.is_punct(q, '<') {
            angle += 1;
        } else if code.is_punct(q, '>') && !code.is_punct(q.wrapping_sub(1), '-') {
            angle = (angle - 1).max(0);
        }
    }
    angle == 0
}

/// Scans `name : Type` pairs between `from` and `end` (a parameter list
/// or struct body) and records names whose type is watched at top level.
pub(crate) fn collect_typed_names(
    code: &Code<'_>,
    from: usize,
    end: usize,
    watched: &BTreeSet<String>,
    out: &mut BTreeSet<String>,
) {
    let mut j = from;
    while j < end {
        let name_ok = code.at(j).is_some_and(|t| t.kind == TokKind::Ident)
            && code.is_punct(j + 1, ':')
            && !code.is_punct(j + 2, ':'); // skip `path::segment`
        if !name_ok {
            j += 1;
            continue;
        }
        // The type runs to the next `,` (or `;`, or an unbalanced closer)
        // at depth 0 relative to here.
        let mut depth = 0i64;
        let mut stop = end;
        for k in j + 2..end {
            for c in ['(', '[', '{', '<'] {
                if code.is_punct(k, c) {
                    depth += 1;
                }
            }
            for c in [')', ']', '}'] {
                if code.is_punct(k, c) {
                    depth -= 1;
                }
            }
            if code.is_punct(k, '>') && !code.is_punct(k.wrapping_sub(1), '-') {
                depth -= 1;
            }
            if depth < 0 {
                stop = k;
                break;
            }
            if depth <= 0 && (code.is_punct(k, ',') || code.is_punct(k, ';')) {
                stop = k;
                break;
            }
        }
        if type_is_watched(code, j + 2, stop, watched) {
            if let Some(name) = code.at(j) {
                out.insert(name.ident_text().to_owned());
            }
        }
        j = stop + 1;
    }
}

/// True when a `let` initializer `code[from..end]` evidently constructs a
/// watched collection: `HashMap::new()`-style paths, a
/// `collect::<HashMap<…>>()` turbofish, or a call to a same-file function
/// whose return type is watched.
fn init_is_watched(
    code: &Code<'_>,
    from: usize,
    end: usize,
    ctx: &FileContext,
    fns: &BTreeSet<String>,
) -> bool {
    // `watched_fn(…)` call as the initializer head.
    if let Some(tok) = code.at(from) {
        if tok.kind == TokKind::Ident
            && fns.contains(tok.ident_text())
            && code.is_punct(from + 1, '(')
        {
            return true;
        }
    }
    for k in from..end {
        let Some(tok) = code.at(k) else { break };
        // `HashMap::…` (alias-resolved) anywhere in the initializer.
        if tok.kind == TokKind::Ident
            && ctx.is_watched_type(tok.ident_text())
            && code.is_punct(k + 1, ':')
            && code.is_punct(k + 2, ':')
        {
            return true;
        }
        // `collect::<HashMap<…>>()` turbofish.
        if tok.is_ident("collect")
            && code.is_punct(k + 1, ':')
            && code.is_punct(k + 2, ':')
            && code.is_punct(k + 3, '<')
            && code
                .at(k + 4)
                .is_some_and(|t| t.kind == TokKind::Ident && ctx.is_watched_type(t.ident_text()))
        {
            return true;
        }
    }
    false
}

/// Extracts `lint: allow` pragmas (comma-separated rule lists) from
/// comment tokens and
/// computes each pragma's target line.
fn collect_pragmas(toks: &[Tok], ctx: &mut FileContext) {
    for (i, tok) in toks.iter().enumerate() {
        if !tok.kind.is_comment() {
            continue;
        }
        let Some(idx) = tok.text.find("lint: allow(") else { continue };
        let rest = &tok.text[idx + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .collect();
        if rules.is_empty() {
            continue;
        }
        // Code before the comment on its own line → waives that line;
        // otherwise the next line holding any code token.
        let own_line = toks[..i]
            .iter()
            .rev()
            .take_while(|t| t.line() == tok.line())
            .any(|t| !t.kind.is_comment());
        let target_line = if own_line {
            Some(tok.line())
        } else {
            toks.iter()
                .filter(|t| !t.kind.is_comment() && t.line() > tok.line())
                .map(|t| t.line())
                .next()
        };
        ctx.pragmas.push(Pragma { rules, line: tok.line(), col: tok.col(), target_line });
    }
}
