//! Serve drill: drive the incremental curation service from the
//! `specs/serve.json` experiment spec — a mixed fault storm over the
//! arrival stream — and print the deterministic run report.
//!
//! `scripts/ci.sh` runs this three ways and diffs stdout against the
//! pinned `tests/fixtures/serve_drill.out`:
//!
//! 1. a clean run (checkpointing on, no crash);
//! 2. a run with `CM_CRASH_AT=2`, which ingests two batches and exits at
//!    the injected crash (stdout stays empty);
//! 3. a restart off the crashed run's checkpoint, which must print the
//!    exact bytes of the clean run.
//!
//! All output on stdout is deterministic (simulated clock, seeded fault
//! streams, digest instead of floats-by-eye); wall-clock timings go to
//! stderr, out-of-band of the fixture.
//!
//! ```sh
//! CM_CHECKPOINT=/tmp/ckpt.json CM_CRASH_AT=2 cargo run --release --example serve_drill
//! CM_CHECKPOINT=/tmp/ckpt.json cargo run --release --example serve_drill
//! ```

use std::path::PathBuf;

use cross_modal::check::{validate_spec_source, ExperimentSpec, ServeSpec};
use cross_modal::json::ToJson;
use cross_modal::par::ParConfig;
use cross_modal::prelude::*;
use cross_modal::serve;

fn load_spec() -> ExperimentSpec {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/serve.json");
    let source = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let (spec, violations) = validate_spec_source(&source, "specs/serve.json");
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("{}: {}", v.location, v.message);
        }
        std::process::exit(2);
    }
    spec.unwrap()
}

fn apply_serve_spec(config: &mut ServeConfig, s: &ServeSpec) {
    if let Some(n) = s.total_rows {
        config.total_rows = n;
    }
    if let Some(n) = s.batch_rows {
        config.batch_rows = n;
    }
    if let Some(n) = s.arrivals_per_tick {
        config.arrivals_per_tick = n;
    }
    if let Some(n) = s.queue_capacity {
        config.queue.capacity = n;
    }
    if let Some(n) = s.high_watermark {
        config.queue.high_watermark = n;
    }
    if let Some(k) = s.crash_at {
        config.crash_at = Some(k);
    }
    if let Some(f) = s.min_coverage {
        config.guards.min_coverage = f;
    }
    if let Some(f) = s.max_abstain {
        config.guards.max_abstain = f;
    }
}

fn main() {
    let spec = load_spec();
    let task_id = *spec.tasks.first().unwrap_or(&TaskId::Ct2);
    let task = TaskConfig::paper(task_id).scaled(spec.scale);

    let mut config = ServeConfig::new(task, spec.seed);
    config.incremental.curation.prop_max_seeds = 400;
    config.incremental.curation.mining.min_recall = 0.05;
    if let Some(s) = &spec.serve {
        apply_serve_spec(&mut config, s);
    }
    // Environment knobs override the spec (CM_BATCH_ROWS, CM_QUEUE_DEPTH,
    // CM_MEM_BUDGET, CM_CRASH_AT, CM_FAULTS); the spec's fault plan stays
    // in force unless CM_FAULTS replaces it.
    let mut config = config.with_env_overrides().unwrap_or_else(|e| {
        eprintln!("bad environment: {e}");
        std::process::exit(2);
    });
    if !config.plan.is_enabled() {
        if let Some(p) = &spec.fault_plan {
            config.plan = FaultPlan::parse(p).unwrap();
        }
    }
    config.checkpoint_path = Some(
        std::env::var("CM_CHECKPOINT")
            .map(PathBuf::from)
            .unwrap_or_else(|_| std::env::temp_dir().join("cm_serve_drill_ckpt.json")),
    );

    println!(
        "serve drill: task {} scale {}, {} rows in ~{}-row batches, fault seed {}",
        task_id.name(),
        spec.scale,
        config.total_rows,
        config.batch_rows,
        config.plan.seed
    );

    let par = ParConfig::from_env();
    match serve::run(&config, &par) {
        Ok(RunOutcome::Completed { report, timing }) => {
            println!(
                "completed: {} batches ingested, {} rows, {} ticks, {} sim-ms",
                report.batches.len(),
                report.rows_ingested,
                report.ticks,
                report.sim_ms
            );
            println!(
                "mode {}: quarantined={} recovered={} dropped={} shed_batches={} deferred={}",
                report.serving.mode,
                report.serving.batches_quarantined,
                report.serving.batches_recovered,
                report.serving.batches_dropped,
                report.shedding.shed_batches,
                report.shedding.deferred
            );
            println!("posterior digest: {}", report.posterior_digest);
            println!("report JSON:");
            println!("{}", report.to_json().to_string_pretty());
            // Wall-clock accounting is real time, not simulated: stderr
            // only, never part of the pinned fixture.
            let bases = timing.checkpoint_ticks.iter().filter(|t| t.wrote_base).count();
            eprintln!(
                "timing: total {:?}, setup {:?}, generation {:?}, curation {:?}, \
                 checkpoint {:?}, serving envelope {:?} ({:.2}% of curation)",
                timing.total,
                timing.setup,
                timing.generation,
                timing.curation,
                timing.checkpoint,
                timing.envelope(),
                timing.overhead_pct()
            );
            eprintln!(
                "checkpoint: {} bytes over {} writes ({} base rewrites, {} delta appends)",
                timing.checkpoint_bytes,
                timing.checkpoint_ticks.len(),
                bases,
                timing.checkpoint_ticks.len() - bases
            );
        }
        Ok(RunOutcome::Crashed { at_tick }) => {
            eprintln!("injected crash at tick {at_tick}; resume from the checkpoint");
        }
        Err(e) => {
            eprintln!("serve run failed: {e}");
            std::process::exit(1);
        }
    }
}
