//! The semantic lint passes.
//!
//! Each pass scans one file's code-token view (comments filtered out, so
//! a call split across lines or interleaved with comments still matches)
//! and emits raw findings anchored to a token index. The engine in
//! `lib.rs` turns anchors into line/column positions, drops findings in
//! `#[cfg(test)]` regions, applies waiver pragmas, and audits them.

pub mod bans;
pub mod float_order;
pub mod nondet_iter;

use crate::context::FileContext;
use crate::lexer::Tok;

/// A finding before position resolution and waiver handling: the rule,
/// the anchor token (index into the full token stream), and the message.
#[derive(Debug)]
pub struct RawFinding {
    /// Rule name; doubles as the waiver key.
    pub rule: &'static str,
    /// Index into the token stream of the first matched token.
    pub tok: usize,
    /// Human explanation.
    pub message: String,
}

/// Shared pass input: the token stream plus the structural context.
pub struct PassInput<'a> {
    /// Full token stream (comments included).
    pub toks: &'a [Tok],
    /// Structural facts: code view, test regions, watched names, pragmas.
    pub ctx: &'a FileContext,
}

impl<'a> PassInput<'a> {
    /// Code-view token at position `j` (comments skipped), if any.
    pub fn at(&self, j: usize) -> Option<&'a Tok> {
        self.ctx.code.get(j).map(|&i| &self.toks[i])
    }

    /// True when code token `j` is the punctuation `c`.
    pub fn punct(&self, j: usize, c: char) -> bool {
        self.at(j).is_some_and(|t| t.is_punct(c))
    }

    /// True when code token `j` is the identifier `name`.
    pub fn ident(&self, j: usize, name: &str) -> bool {
        self.at(j).is_some_and(|t| t.is_ident(name))
    }

    /// True when code tokens `j`/`j+1` spell the path separator `::`.
    pub fn path_sep(&self, j: usize) -> bool {
        self.punct(j, ':') && self.punct(j + 1, ':')
    }

    /// The token-stream index of code token `j`.
    pub fn tok_index(&self, j: usize) -> usize {
        self.ctx.code[j]
    }
}
