//! Dense linear algebra kernels for the cross-modal adaptation pipeline.
//!
//! The paper's model substrate (logistic regression and fully-connected
//! networks trained inside TFX) is replaced by a first-party implementation;
//! this crate provides the numeric core: a row-major [`Matrix`], vector
//! kernels with f64 accumulation, parameter initializers, and summary
//! statistics.
//!
//! Everything is deterministic given a seed: `f32` storage with `f64`
//! accumulation in reductions, which is accurate enough for the workloads in
//! this repository while keeping memory traffic low.

pub mod init;
pub mod matrix;
pub mod rng;
pub mod stable;
pub mod stats;
pub mod vecops;

pub use init::{he_normal, xavier_uniform};
pub use matrix::Matrix;
pub use rng::{Rng, SliceRandom, StdRng};
pub use stable::StableSum;
pub use stats::{mean, standardize_columns, variance, ColumnStats};
pub use vecops::{add_assign, argmax, axpy, dot, l2_norm, scale, sigmoid, softmax_in_place};
