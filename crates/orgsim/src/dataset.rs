//! Materialized per-modality datasets.

use cm_faults::AccessLayer;
use cm_featurespace::{CmResult, FeatureTable, Label, ModalityKind};
use cm_linalg::rng::SliceRandom;
use cm_linalg::rng::StdRng;

use crate::world::World;

/// A featurized sample of one modality's population.
///
/// Ground-truth labels are always carried; whether they are *visible* to the
/// pipeline (labeled corpus vs unlabeled pool vs held-out test set) is the
/// pipeline's decision, mirroring how the paper samples live traffic for the
/// unlabeled pool and human-curated data for training/test (§6.1).
#[derive(Debug, Clone)]
pub struct ModalityDataset {
    /// Modality of every row.
    pub modality: ModalityKind,
    /// Featurized rows in the common feature space.
    pub table: FeatureTable,
    /// Ground-truth labels, parallel to the table rows.
    pub labels: Vec<Label>,
    /// Whether each row's entity belongs to a borderline archetype
    /// (diagnostics for the label-propagation experiments).
    pub borderline: Vec<bool>,
}

impl ModalityDataset {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Empirical positive rate.
    pub fn positive_rate(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|l| l.is_positive()).count() as f64 / self.labels.len() as f64
    }

    /// Ground-truth labels as 0/1 floats.
    pub fn labels_f64(&self) -> Vec<f64> {
        self.labels.iter().map(|l| l.as_f64()).collect()
    }

    /// Gathers a subset of rows into a new dataset.
    pub fn gather(&self, rows: &[usize]) -> ModalityDataset {
        ModalityDataset {
            modality: self.modality,
            table: self.table.gather(rows),
            labels: rows.iter().map(|&r| self.labels[r]).collect(),
            borderline: rows.iter().map(|&r| self.borderline[r]).collect(),
        }
    }

    /// Splits into `(first, second)` with `first` getting `fraction` of the
    /// rows, after a seeded shuffle.
    ///
    /// # Panics
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn split(&self, fraction: f64, seed: u64) -> (ModalityDataset, ModalityDataset) {
        assert!((0.0..=1.0).contains(&fraction), "fraction {fraction} out of range");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let cut = ((self.len() as f64) * fraction).round() as usize;
        (self.gather(&idx[..cut]), self.gather(&idx[cut..]))
    }

    /// A seeded uniform subsample of `n` rows (all rows if `n >= len`).
    pub fn subsample(&self, n: usize, seed: u64) -> ModalityDataset {
        if n >= self.len() {
            return self.clone();
        }
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        idx.truncate(n);
        self.gather(&idx)
    }
}

/// A segment-at-a-time view of [`World::generate`], for out-of-core
/// curation: rows come off one seeded RNG in generation order, so the
/// concatenation of the emitted segments is **bit-identical** to the
/// resident dataset for any segment size — each row's random draws depend
/// only on how many rows precede it, never on where segment cuts fall.
pub struct DatasetStream<'w> {
    world: &'w World,
    modality: ModalityKind,
    rng: StdRng,
    remaining: usize,
}

impl<'w> DatasetStream<'w> {
    /// Rows not yet emitted.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Generates the next up-to-`max_rows` rows, or `None` when the
    /// configured population is exhausted.
    ///
    /// # Panics
    /// Panics if `max_rows` is zero.
    pub fn next_segment(&mut self, max_rows: usize) -> Option<ModalityDataset> {
        assert!(max_rows > 0, "segment size must be positive");
        if self.remaining == 0 {
            return None;
        }
        let n = max_rows.min(self.remaining);
        self.remaining -= n;
        Some(self.world.generate_rows(self.modality, n, &mut self.rng))
    }

    /// Like [`DatasetStream::next_segment`], but routes every service
    /// response through the resilient `access` layer — the serving-loop
    /// arrival stream, where PR 3's faults become live batch behavior.
    ///
    /// `row_offset` is the layer-global row of the segment's first entity
    /// (pass the number of rows already generated through this layer).
    /// Because the base values come off the same in-flight world RNG as
    /// [`DatasetStream::next_segment`] and fault draws are keyed on the
    /// absolute row index, segment boundaries never perturb either stream:
    /// the concatenation of `via` segments equals the resident
    /// [`World::generate_via`] output bit for bit, and with a disabled
    /// plan it equals the clean stream.
    ///
    /// # Panics
    /// Panics if `max_rows` is zero.
    pub fn next_segment_via(
        &mut self,
        max_rows: usize,
        access: &mut AccessLayer,
        row_offset: u64,
    ) -> CmResult<Option<ModalityDataset>> {
        assert!(max_rows > 0, "segment size must be positive");
        if self.remaining == 0 {
            return Ok(None);
        }
        let n = max_rows.min(self.remaining);
        self.remaining -= n;
        self.world.generate_rows_via(self.modality, n, &mut self.rng, access, row_offset).map(Some)
    }
}

impl World {
    /// Generates `n` featurized data points of `modality`.
    pub fn generate(&self, modality: ModalityKind, n: usize, seed: u64) -> ModalityDataset {
        // The resident dataset is the single-segment case of the stream.
        let mut rng = StdRng::seed_from_u64(seed);
        self.generate_rows(modality, n, &mut rng)
    }

    /// Begins streaming the same `n` rows [`World::generate`] would
    /// produce for this seed, in segments.
    pub fn stream(&self, modality: ModalityKind, n: usize, seed: u64) -> DatasetStream<'_> {
        DatasetStream { world: self, modality, rng: StdRng::seed_from_u64(seed), remaining: n }
    }

    /// Draws the next `n` rows off an in-flight generation RNG.
    fn generate_rows(&self, modality: ModalityKind, n: usize, rng: &mut StdRng) -> ModalityDataset {
        let mut table = FeatureTable::new(std::sync::Arc::clone(self.schema()));
        table.reserve(n);
        let mut labels = Vec::with_capacity(n);
        let mut borderline = Vec::with_capacity(n);
        for _ in 0..n {
            let entity = self.sample_entity(modality, rng);
            let row = self.featurize(&entity, modality, rng);
            table.push_row(&row);
            labels.push(entity.label);
            borderline.push(entity.borderline);
        }
        ModalityDataset { modality, table, labels, borderline }
    }

    /// Generates `n` featurized data points of `modality` with every
    /// service response routed through the resilient `access` layer.
    /// `row_offset` makes call rows unique when one layer serves several
    /// datasets (pass the number of rows already generated through it).
    ///
    /// Rows are ingested through the validating
    /// [`FeatureTable::try_push_row`] boundary, so a fault that slipped a
    /// non-finite value past the layer surfaces as an error instead of a
    /// poisoned matrix. With a disabled plan the output is bit-identical
    /// to [`World::generate`].
    pub fn generate_via(
        &self,
        modality: ModalityKind,
        n: usize,
        seed: u64,
        access: &mut AccessLayer,
        row_offset: u64,
    ) -> CmResult<ModalityDataset> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.generate_rows_via(modality, n, &mut rng, access, row_offset)
    }

    /// Draws the next `n` rows off an in-flight generation RNG, through
    /// the access layer. The base values consume exactly the draws
    /// [`World::generate_rows`] would, so clean and `via` streams stay in
    /// lockstep row for row.
    fn generate_rows_via(
        &self,
        modality: ModalityKind,
        n: usize,
        rng: &mut StdRng,
        access: &mut AccessLayer,
        row_offset: u64,
    ) -> CmResult<ModalityDataset> {
        let mut table = FeatureTable::new(std::sync::Arc::clone(self.schema()));
        table.reserve(n);
        let mut labels = Vec::with_capacity(n);
        let mut borderline = Vec::with_capacity(n);
        for i in 0..n {
            let entity = self.sample_entity(modality, rng);
            let row = self.featurize_via(&entity, modality, rng, access, row_offset + i as u64);
            table.try_push_row(&row)?;
            labels.push(entity.label);
            borderline.push(entity.borderline);
        }
        Ok(ModalityDataset { modality, table, labels, borderline })
    }

    /// Generates the paper's three datasets for this task: the labeled text
    /// corpus, the unlabeled image pool, and the labeled image test set —
    /// the Table 1 workload at this world's configured scale.
    pub fn generate_task_datasets(
        &self,
        seed: u64,
    ) -> (ModalityDataset, ModalityDataset, ModalityDataset) {
        let task = &self.config().task;
        let text = self.generate(ModalityKind::Text, task.n_text_labeled, seed ^ 0x1);
        let pool = self.generate(ModalityKind::Image, task.n_image_unlabeled, seed ^ 0x2);
        let test = self.generate(ModalityKind::Image, task.n_image_test, seed ^ 0x3);
        (text, pool, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{TaskConfig, TaskId};
    use crate::world::WorldConfig;

    fn world() -> World {
        World::build(WorldConfig::new(TaskConfig::paper(TaskId::Ct2).scaled(0.02), 11))
    }

    #[test]
    fn generate_produces_requested_rows() {
        let w = world();
        let d = w.generate(ModalityKind::Image, 500, 1);
        assert_eq!(d.len(), 500);
        assert_eq!(d.labels.len(), 500);
        assert_eq!(d.borderline.len(), 500);
    }

    #[test]
    fn generation_is_deterministic() {
        let w = world();
        let a = w.generate(ModalityKind::Text, 100, 9);
        let b = w.generate(ModalityKind::Text, 100, 9);
        assert_eq!(a.labels, b.labels);
        for r in 0..100 {
            assert_eq!(a.table.row(r), b.table.row(r));
        }
        let c = w.generate(ModalityKind::Text, 100, 10);
        assert!((0..100).any(|r| a.table.row(r) != c.table.row(r)), "different seeds must differ");
    }

    /// The streaming contract: segments concatenate to the resident
    /// dataset bit for bit, at every segment size.
    #[test]
    fn streamed_segments_concatenate_to_resident_dataset() {
        let w = world();
        let resident = w.generate(ModalityKind::Image, 257, 21);
        for seg_rows in [1usize, 7, 64, 256, 257, 1000] {
            let mut stream = w.stream(ModalityKind::Image, 257, 21);
            let mut offset = 0usize;
            let mut total = 0usize;
            while let Some(seg) = stream.next_segment(seg_rows) {
                assert!(seg.len() <= seg_rows);
                for r in 0..seg.len() {
                    assert_eq!(
                        seg.table.row(r),
                        resident.table.row(offset + r),
                        "seg_rows = {seg_rows}, row {r}"
                    );
                    assert_eq!(seg.labels[r], resident.labels[offset + r]);
                    assert_eq!(seg.borderline[r], resident.borderline[offset + r]);
                }
                offset += seg.len();
                total += seg.len();
            }
            assert_eq!(total, 257, "seg_rows = {seg_rows}");
            assert_eq!(stream.remaining(), 0);
        }
    }

    #[test]
    fn empty_stream_yields_no_segments() {
        let w = world();
        let mut stream = w.stream(ModalityKind::Text, 0, 3);
        assert!(stream.next_segment(16).is_none());
    }

    #[test]
    fn generate_via_disabled_plan_matches_generate() {
        use cm_faults::{AccessLayer, AccessPolicy, FaultPlan};
        let w = world();
        let clean = w.generate(ModalityKind::Image, 300, 9);
        let mut layer = AccessLayer::new(
            &FaultPlan::disabled(),
            AccessPolicy::default(),
            &w.service_descriptors(),
            9,
        )
        .unwrap();
        let via = w.generate_via(ModalityKind::Image, 300, 9, &mut layer, 0).unwrap();
        assert_eq!(via.labels, clean.labels);
        for r in 0..300 {
            assert_eq!(via.table.row(r), clean.table.row(r), "row {r}");
        }
    }

    #[test]
    fn generate_via_unfaulted_services_see_clean_values() {
        use cm_faults::{AccessLayer, AccessPolicy, FaultPlan};
        let w = world();
        let clean = w.generate(ModalityKind::Image, 200, 4);
        let plan = FaultPlan::parse("seed=3;topics=unavailable@0.7").unwrap();
        let mut layer =
            AccessLayer::new(&plan, AccessPolicy::default(), &w.service_descriptors(), 4).unwrap();
        let faulted = w.generate_via(ModalityKind::Image, 200, 4, &mut layer, 0).unwrap();
        let topics = w.schema().column("topics").unwrap();
        let mut changed = 0usize;
        for r in 0..200 {
            for c in 0..w.schema().len() {
                if c == topics {
                    changed += usize::from(faulted.table.value(r, c) != clean.table.value(r, c));
                } else {
                    assert_eq!(
                        faulted.table.value(r, c),
                        clean.table.value(r, c),
                        "unfaulted service {c} drifted at row {r}"
                    );
                }
            }
        }
        assert!(changed > 0, "the faulted service must actually lose values");
    }

    /// The serving-stream contract: `via` segments concatenate to the
    /// resident `generate_via` output bit for bit at every segment size —
    /// fault draws are keyed on absolute rows, so batch cuts are invisible.
    #[test]
    fn streamed_via_segments_concatenate_to_resident_generate_via() {
        use cm_faults::{AccessLayer, AccessPolicy, FaultPlan};
        let w = world();
        let plan = FaultPlan::parse(
            "seed=5;topics=unavailable@0.4;keywords=transient(2)@0.5;kg_entities=stale",
        )
        .unwrap();
        let build = || {
            AccessLayer::new(&plan, AccessPolicy::default(), &w.service_descriptors(), 21).unwrap()
        };
        let mut resident_layer = build();
        let resident =
            w.generate_via(ModalityKind::Image, 257, 21, &mut resident_layer, 0).unwrap();
        for seg_rows in [1usize, 7, 64, 257, 1000] {
            let mut layer = build();
            let mut stream = w.stream(ModalityKind::Image, 257, 21);
            let mut offset = 0usize;
            while let Some(seg) =
                stream.next_segment_via(seg_rows, &mut layer, offset as u64).unwrap()
            {
                for r in 0..seg.len() {
                    assert_eq!(
                        seg.table.row(r),
                        resident.table.row(offset + r),
                        "seg_rows = {seg_rows}, row {r}"
                    );
                    assert_eq!(seg.labels[r], resident.labels[offset + r]);
                }
                offset += seg.len();
            }
            assert_eq!(offset, 257, "seg_rows = {seg_rows}");
            assert_eq!(layer.summary(), resident_layer.summary(), "seg_rows = {seg_rows}");
        }
    }

    #[test]
    fn positive_rate_tracks_profile() {
        let w = world();
        let d = w.generate(ModalityKind::Image, 10_000, 2);
        let target = w.config().task.profile.positive_rate;
        assert!((d.positive_rate() - target).abs() < 0.015);
    }

    #[test]
    fn split_partitions_rows() {
        let w = world();
        let d = w.generate(ModalityKind::Text, 200, 3);
        let (a, b) = d.split(0.25, 5);
        assert_eq!(a.len(), 50);
        assert_eq!(b.len(), 150);
        let total_pos = a.labels.iter().chain(&b.labels).filter(|l| l.is_positive()).count();
        let orig_pos = d.labels.iter().filter(|l| l.is_positive()).count();
        assert_eq!(total_pos, orig_pos);
    }

    #[test]
    fn subsample_caps_at_len() {
        let w = world();
        let d = w.generate(ModalityKind::Text, 50, 4);
        assert_eq!(d.subsample(500, 0).len(), 50);
        assert_eq!(d.subsample(10, 0).len(), 10);
    }

    #[test]
    fn task_datasets_have_configured_sizes() {
        let w = world();
        let (text, pool, test) = w.generate_task_datasets(77);
        let task = &w.config().task;
        assert_eq!(text.len(), task.n_text_labeled);
        assert_eq!(pool.len(), task.n_image_unlabeled);
        assert_eq!(test.len(), task.n_image_test);
        assert_eq!(text.modality, ModalityKind::Text);
        assert_eq!(pool.modality, ModalityKind::Image);
    }

    #[test]
    fn labels_f64_encoding() {
        let w = world();
        let d = w.generate(ModalityKind::Text, 100, 5);
        let f = d.labels_f64();
        for (l, v) in d.labels.iter().zip(&f) {
            assert_eq!(l.as_f64(), *v);
        }
    }
}
