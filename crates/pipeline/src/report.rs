//! Serializable experiment outputs consumed by the bench binaries.

use cm_json::{Json, JsonError, ToJson};

/// One trained-and-evaluated model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelEval {
    /// Scenario display name.
    pub scenario: String,
    /// Absolute AUPRC on the image test set.
    pub auprc: f64,
    /// AUPRC relative to the embedding baseline, when computed.
    pub relative_auprc: Option<f64>,
    /// Training rows the model saw.
    pub n_train_rows: usize,
}

impl ToJson for ModelEval {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", self.scenario.to_json()),
            ("auprc", self.auprc.to_json()),
            ("relative_auprc", self.relative_auprc.to_json()),
            ("n_train_rows", self.n_train_rows.to_json()),
        ])
    }
}

fn missing(field: &str) -> JsonError {
    JsonError { message: format!("missing or mistyped field {field:?}"), offset: 0 }
}

impl ModelEval {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            scenario: v
                .get("scenario")
                .and_then(Json::as_str)
                .ok_or_else(|| missing("scenario"))?
                .to_owned(),
            auprc: v.get("auprc").and_then(Json::as_f64).ok_or_else(|| missing("auprc"))?,
            relative_auprc: match v.get("relative_auprc") {
                None | Some(Json::Null) => None,
                Some(r) => Some(r.as_f64().ok_or_else(|| missing("relative_auprc"))?),
            },
            n_train_rows: v
                .get("n_train_rows")
                .and_then(Json::as_usize)
                .ok_or_else(|| missing("n_train_rows"))?,
        })
    }
}

/// A group of evaluations for one task (one table row / figure panel).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Task display name (e.g. `"CT 1"`).
    pub task: String,
    /// Baseline absolute AUPRC all relative values divide by.
    pub baseline_auprc: f64,
    /// Evaluations.
    pub rows: Vec<ModelEval>,
}

impl ToJson for ScenarioReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("task", self.task.to_json()),
            ("baseline_auprc", self.baseline_auprc.to_json()),
            ("rows", self.rows.to_json()),
        ])
    }
}

impl ScenarioReport {
    /// Parses a report previously emitted by [`ToJson`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let rows = v
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| missing("rows"))?
            .iter()
            .map(ModelEval::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            task: v.get("task").and_then(Json::as_str).ok_or_else(|| missing("task"))?.to_owned(),
            baseline_auprc: v
                .get("baseline_auprc")
                .and_then(Json::as_f64)
                .ok_or_else(|| missing("baseline_auprc"))?,
            rows,
        })
    }

    /// Renders a compact fixed-width table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "{}  (baseline AUPRC {:.4})\n{:<42} {:>8} {:>9} {:>9}\n",
            self.task, self.baseline_auprc, "scenario", "AUPRC", "relative", "n_train"
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{:<42} {:>8.4} {:>9} {:>9}\n",
                row.scenario,
                row.auprc,
                row.relative_auprc.map_or_else(|| "-".to_owned(), |r| format!("{r:.2}x")),
                row.n_train_rows
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_rows() {
        let report = ScenarioReport {
            task: "CT 1".into(),
            baseline_auprc: 0.25,
            rows: vec![
                ModelEval {
                    scenario: "cross-modal".into(),
                    auprc: 0.38,
                    relative_auprc: Some(1.52),
                    n_train_rows: 25_000,
                },
                ModelEval {
                    scenario: "text-only".into(),
                    auprc: 0.28,
                    relative_auprc: None,
                    n_train_rows: 18_000,
                },
            ],
        };
        let t = report.to_table();
        assert!(t.contains("CT 1"));
        assert!(t.contains("1.52x"));
        assert!(t.contains("text-only"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = ScenarioReport {
            task: "CT 2".into(),
            baseline_auprc: 0.1,
            rows: vec![ModelEval {
                scenario: "fusion".into(),
                auprc: 0.31,
                relative_auprc: None,
                n_train_rows: 12,
            }],
        };
        let json = report.to_json().to_string_pretty();
        let back = ScenarioReport::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        let v = Json::parse(r#"{"task": "CT 1", "rows": []}"#).unwrap();
        assert!(ScenarioReport::from_json(&v).is_err());
    }
}
