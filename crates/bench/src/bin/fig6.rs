//! Regenerates **Figure 6**: the organizational-resources factor analysis
//! for CT 1 — an eight-step ladder that alternately adds feature sets to
//! the text and image modalities, measuring relative AUPRC of the early-
//! fusion model at each step.
//!
//! Expected shape (paper): monotone-ish growth from `T+A` (far below the
//! baseline) to `T+ABCD, I+ABCD`; adding a feature set typically helps more
//! than adding the other modality with the same sets.
//!
//! The eight-step ladder lives in `specs/fig6.json` (its scenario order
//! is the ladder order); `CM_SCALE`, `CM_SEEDS`, and `CM_JSON` still
//! override the spec's defaults.

use cm_bench::{
    load_spec, maybe_write_json, mean, spec_reservoir, spec_scale, spec_seeds, TaskRun,
};
use cm_json::{Json, ToJson};
use cm_pipeline::{curate, Scenario};

struct Step {
    label: String,
    relative_auprc: f64,
    auprc: f64,
}

impl ToJson for Step {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", self.label.to_json()),
            ("relative_auprc", self.relative_auprc.to_json()),
            ("auprc", self.auprc.to_json()),
        ])
    }
}

fn main() {
    let spec = load_spec("fig6");
    let scale = spec_scale(&spec);
    let seeds = spec_seeds(&spec);
    let ladder: Vec<Scenario> = spec.scenarios.iter().map(Scenario::from_spec).collect();
    println!("Figure 6 (CT 1 factor analysis, scale {scale}, {} seed(s))", seeds.len());
    println!("{:<18} {:>10} {:>10}", "step", "AUPRC", "relative");

    let mut acc: Vec<Vec<f64>> = vec![Vec::new(); ladder.len()];
    let mut baselines = Vec::new();
    for &seed in &seeds {
        let run = TaskRun::new(spec.tasks[0], scale, seed, spec_reservoir(&spec, scale));
        let runner = run.runner();
        let curation = curate(&run.data, &run.curation_config(seed));
        baselines.push(runner.baseline_auprc().unwrap());
        for (i, scenario) in ladder.iter().enumerate() {
            acc[i].push(runner.run(scenario, Some(&curation)).unwrap().auprc);
        }
    }
    let baseline = mean(&baselines);
    let mut steps = Vec::new();
    for (i, scenario) in ladder.iter().enumerate() {
        let auprc = mean(&acc[i]);
        println!("{:<18} {auprc:>10.4} {:>9.2}x", scenario.name, auprc / baseline);
        steps.push(Step { label: scenario.name.clone(), relative_auprc: auprc / baseline, auprc });
    }

    // The paper's headline: average gain from adding a feature set vs
    // adding a modality at fixed sets.
    let rel: Vec<f64> = steps.iter().map(|s| s.relative_auprc).collect();
    let feature_steps = [(1, 2), (3, 4), (5, 6)]; // T gains a set
    let modality_steps = [(2, 3), (4, 5), (6, 7)]; // I catches up
    let avg = |pairs: &[(usize, usize)]| {
        mean(&pairs.iter().map(|&(a, b)| rel[b] - rel[a]).collect::<Vec<_>>())
    };
    println!(
        "\navg step gain: adding a feature set {:+.3}, adding it to the other modality {:+.3}",
        avg(&feature_steps),
        avg(&modality_steps)
    );
    maybe_write_json(&steps);
}
