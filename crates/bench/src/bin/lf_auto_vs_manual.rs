//! Regenerates the **§6.7.1 comparison**: automatically mined labeling
//! functions vs a domain expert's hand-written suite, on CT 1.
//!
//! Reported exactly as the paper frames it: development time (mining +
//! propagation wall-clock vs the expert's 7 hours), weak-supervision
//! quality (precision / recall / F1 / coverage of the curated labels), and
//! end-model AUPRC.
//!
//! Expected shape (paper): the automatic pipeline is faster (theirs: 1.87x;
//! 3.75 h vs 7 h — ours is faster still, since the synthetic corpus is
//! 1/1000 the size) and at least matches the expert on F1 and coverage.
//!
//! The run configuration lives in `specs/lf_auto_vs_manual.json`;
//! `CM_SCALE`, `CM_SEEDS`, and `CM_JSON` still override it.

use std::time::Duration;

use cm_bench::{
    load_spec, maybe_write_json, mean, spec_reservoir, spec_scale, spec_scenario, spec_seeds,
    TaskRun,
};
use cm_json::{Json, ToJson};
use cm_pipeline::{curate, curate_with_lfs, expert_lfs, EXPERT_AUTHORING};

struct Side {
    label: String,
    authoring_seconds: f64,
    n_lfs: f64,
    precision: f64,
    recall: f64,
    f1: f64,
    coverage: f64,
    end_model_auprc: f64,
}

impl ToJson for Side {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label", self.label.to_json()),
            ("authoring_seconds", self.authoring_seconds.to_json()),
            ("n_lfs", self.n_lfs.to_json()),
            ("precision", self.precision.to_json()),
            ("recall", self.recall.to_json()),
            ("f1", self.f1.to_json()),
            ("coverage", self.coverage.to_json()),
            ("end_model_auprc", self.end_model_auprc.to_json()),
        ])
    }
}

fn main() {
    let spec = load_spec("lf_auto_vs_manual");
    let scale = spec_scale(&spec);
    let seeds = spec_seeds(&spec);
    let scenario = spec_scenario(&spec, "image-only I+ABCD");
    println!(
        "Automatic vs manual LF generation (§6.7.1, CT 1, scale {scale}, {} seed(s))",
        seeds.len()
    );

    let mut acc: Vec<Vec<[f64; 7]>> = vec![Vec::new(), Vec::new()];
    for &seed in &seeds {
        let run = TaskRun::new(spec.tasks[0], scale, seed, spec_reservoir(&spec, scale));
        let runner = run.runner();
        let cfg = run.curation_config(seed);

        let mined = curate(&run.data, &cfg);
        let mined_time = mined.mining_time + mined.propagation_time.unwrap_or(Duration::ZERO);
        let mined_auprc = runner.run(&scenario, Some(&mined)).unwrap().auprc;
        acc[0].push([
            mined_time.as_secs_f64(),
            (mined.lf_names.len()) as f64,
            mined.ws_quality.precision,
            mined.ws_quality.recall,
            mined.ws_quality.f1,
            mined.ws_quality.coverage,
            mined_auprc,
        ]);

        let lfs = expert_lfs(run.data.world.schema()).unwrap();
        let expert = curate_with_lfs(&run.data, &cfg, lfs, EXPERT_AUTHORING);
        // The expert's clock is authoring time; propagation (if used) runs
        // for both sides.
        let expert_time = EXPERT_AUTHORING + expert.propagation_time.unwrap_or(Duration::ZERO);
        let expert_auprc = runner.run(&scenario, Some(&expert)).unwrap().auprc;
        acc[1].push([
            expert_time.as_secs_f64(),
            (expert.lf_names.len()) as f64,
            expert.ws_quality.precision,
            expert.ws_quality.recall,
            expert.ws_quality.f1,
            expert.ws_quality.coverage,
            expert_auprc,
        ]);
    }

    let mut sides = Vec::new();
    for (i, label) in
        ["mined (itemset + propagation)", "expert (hand-written)"].into_iter().enumerate()
    {
        let col = |j: usize| mean(&acc[i].iter().map(|r| r[j]).collect::<Vec<_>>());
        sides.push(Side {
            label: label.to_owned(),
            authoring_seconds: col(0),
            n_lfs: col(1),
            precision: col(2),
            recall: col(3),
            f1: col(4),
            coverage: col(5),
            end_model_auprc: col(6),
        });
    }
    println!(
        "{:<30} {:>12} {:>6} {:>8} {:>8} {:>8} {:>9} {:>10}",
        "LF source", "dev time", "#LFs", "P", "R", "F1", "coverage", "AUPRC"
    );
    for s in &sides {
        println!(
            "{:<30} {:>11.1}s {:>6.0} {:>8.3} {:>8.3} {:>8.3} {:>9.3} {:>10.4}",
            s.label,
            s.authoring_seconds,
            s.n_lfs,
            s.precision,
            s.recall,
            s.f1,
            s.coverage,
            s.end_model_auprc
        );
    }
    let speedup = sides[1].authoring_seconds / sides[0].authoring_seconds.max(1e-9);
    println!(
        "\nautomatic generation is {speedup:.1}x faster; F1 {:+.1} points vs expert",
        (sides[0].f1 - sides[1].f1) * 100.0
    );
    maybe_write_json(&sides);
}
