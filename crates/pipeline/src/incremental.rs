//! Incremental curation: the batch pipeline of [`crate::curation`]
//! reorganized around *arrival batches* for the long-running serving loop
//! (ROADMAP item 2; the paper's deployment keeps curating as
//! organizational data arrives).
//!
//! The division of labor with `cm-serve`:
//!
//! - This module owns the *curation state machine*: LFs are mined once on
//!   the labeled text corpus, each arrival batch's votes append to the
//!   accumulated label matrix, the EM label model refits warm-started
//!   from the previous fit ([`cm_labelmodel::WarmStart`]), and the
//!   propagation graph grows by online anchor insertion
//!   ([`cm_propagation::OnlineGraph`]) instead of full rebuilds.
//! - `cm-serve` owns the *robustness envelope*: admission control,
//!   quality guards, quarantine, and checkpointing. The curator supports
//!   it with [`IncrementalCurator::preview_batch`] (guard inputs without
//!   state mutation) and [`IncrementalCurator::export_state`] /
//!   [`IncrementalCurator::restore`] (crash recovery).
//!
//! **Resume contract**: `restore(world, text, config, state)` rebuilds a
//! curator whose observable behavior — posteriors, coverage, and every
//! subsequent ingest — is bit-identical to the curator that exported the
//! state and never stopped. Everything derivable from the clean-path
//! inputs (mined LFs, dev split, similarity scales, seed vertices) is
//! recomputed deterministically; only the state that depends on the
//! faulty arrival history (pool rows, EM parameters, graph routing) rides
//! in [`IncrementalState`].
//!
//! Two deliberate divergences from the one-shot batch pipeline, both
//! inherent to serving: similarity scales are fitted on the labeled
//! corpus only (the pool isn't known upfront), and the label model is
//! always the warm-startable EM model rather than the dev-anchored one.

use cm_featurespace::{FeatureTable, FrozenTable, Label, SimilarityConfig};
use cm_labelmodel::{GenerativeConfig, GenerativeModel, LabelMatrix, LabelingFunction, WarmStart};
use cm_mining::mine_lfs;
use cm_orgsim::{ModalityDataset, World};
use cm_par::ParConfig;
use cm_propagation::{
    propagate, OnlineGraph, OnlineGraphDelta, OnlineGraphState, PropagationConfig,
};

use crate::curation::{
    lf_columns, prop_artifacts_from_scores, prop_split, sim_columns, CurationConfig,
};

/// Configuration of the incremental curator.
#[derive(Debug, Clone)]
pub struct IncrementalConfig {
    /// The underlying curation settings (mining thresholds, propagation
    /// knobs, seeds). `label_model` is ignored: serving always uses the
    /// warm-startable EM model.
    pub curation: CurationConfig,
    /// EM iteration cap for warm-started refits (the first fit runs the
    /// full `curation.generative.max_iters`). Twenty keeps the warm chain
    /// within a few percent of the from-scratch posterior (see the
    /// `batch_cuts_only_perturb_em_within_tolerance` test).
    pub refit_max_iters: usize,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        Self { curation: CurationConfig::default(), refit_max_iters: 20 }
    }
}

/// Per-batch telemetry, computed over the batch's own rows. The serving
/// layer's quality guards consume these.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchStats {
    /// Zero-based index of the ingested batch.
    pub batch_index: usize,
    /// Rows in this batch.
    pub rows: usize,
    /// Pool rows accumulated after the batch.
    pub total_rows: usize,
    /// Fraction of batch rows covered by at least one LF.
    pub coverage: f64,
    /// Fraction of abstain votes over the batch's label-matrix cells.
    pub abstain_rate: f64,
    /// Mean binary entropy of the batch rows' posteriors.
    pub mean_entropy: f64,
    /// EM iterations the refit ran.
    pub em_iterations: usize,
}

/// Guard inputs computed for a *candidate* batch without mutating any
/// state: votes from the mined LFs only (the propagation column is
/// unknown until ingest) and posterior entropy under the current model.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchPreview {
    /// Fraction of batch rows covered by at least one mined LF.
    pub coverage: f64,
    /// Fraction of abstain votes over the batch's base-LF cells.
    pub abstain_rate: f64,
    /// Mean posterior entropy under the current model; `None` before the
    /// first fit.
    pub mean_entropy: Option<f64>,
}

/// The arrival-dependent state of an [`IncrementalCurator`] — everything
/// a checkpoint must persist to resume bit-identically. Serialized by
/// `cm-serve`'s snapshot module (the `checkpoint-drift` lint confines
/// field access to that module and to this crate).
#[derive(Debug, Clone)]
pub struct IncrementalState {
    /// Batches ingested so far.
    pub n_batches: usize,
    /// The accumulated pool: featurized arrival rows in ingest order.
    pub pool: ModalityDataset,
    /// Accumulated base-LF votes, row-major `pool.len() x n_base_lfs`.
    /// Optional: when the length disagrees with the pool (legacy
    /// checkpoints serialize no votes), [`IncrementalCurator::restore`]
    /// recomputes them by re-applying the mined LFs.
    pub votes: Vec<i8>,
    /// EM parameters of the current model, if any batch has been fitted.
    pub em_warm: Option<WarmStart>,
    /// Iterations the last refit ran (restored for reporting parity).
    pub em_iterations: usize,
    /// Online propagation-graph routing state, when propagation is on.
    pub graph: Option<OnlineGraphState>,
}

/// Everything an [`IncrementalCurator`] accreted since its last durable
/// point: the payload of one checkpoint delta record, O(batch) where the
/// full [`IncrementalState`] is O(pool). The EM parameters ride whole in
/// every delta — they are a handful of floats and change entirely on each
/// refit, so there is nothing incremental about them.
#[derive(Debug, Clone)]
pub struct IncrementalDelta {
    /// Batches ingested after this delta (absolute, for replay checks).
    pub n_batches: usize,
    /// Pool rows appended since the last durable point.
    pub new_rows: ModalityDataset,
    /// Base-LF votes for the appended rows, row-major.
    pub new_votes: Vec<i8>,
    /// Full EM parameters after the latest refit.
    pub em_warm: Option<WarmStart>,
    /// Iterations the latest refit ran.
    pub em_iterations: usize,
    /// Growth of the online propagation graph, when propagation is on.
    pub graph: Option<OnlineGraphDelta>,
}

impl IncrementalState {
    /// Applies one exported delta in place: pure appends plus the EM
    /// parameter swap. Replaying a base state through every delta in
    /// export order reproduces [`IncrementalCurator::export_state`]'s
    /// output at the same point, bit-identically.
    ///
    /// # Panics
    /// Panics if the delta's propagation-graph presence disagrees with
    /// this state's, or the graph delta misaligns (see
    /// [`OnlineGraphState::apply_delta`]).
    pub fn apply_delta(&mut self, delta: &IncrementalDelta) {
        self.n_batches = delta.n_batches;
        self.pool.table.extend_from(&delta.new_rows.table);
        self.pool.labels.extend_from_slice(&delta.new_rows.labels);
        self.pool.borderline.extend_from_slice(&delta.new_rows.borderline);
        self.votes.extend_from_slice(&delta.new_votes);
        self.em_warm = delta.em_warm.clone();
        self.em_iterations = delta.em_iterations;
        assert_eq!(
            self.graph.is_some(),
            delta.graph.is_some(),
            "delta graph presence disagrees with the base state"
        );
        if let (Some(g), Some(d)) = (&mut self.graph, &delta.graph) {
            g.apply_delta(d);
        }
    }
}

struct PropScaffold {
    /// Fitted similarity config over the propagation columns.
    sim: SimilarityConfig,
    /// `[seeds | dev]` rows followed by every ingested pool row — the
    /// vertex table the online graph indexes into.
    combined: FeatureTable,
    /// Seed vertices `(vertex, label)` for propagation.
    seeds: Vec<(usize, f64)>,
    /// Dev-slice ground truth for threshold tuning.
    dev_labels: Vec<Label>,
    seed_len: usize,
    online: OnlineGraph,
    prop_cfg: PropagationConfig,
}

/// The incremental curation state machine. See the module docs for the
/// serving contract.
pub struct IncrementalCurator {
    config: IncrementalConfig,
    lfs: Vec<Box<dyn LabelingFunction>>,
    lf_names: Vec<String>,
    prior: f64,
    prop: Option<PropScaffold>,
    pool: ModalityDataset,
    /// Base-LF votes over the pool, row-major `n_rows x n_base_lfs`.
    base_votes: Vec<i8>,
    warm: Option<WarmStart>,
    em_iterations: usize,
    posteriors: Vec<f64>,
    covered: Vec<bool>,
    n_batches: usize,
    /// Pool rows already covered by the last durable export (state or
    /// delta); the vote mark is `mark_rows * lfs.len()` by construction.
    mark_rows: usize,
}

impl IncrementalCurator {
    /// Sets up the curator's clean-path scaffolding: mines LFs on the
    /// labeled text corpus and, when propagation is enabled, derives the
    /// seed/dev split, fits similarity scales on the labeled rows, and
    /// inserts them into the online graph.
    pub fn new(world: &World, text: &ModalityDataset, config: IncrementalConfig) -> Self {
        let columns = lf_columns(world.schema(), &config.curation);
        let mined = mine_lfs(
            &text.table,
            &text.labels,
            &columns,
            &config.curation.mining,
            config.curation.max_positive_lfs,
            config.curation.max_negative_lfs,
        );
        let lfs = mined.lfs;
        let mut lf_names: Vec<String> = lfs.iter().map(|l| l.name().to_owned()).collect();
        let prior = text.positive_rate().clamp(1e-4, 0.5);

        let prop = config
            .curation
            .use_label_propagation
            .then(|| {
                let (dev_idx, seed_idx) = prop_split(&text.labels, &config.curation);
                let mut combined = text.table.gather(&seed_idx);
                combined.extend_from(&text.table.gather(&dev_idx));
                let sim = SimilarityConfig::uniform(sim_columns(world.schema(), &config.curation))
                    .fit_scales(&combined);
                let seeds: Vec<(usize, f64)> = seed_idx
                    .iter()
                    .enumerate()
                    .map(|(v, &r)| (v, text.labels[r].as_f64()))
                    .collect();
                let dev_labels: Vec<Label> = dev_idx.iter().map(|&r| text.labels[r]).collect();
                let mut online = OnlineGraph::new(config.curation.prop_k);
                online.insert_rows(&FrozenTable::freeze(&combined), &sim);
                let prop_cfg = PropagationConfig { max_iters: 50, tol: 1e-4, prior };
                PropScaffold {
                    sim,
                    combined,
                    seeds,
                    dev_labels,
                    seed_len: seed_idx.len(),
                    online,
                    prop_cfg,
                }
            })
            // An empty seed set can't propagate; fall back to base LFs only.
            .filter(|p| p.seed_len > 0);
        if prop.is_some() {
            lf_names.push("label_propagation".to_owned());
        }

        let pool = ModalityDataset {
            modality: cm_featurespace::ModalityKind::Image,
            table: FeatureTable::new(world.schema().clone()),
            labels: Vec::new(),
            borderline: Vec::new(),
        };
        IncrementalCurator {
            config,
            lfs,
            lf_names,
            prior,
            prop,
            pool,
            base_votes: Vec::new(),
            warm: None,
            em_iterations: 0,
            posteriors: Vec::new(),
            covered: Vec::new(),
            n_batches: 0,
            mark_rows: 0,
        }
    }

    /// Batches ingested so far.
    pub fn n_batches(&self) -> usize {
        self.n_batches
    }

    /// Pool rows accumulated so far.
    pub fn n_rows(&self) -> usize {
        self.pool.len()
    }

    /// The accumulated pool dataset.
    pub fn pool(&self) -> &ModalityDataset {
        &self.pool
    }

    /// LF names, one per label-matrix column (propagation last, if on).
    pub fn lf_names(&self) -> &[String] {
        &self.lf_names
    }

    /// Current posteriors over the accumulated pool.
    pub fn posteriors(&self) -> &[f64] {
        &self.posteriors
    }

    /// Whether each accumulated pool row is covered by at least one LF.
    pub fn covered(&self) -> &[bool] {
        &self.covered
    }

    /// Class prior (clamped text positive rate) pinned in every fit.
    pub fn prior(&self) -> f64 {
        self.prior
    }

    /// Guard inputs for a candidate batch, without mutating any state.
    pub fn preview_batch(&self, batch: &ModalityDataset, par: &ParConfig) -> BatchPreview {
        let matrix = LabelMatrix::apply_with(&batch.table, &self.lfs, par);
        let n = matrix.n_rows();
        let n_lfs = matrix.n_lfs();
        let covered = (0..n).filter(|&r| matrix.row(r).iter().any(|&v| v != 0)).count();
        let abstains: usize =
            (0..n).map(|r| matrix.row(r).iter().filter(|&&v| v == 0).count()).sum();
        let mean_entropy = self.warm.as_ref().map(|_| {
            // Preview under the current model with the propagation column
            // abstaining (its votes are unknown until ingest).
            let model = self.current_model();
            let mut votes = Vec::with_capacity(n * self.lf_names.len());
            for r in 0..n {
                votes.extend_from_slice(matrix.row(r));
                if self.prop.is_some() {
                    votes.push(0);
                }
            }
            let full =
                LabelMatrix::from_votes(n, self.lf_names.len(), votes, self.lf_names.clone());
            mean_entropy(&model.predict_with(&full, par))
        });
        BatchPreview {
            coverage: covered as f64 / n.max(1) as f64,
            abstain_rate: abstains as f64 / (n * n_lfs).max(1) as f64,
            mean_entropy,
        }
    }

    /// Ingests one arrival batch: appends its rows and votes, grows the
    /// propagation graph, refits the label model (warm-started after the
    /// first batch), and refreshes the pool posteriors.
    ///
    /// # Panics
    /// Panics if the batch's schema disagrees with the world's.
    pub fn ingest_batch(&mut self, batch: &ModalityDataset, par: &ParConfig) -> BatchStats {
        let batch_rows = batch.len();
        self.pool.table.extend_from(&batch.table);
        self.pool.labels.extend_from_slice(&batch.labels);
        self.pool.borderline.extend_from_slice(&batch.borderline);
        let batch_matrix = LabelMatrix::apply_with(&batch.table, &self.lfs, par);
        for r in 0..batch_rows {
            self.base_votes.extend_from_slice(batch_matrix.row(r));
        }
        if let Some(p) = &mut self.prop {
            p.combined.extend_from(&batch.table);
            p.online.insert_rows(&FrozenTable::freeze(&p.combined), &p.sim);
        }

        let matrix = self.assemble_matrix(par);
        let gen_cfg = GenerativeConfig {
            class_prior: Some(self.prior),
            max_iters: if self.warm.is_some() {
                self.config.refit_max_iters
            } else {
                self.config.curation.generative.max_iters
            },
            ..self.config.curation.generative.clone()
        };
        let model =
            GenerativeModel::fit_segments_warm(&[&matrix], &gen_cfg, self.warm.as_ref(), par);
        self.warm = Some(model.warm_start());
        self.em_iterations = model.iterations();
        self.refresh_outputs(&model, &matrix, par);
        self.n_batches += 1;

        let n = self.pool.len();
        let start = n - batch_rows;
        let covered_in_batch = self.covered[start..].iter().filter(|&&c| c).count();
        let abstains: usize =
            (start..n).map(|r| matrix.row(r).iter().filter(|&&v| v == 0).count()).sum();
        BatchStats {
            batch_index: self.n_batches - 1,
            rows: batch_rows,
            total_rows: n,
            coverage: covered_in_batch as f64 / batch_rows.max(1) as f64,
            abstain_rate: abstains as f64 / (batch_rows * matrix.n_lfs()).max(1) as f64,
            mean_entropy: mean_entropy(&self.posteriors[start..]),
            em_iterations: self.em_iterations,
        }
    }

    /// Exports the arrival-dependent state for checkpointing and declares
    /// it durable: the next [`IncrementalCurator::export_delta`] reports
    /// only growth after this call. O(pool) — the delta-log base record.
    pub fn export_state(&mut self) -> IncrementalState {
        self.mark_rows = self.pool.len();
        IncrementalState {
            n_batches: self.n_batches,
            pool: self.pool.clone(),
            votes: self.base_votes.clone(),
            em_warm: self.warm.clone(),
            em_iterations: self.em_iterations,
            graph: self.prop.as_mut().map(|p| {
                p.online.mark_durable();
                p.online.snapshot()
            }),
        }
    }

    /// Exports everything ingested since the last durable point — cost
    /// proportional to the new batches, not the accumulated pool — and
    /// advances the durable mark. The delta-log append record.
    pub fn export_delta(&mut self) -> IncrementalDelta {
        let idx: Vec<usize> = (self.mark_rows..self.pool.len()).collect();
        let new_rows = self.pool.gather(&idx);
        let new_votes = self.base_votes[self.mark_rows * self.lfs.len()..].to_vec();
        self.mark_rows = self.pool.len();
        IncrementalDelta {
            n_batches: self.n_batches,
            new_rows,
            new_votes,
            em_warm: self.warm.clone(),
            em_iterations: self.em_iterations,
            graph: self.prop.as_mut().map(|p| p.online.export_delta()),
        }
    }

    /// Rebuilds a curator from a checkpointed state. `world`, `text`, and
    /// `config` must match the original run's; the clean-path scaffolding
    /// is re-derived from them and the arrival-dependent state is
    /// restored, after which behavior is bit-identical to the exporting
    /// curator's.
    ///
    /// # Panics
    /// Panics if the state disagrees with the configuration (a graph
    /// snapshot with propagation disabled, or vice versa).
    pub fn restore(
        world: &World,
        text: &ModalityDataset,
        config: IncrementalConfig,
        state: IncrementalState,
        par: &ParConfig,
    ) -> Self {
        let mut c = Self::new(world, text, config);
        assert_eq!(
            c.prop.is_some(),
            state.graph.is_some(),
            "checkpointed graph state disagrees with the propagation setting"
        );
        // Checkpointed votes are used verbatim when they align with the
        // pool; legacy checkpoints carry none and get them recomputed by
        // re-applying the mined LFs (deterministic, so both paths agree).
        let base_votes = if state.votes.len() == state.pool.len() * c.lfs.len() {
            state.votes
        } else {
            let pool_matrix = LabelMatrix::apply_with(&state.pool.table, &c.lfs, par);
            let mut votes = Vec::with_capacity(state.pool.len() * pool_matrix.n_lfs());
            for r in 0..state.pool.len() {
                votes.extend_from_slice(pool_matrix.row(r));
            }
            votes
        };
        c.pool = state.pool;
        c.base_votes = base_votes;
        c.n_batches = state.n_batches;
        c.mark_rows = c.pool.len();
        c.warm = state.em_warm;
        c.em_iterations = state.em_iterations;
        if let (Some(p), Some(g)) = (&mut c.prop, state.graph) {
            p.combined.extend_from(&c.pool.table);
            p.online = OnlineGraph::from_snapshot(c.config.curation.prop_k, g);
        }
        if c.warm.is_some() {
            let matrix = c.assemble_matrix(par);
            let model = c.current_model();
            c.refresh_outputs(&model, &matrix, par);
        }
        c
    }

    /// The model implied by the current warm-start parameters.
    ///
    /// # Panics
    /// Panics before the first fit.
    fn current_model(&self) -> GenerativeModel {
        // lint: allow(expect) — documented panic: callers gate on `warm.is_some()`
        let warm = self.warm.as_ref().expect("no model fitted yet");
        GenerativeModel::from_params(warm.accuracies.clone(), warm.class_prior, self.em_iterations)
    }

    /// The full pool label matrix: accumulated base votes plus, when
    /// propagation is on, a freshly propagated-and-tuned column (all
    /// abstain when tuning clears no threshold).
    fn assemble_matrix(&self, par: &ParConfig) -> LabelMatrix {
        let n = self.pool.len();
        let n_base = self.lfs.len();
        let Some(p) = &self.prop else {
            return LabelMatrix::from_votes(
                n,
                n_base,
                self.base_votes.clone(),
                self.lf_names.clone(),
            );
        };
        let scores = propagate(&p.online.graph(), &p.seeds, &p.prop_cfg);
        let artifacts = prop_artifacts_from_scores(
            &scores,
            p.seed_len,
            p.dev_labels.clone(),
            &self.config.curation,
        );
        let _ = par;
        let mut votes = Vec::with_capacity(n * (n_base + 1));
        for r in 0..n {
            votes.extend_from_slice(&self.base_votes[r * n_base..(r + 1) * n_base]);
            votes.push(match &artifacts {
                Some(a) => a.pool_lf.vote_row(r).as_i8(),
                None => 0,
            });
        }
        LabelMatrix::from_votes(n, n_base + 1, votes, self.lf_names.clone())
    }

    fn refresh_outputs(&mut self, model: &GenerativeModel, matrix: &LabelMatrix, par: &ParConfig) {
        self.posteriors = model.predict_with(matrix, par);
        self.covered =
            (0..matrix.n_rows()).map(|r| matrix.row(r).iter().any(|&v| v != 0)).collect();
    }
}

/// Mean binary entropy (nats) of a posterior slice; `0.0` when empty.
pub fn mean_entropy(posteriors: &[f64]) -> f64 {
    if posteriors.is_empty() {
        return 0.0;
    }
    let sum: f64 = posteriors
        .iter()
        .map(|&q| {
            let q = q.clamp(1e-12, 1.0 - 1e-12);
            -(q * q.ln() + (1.0 - q) * (1.0 - q).ln())
        })
        .sum();
    sum / posteriors.len() as f64
}

#[cfg(test)]
mod tests {
    use cm_orgsim::{TaskConfig, TaskId, WorldConfig};

    use super::*;

    fn fixture() -> (World, ModalityDataset, ModalityDataset) {
        let task = TaskConfig::paper(TaskId::Ct2).scaled(0.02);
        let seed = 5u64;
        let world = World::build(WorldConfig::new(task.clone(), seed));
        let ds = seed ^ 0xD1CE;
        let text =
            world.generate(cm_featurespace::ModalityKind::Text, task.n_text_labeled, ds ^ 0x1);
        let pool =
            world.generate(cm_featurespace::ModalityKind::Image, task.n_image_unlabeled, ds ^ 0x2);
        (world, text, pool)
    }

    fn fast_config() -> IncrementalConfig {
        IncrementalConfig {
            curation: CurationConfig {
                prop_max_seeds: 400,
                mining: cm_mining::MiningConfig { min_recall: 0.05, ..Default::default() },
                ..Default::default()
            },
            refit_max_iters: 20,
        }
    }

    fn batches(pool: &ModalityDataset, size: usize) -> Vec<ModalityDataset> {
        let mut out = Vec::new();
        let mut start = 0;
        while start < pool.len() {
            let end = (start + size).min(pool.len());
            let idx: Vec<usize> = (start..end).collect();
            out.push(pool.gather(&idx));
            start = end;
        }
        out
    }

    #[test]
    fn incremental_ingest_produces_useful_labels() {
        let (world, text, pool) = fixture();
        let mut cur = IncrementalCurator::new(&world, &text, fast_config());
        let par = ParConfig::threads(2);
        for b in batches(&pool, 60) {
            let stats = cur.ingest_batch(&b, &par);
            assert_eq!(stats.total_rows, cur.n_rows());
            assert!(stats.coverage >= 0.0 && stats.coverage <= 1.0);
        }
        assert_eq!(cur.n_rows(), pool.len());
        assert_eq!(cur.posteriors().len(), pool.len());
        // Posterior quality against hidden ground truth, as in the batch
        // pipeline's diagnostics.
        let mut tp = 0usize;
        let mut fp = 0usize;
        for ((&q, &cov), label) in cur.posteriors().iter().zip(cur.covered()).zip(&pool.labels) {
            if cov && q >= 0.5 {
                if label.is_positive() {
                    tp += 1;
                } else {
                    fp += 1;
                }
            }
        }
        let precision = tp as f64 / (tp + fp).max(1) as f64;
        assert!(precision > 0.5, "precision {precision} (tp {tp}, fp {fp})");
    }

    #[test]
    fn batch_cuts_only_perturb_em_within_tolerance() {
        let (world, text, pool) = fixture();
        let par = ParConfig::threads(2);
        let mut one = IncrementalCurator::new(&world, &text, fast_config());
        let idx: Vec<usize> = (0..pool.len()).collect();
        one.ingest_batch(&pool.gather(&idx), &par);
        let mut many = IncrementalCurator::new(&world, &text, fast_config());
        for b in batches(&pool, 60) {
            many.ingest_batch(&b, &par);
        }
        // The graph is cut-invariant, so coverage is exact; only the EM
        // warm-start chain may drift, and it must stay small.
        assert_eq!(one.covered(), many.covered());
        let max_dq = one
            .posteriors()
            .iter()
            .zip(many.posteriors())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max_dq < 0.05, "posterior drift {max_dq}");
    }

    #[test]
    fn export_restore_resumes_bit_identically() {
        let (world, text, pool) = fixture();
        let par = ParConfig::threads(2);
        let all = batches(&pool, 60);
        let mut whole = IncrementalCurator::new(&world, &text, fast_config());
        for b in &all {
            whole.ingest_batch(b, &par);
        }
        let mut first = IncrementalCurator::new(&world, &text, fast_config());
        for b in &all[..2] {
            first.ingest_batch(b, &par);
        }
        let state = first.export_state();
        let mut resumed = IncrementalCurator::restore(&world, &text, fast_config(), state, &par);
        assert_eq!(resumed.posteriors(), first.posteriors());
        let mut stats_resumed = Vec::new();
        let mut stats_first = Vec::new();
        for b in &all[2..] {
            stats_resumed.push(resumed.ingest_batch(b, &par));
            stats_first.push(first.ingest_batch(b, &par));
        }
        assert_eq!(stats_resumed, stats_first);
        assert_eq!(resumed.posteriors(), whole.posteriors());
        assert_eq!(resumed.covered(), whole.covered());
    }

    #[test]
    fn delta_replay_restores_bit_identically() {
        let (world, text, pool) = fixture();
        let par = ParConfig::threads(2);
        let all = batches(&pool, 60);
        // Live run: base export after batch 0, one delta per later batch.
        let mut live = IncrementalCurator::new(&world, &text, fast_config());
        live.ingest_batch(&all[0], &par);
        let mut replayed = live.export_state();
        let mut deltas = Vec::new();
        for b in &all[1..] {
            live.ingest_batch(b, &par);
            deltas.push(live.export_delta());
        }
        for d in &deltas {
            replayed.apply_delta(d);
        }
        // The replayed state matches a fresh O(pool) export field-by-field
        // (the pool table has no equality; its votes and labels pin it).
        let full = live.export_state();
        assert_eq!(replayed.n_batches, full.n_batches);
        assert_eq!(replayed.votes, full.votes);
        assert_eq!(replayed.em_warm, full.em_warm);
        assert_eq!(replayed.em_iterations, full.em_iterations);
        assert_eq!(replayed.graph, full.graph);
        assert_eq!(replayed.pool.labels, full.pool.labels);
        assert_eq!(replayed.pool.borderline, full.pool.borderline);
        // A curator restored from the replayed state behaves identically.
        let resumed = IncrementalCurator::restore(&world, &text, fast_config(), replayed, &par);
        assert_eq!(resumed.posteriors(), live.posteriors());
        assert_eq!(resumed.covered(), live.covered());
    }

    #[test]
    fn export_delta_after_export_state_is_empty() {
        let (world, text, pool) = fixture();
        let par = ParConfig::threads(1);
        let all = batches(&pool, 60);
        let mut cur = IncrementalCurator::new(&world, &text, fast_config());
        cur.ingest_batch(&all[0], &par);
        let _ = cur.export_state();
        let idle = cur.export_delta();
        assert_eq!(idle.new_rows.len(), 0);
        assert!(idle.new_votes.is_empty());
        assert_eq!(idle.n_batches, 1);
        if let Some(g) = &idle.graph {
            assert!(g.new_edges.is_empty() && g.new_anchors.is_empty());
        }
    }

    #[test]
    fn restore_prefers_checkpointed_votes_but_matches_recomputation() {
        let (world, text, pool) = fixture();
        let par = ParConfig::threads(1);
        let all = batches(&pool, 60);
        let mut cur = IncrementalCurator::new(&world, &text, fast_config());
        cur.ingest_batch(&all[0], &par);
        cur.ingest_batch(&all[1], &par);
        let with_votes = cur.export_state();
        let mut legacy = with_votes.clone();
        legacy.votes = Vec::new(); // what a pre-delta-log checkpoint carries
        let a = IncrementalCurator::restore(&world, &text, fast_config(), with_votes, &par);
        let b = IncrementalCurator::restore(&world, &text, fast_config(), legacy, &par);
        assert_eq!(a.base_votes, b.base_votes);
        assert_eq!(a.posteriors(), b.posteriors());
    }

    #[test]
    fn preview_does_not_mutate_state() {
        let (world, text, pool) = fixture();
        let par = ParConfig::threads(1);
        let mut cur = IncrementalCurator::new(&world, &text, fast_config());
        let all = batches(&pool, 60);
        cur.ingest_batch(&all[0], &par);
        let before = cur.posteriors().to_vec();
        let preview = cur.preview_batch(&all[1], &par);
        assert!(preview.mean_entropy.is_some());
        assert_eq!(cur.posteriors(), &before[..]);
        assert_eq!(cur.n_batches(), 1);
        let stats = cur.ingest_batch(&all[1], &par);
        // Preview coverage is computed on the same base votes.
        assert!((preview.coverage - stats.coverage).abs() < 0.35);
    }

    #[test]
    fn warm_refits_run_fewer_iterations() {
        let (world, text, pool) = fixture();
        let par = ParConfig::threads(1);
        let cfg = fast_config();
        let full_iters = cfg.curation.generative.max_iters;
        let mut cur = IncrementalCurator::new(&world, &text, cfg);
        let all = batches(&pool, 60);
        let first = cur.ingest_batch(&all[0], &par);
        assert!(first.em_iterations <= full_iters);
        for b in &all[1..] {
            let stats = cur.ingest_batch(b, &par);
            assert!(stats.em_iterations <= 20, "refit ran {} iterations", stats.em_iterations);
        }
    }
}
