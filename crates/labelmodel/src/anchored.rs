//! Dev-set-anchored label model.
//!
//! The paper's central trick (§4.2) is that the labeled old-modality corpus
//! serves as a development set for LFs that transfer to the new modality
//! through the common feature space. This model exploits that directly:
//! each LF's *class-conditional vote rates* — `P(vote | y)` for votes in
//! `{+1, -1, 0}` — are estimated on the labeled dev matrix with Laplace
//! smoothing, and posteriors on the unlabeled target matrix follow from
//! Bayes' rule under conditional independence.
//!
//! Compared to the EM-fitted [`crate::GenerativeModel`], anchoring is the
//! right tool under heavy class imbalance: EM with a small fixed prior
//! collapses precision-oriented LF accuracies toward the better-than-random
//! floor (a positive vote can then never overcome the prior), whereas
//! dev-measured rates keep the full likelihood ratio.

use cm_featurespace::Label;

use crate::matrix::LabelMatrix;

/// Class-conditional vote rates of one LF.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LfRates {
    /// `P(vote = +1 | y = 1)`.
    pub pos_given_pos: f64,
    /// `P(vote = -1 | y = 1)`.
    pub neg_given_pos: f64,
    /// `P(vote = +1 | y = 0)`.
    pub pos_given_neg: f64,
    /// `P(vote = -1 | y = 0)`.
    pub neg_given_neg: f64,
}

impl LfRates {
    /// Estimates rates from one LF's votes against ground truth, with
    /// Laplace smoothing. Used when an LF's dev evidence lives on a
    /// different slice than the rest (e.g. the label-propagation LF, whose
    /// scores exist only for the held-out tuning slice).
    ///
    /// # Panics
    /// Panics on size mismatch or a single-class label set.
    pub fn estimate(votes: &[i8], labels: &[Label]) -> Self {
        assert_eq!(votes.len(), labels.len(), "vote/label count mismatch");
        let n_pos = labels.iter().filter(|l| l.is_positive()).count();
        let n_neg = labels.len() - n_pos;
        assert!(n_pos > 0 && n_neg > 0, "dev set must contain both classes");
        let mut counts = [[0usize; 2]; 2];
        for (&v, label) in votes.iter().zip(labels) {
            if v == 0 {
                continue;
            }
            counts[usize::from(label.is_positive())][usize::from(v > 0)] += 1;
        }
        let smooth = |c: usize, n: usize| (c as f64 + 0.5) / (n as f64 + 1.5);
        Self {
            pos_given_pos: smooth(counts[1][1], n_pos),
            neg_given_pos: smooth(counts[1][0], n_pos),
            pos_given_neg: smooth(counts[0][1], n_neg),
            neg_given_neg: smooth(counts[0][0], n_neg),
        }
    }

    /// `P(vote | y)` for an encoded vote.
    fn likelihood(&self, vote: i8, positive: bool) -> f64 {
        let (p, n) = if positive {
            (self.pos_given_pos, self.neg_given_pos)
        } else {
            (self.pos_given_neg, self.neg_given_neg)
        };
        match vote {
            1 => p,
            -1 => n,
            _ => (1.0 - p - n).max(1e-9),
        }
    }
}

/// Mergeable integer sufficient statistic behind [`AnchoredModel::fit`]:
/// per-LF vote counts by dev class and vote sign, plus the class totals.
///
/// All fields are exact integer counts, so merging per-segment
/// accumulators in any order and then rendering rates is bit-identical to
/// fitting on the whole dev matrix at once — the contract the sharded
/// curation layer depends on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RateCounts {
    n_lfs: usize,
    n_pos: usize,
    n_neg: usize,
    /// Per LF: `counts[lf][class][vote sign]` non-abstain vote tallies.
    counts: Vec<[[usize; 2]; 2]>,
}

impl RateCounts {
    /// An empty accumulator for `n_lfs` labeling functions.
    pub fn new(n_lfs: usize) -> Self {
        Self { n_lfs, n_pos: 0, n_neg: 0, counts: vec![[[0; 2]; 2]; n_lfs] }
    }

    /// Folds one dev segment (votes plus ground truth) into the counts.
    ///
    /// # Panics
    /// Panics on row-count or LF-count mismatch.
    pub fn observe(&mut self, dev: &LabelMatrix, labels: &[Label]) {
        assert_eq!(dev.n_rows(), labels.len(), "dev label count mismatch");
        assert_eq!(dev.n_lfs(), self.n_lfs, "LF count mismatch");
        for (r, label) in labels.iter().enumerate() {
            let cls = usize::from(label.is_positive());
            self.n_pos += cls;
            self.n_neg += 1 - cls;
            for (j, &v) in dev.row(r).iter().enumerate() {
                if v != 0 {
                    self.counts[j][cls][usize::from(v > 0)] += 1;
                }
            }
        }
    }

    /// Exact integer merge; associative and commutative.
    ///
    /// # Panics
    /// Panics on LF-count mismatch.
    pub fn merge(&mut self, other: &RateCounts) {
        assert_eq!(self.n_lfs, other.n_lfs, "LF count mismatch");
        self.n_pos += other.n_pos;
        self.n_neg += other.n_neg;
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            for cls in 0..2 {
                for sign in 0..2 {
                    a[cls][sign] += b[cls][sign];
                }
            }
        }
    }

    /// Total dev rows observed.
    pub fn n_rows(&self) -> usize {
        self.n_pos + self.n_neg
    }

    /// Renders the counts to a fitted model (Laplace smoothing, dev prior
    /// unless overridden) — the single place rates become floats.
    ///
    /// # Panics
    /// Panics if either class is absent from the observed dev rows.
    pub fn into_model(self, class_prior: Option<f64>) -> AnchoredModel {
        assert!(self.n_pos > 0 && self.n_neg > 0, "dev set must contain both classes");
        let smooth = |c: usize, n: usize| (c as f64 + 0.5) / (n as f64 + 1.5);
        let rates = self
            .counts
            .iter()
            .map(|c| LfRates {
                pos_given_pos: smooth(c[1][1], self.n_pos),
                neg_given_pos: smooth(c[1][0], self.n_pos),
                pos_given_neg: smooth(c[0][1], self.n_neg),
                neg_given_neg: smooth(c[0][0], self.n_neg),
            })
            .collect();
        let prior =
            class_prior.unwrap_or(self.n_pos as f64 / self.n_rows() as f64).clamp(1e-4, 1.0 - 1e-4);
        AnchoredModel { rates, class_prior: prior }
    }
}

/// A label model anchored on a labeled development matrix.
///
/// ```
/// use cm_featurespace::Label;
/// use cm_labelmodel::{AnchoredModel, LabelMatrix};
/// // One LF that fires on 3 of 4 dev positives and 1 of 12 dev negatives.
/// let votes = vec![1, 1, 1, 0,  1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
/// let dev = LabelMatrix::from_votes(16, 1, votes, vec!["lf".into()]);
/// let labels: Vec<Label> = (0..16)
///     .map(|i| if i < 4 { Label::Positive } else { Label::Negative })
///     .collect();
/// let model = AnchoredModel::fit(&dev, &labels, None);
/// // On a new point the LF fires on, the posterior beats the 25% prior.
/// let target = LabelMatrix::from_votes(1, 1, vec![1], vec!["lf".into()]);
/// assert!(model.predict(&target)[0] > 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct AnchoredModel {
    rates: Vec<LfRates>,
    class_prior: f64,
}

impl AnchoredModel {
    /// Estimates vote rates from a dev label matrix and its ground truth.
    /// `class_prior` overrides the dev positive rate when given (e.g. when
    /// the target modality's prior is known to differ).
    ///
    /// # Panics
    /// Panics on size mismatch or an empty/single-class dev set.
    pub fn fit(dev: &LabelMatrix, labels: &[Label], class_prior: Option<f64>) -> Self {
        // The resident fit is the single-segment case of the mergeable
        // [`RateCounts`] path, so sharded fits agree with it by construction.
        let mut counts = RateCounts::new(dev.n_lfs());
        counts.observe(dev, labels);
        counts.into_model(class_prior)
    }

    /// Builds a model from externally estimated rates.
    ///
    /// # Panics
    /// Panics if `class_prior` is outside `(0, 1)`.
    pub fn from_rates(rates: Vec<LfRates>, class_prior: f64) -> Self {
        assert!(class_prior > 0.0 && class_prior < 1.0, "invalid class prior");
        Self { rates, class_prior }
    }

    /// The per-LF rates.
    pub fn rates(&self) -> &[LfRates] {
        &self.rates
    }

    /// The class prior in use.
    pub fn class_prior(&self) -> f64 {
        self.class_prior
    }

    /// Probabilistic labels for a target matrix. Abstains carry their own
    /// (class-conditional) evidence; rows where every LF abstains still move
    /// off the prior only as far as the abstain rates warrant.
    ///
    /// # Panics
    /// Panics if the LF count differs from the dev matrix.
    pub fn predict(&self, matrix: &LabelMatrix) -> Vec<f64> {
        assert_eq!(matrix.n_lfs(), self.rates.len(), "LF count mismatch");
        (0..matrix.n_rows())
            .map(|r| {
                let mut log_pos = self.class_prior.ln();
                let mut log_neg = (1.0 - self.class_prior).ln();
                for (&v, rates) in matrix.row(r).iter().zip(&self.rates) {
                    log_pos += rates.likelihood(v, true).ln();
                    log_neg += rates.likelihood(v, false).ln();
                }
                let m = log_pos.max(log_neg);
                let p = (log_pos - m).exp();
                let n = (log_neg - m).exp();
                p / (p + n)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dev matrix: LF0 fires + on 80% of positives and 2% of negatives;
    /// LF1 fires - on 60% of negatives and 5% of positives.
    fn dev_fixture(n_pos: usize, n_neg: usize) -> (LabelMatrix, Vec<Label>) {
        let mut votes = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_pos {
            votes.push(if i % 10 < 8 { 1 } else { 0 });
            votes.push(if i % 20 == 0 { -1 } else { 0 });
            labels.push(Label::Positive);
        }
        for i in 0..n_neg {
            votes.push(if i % 50 == 0 { 1 } else { 0 });
            votes.push(if i % 10 < 6 { -1 } else { 0 });
            labels.push(Label::Negative);
        }
        (LabelMatrix::from_votes(n_pos + n_neg, 2, votes, vec!["p".into(), "n".into()]), labels)
    }

    #[test]
    fn rates_match_dev_frequencies() {
        let (m, labels) = dev_fixture(100, 900);
        let model = AnchoredModel::fit(&m, &labels, None);
        let r = &model.rates()[0];
        assert!((r.pos_given_pos - 0.8).abs() < 0.02, "{r:?}");
        assert!((r.pos_given_neg - 0.02).abs() < 0.01, "{r:?}");
        assert!((model.class_prior() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn positive_vote_overcomes_small_prior() {
        // The failure mode that motivates anchoring: with a 4% prior, a
        // high-precision LF firing must push the posterior above 0.5.
        let (m, labels) = dev_fixture(200, 4800);
        let model = AnchoredModel::fit(&m, &labels, None);
        let target =
            LabelMatrix::from_votes(3, 2, vec![1, 0, 0, -1, 0, 0], vec!["p".into(), "n".into()]);
        let probs = model.predict(&target);
        assert!(probs[0] > 0.5, "positive vote posterior {}", probs[0]);
        assert!(probs[1] < model.class_prior(), "negative vote must lower the prior");
        // All-abstain row stays near the prior (abstain carries weak
        // evidence, so "near", not "equal").
        assert!((probs[2] - model.class_prior()).abs() < 0.05);
    }

    #[test]
    fn agreeing_lfs_compound() {
        let (m, labels) = dev_fixture(100, 900);
        let model = AnchoredModel::fit(&m, &labels, None);
        let target = LabelMatrix::from_votes(2, 2, vec![1, 0, 1, -1], vec!["p".into(), "n".into()]);
        let probs = model.predict(&target);
        // A contradicting negative vote must lower the posterior.
        assert!(probs[0] > probs[1]);
    }

    #[test]
    fn prior_override_is_used() {
        let (m, labels) = dev_fixture(100, 900);
        let model = AnchoredModel::fit(&m, &labels, Some(0.3));
        assert_eq!(model.class_prior(), 0.3);
    }

    #[test]
    fn posteriors_are_probabilities() {
        let (m, labels) = dev_fixture(100, 900);
        let model = AnchoredModel::fit(&m, &labels, None);
        for p in model.predict(&m) {
            assert!((0.0..=1.0).contains(&p) && !p.is_nan());
        }
    }

    /// Segment-wise observation plus merge must yield the exact model bits
    /// of a whole-matrix fit, for any partition of the dev rows.
    #[test]
    fn rate_counts_merge_matches_whole_fit() {
        let (m, labels) = dev_fixture(100, 900);
        let whole = AnchoredModel::fit(&m, &labels, None);
        for cuts in [vec![1usize], vec![97, 500], vec![250, 500, 750], vec![1000]] {
            let mut merged = RateCounts::new(m.n_lfs());
            let mut start = 0;
            for end in cuts.iter().copied().chain([labels.len()]) {
                let mut seg_votes = Vec::new();
                for r in start..end {
                    seg_votes.extend_from_slice(m.row(r));
                }
                let seg =
                    LabelMatrix::from_votes(end - start, m.n_lfs(), seg_votes, m.names().to_vec());
                let mut part = RateCounts::new(m.n_lfs());
                part.observe(&seg, &labels[start..end]);
                merged.merge(&part);
                start = end;
            }
            assert_eq!(merged.n_rows(), labels.len());
            let model = merged.into_model(None);
            assert_eq!(model.class_prior().to_bits(), whole.class_prior().to_bits());
            for (a, b) in model.rates().iter().zip(whole.rates()) {
                assert_eq!(a, b, "cuts = {cuts:?}");
            }
        }
    }

    #[test]
    fn rate_counts_merge_is_order_free() {
        let (m, labels) = dev_fixture(40, 160);
        let seg = |start: usize, end: usize| {
            let mut votes = Vec::new();
            for r in start..end {
                votes.extend_from_slice(m.row(r));
            }
            let part_m = LabelMatrix::from_votes(end - start, m.n_lfs(), votes, m.names().to_vec());
            let mut part = RateCounts::new(m.n_lfs());
            part.observe(&part_m, &labels[start..end]);
            part
        };
        let (a, b, c) = (seg(0, 50), seg(50, 120), seg(120, 200));
        let mut fwd = RateCounts::new(m.n_lfs());
        fwd.merge(&a);
        fwd.merge(&b);
        fwd.merge(&c);
        let mut rev = RateCounts::new(m.n_lfs());
        rev.merge(&c);
        rev.merge(&a);
        rev.merge(&b);
        assert_eq!(fwd, rev);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn rejects_single_class_dev() {
        let m = LabelMatrix::from_votes(2, 1, vec![1, 0], vec!["a".into()]);
        AnchoredModel::fit(&m, &[Label::Positive, Label::Positive], None);
    }

    #[test]
    #[should_panic(expected = "LF count mismatch")]
    fn predict_checks_width() {
        let (m, labels) = dev_fixture(50, 450);
        let model = AnchoredModel::fit(&m, &labels, None);
        let other = LabelMatrix::from_votes(1, 1, vec![1], vec!["x".into()]);
        model.predict(&other);
    }
}
