//! Workspace task runner: the two-layer static-analysis gate.
//!
//! - `cargo run -p xtask -- lint` — layer 1, source lints over library
//!   crates (see `lint.rs`).
//! - `cargo run -p xtask -- validate` — layer 2, pre-execution pipeline
//!   checks over seed artifacts (see `validate.rs` and the `cm-check`
//!   crate). `--seeded-negatives` self-tests the gate.

use std::path::PathBuf;
use std::process::ExitCode;

mod lint;
mod validate;

fn workspace_root() -> PathBuf {
    // xtask always runs via `cargo run -p xtask`, so the manifest dir is
    // `<root>/crates/xtask`.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(|p| p.parent()).map_or(manifest.clone(), PathBuf::from)
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- <lint | validate [--seeded-negatives]>");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            if args.len() > 1 {
                eprintln!("lint takes no arguments (got {:?})", &args[1..]);
                return usage();
            }
            let findings = lint::run(&workspace_root());
            for f in &findings {
                eprintln!("{f}");
            }
            if findings.is_empty() {
                eprintln!("lint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Some("validate") => {
            let mut negatives = false;
            for a in &args[1..] {
                if a == "--seeded-negatives" {
                    negatives = true;
                } else {
                    eprintln!("validate: unknown argument {a:?}");
                    return usage();
                }
            }
            if validate::run(negatives) == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
