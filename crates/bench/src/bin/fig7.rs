//! Regenerates **Figure 7**: the multi-modal training lesion study for
//! CT 1 — text-only, image-only (weakly supervised), and combined models at
//! each feature-set ladder rung {A, AB, ABC, ABCD}, relative to the
//! embedding baseline.
//!
//! Expected shape (paper): combining modalities is best at every rung, and
//! every model improves as sets accumulate.
//!
//! The 3-model x 4-rung matrix lives in `specs/fig7.json`; `CM_SCALE`,
//! `CM_SEEDS`, and `CM_JSON` still override the spec's defaults.

use cm_bench::{
    load_spec, maybe_write_json, mean, spec_reservoir, spec_scale, spec_scenario, spec_seeds,
    TaskRun,
};
use cm_json::{Json, ToJson};
use cm_pipeline::curate;

struct Rung {
    sets: String,
    text_rel: f64,
    image_rel: f64,
    combined_rel: f64,
}

impl ToJson for Rung {
    fn to_json(&self) -> Json {
        Json::obj([
            ("sets", self.sets.to_json()),
            ("text_rel", self.text_rel.to_json()),
            ("image_rel", self.image_rel.to_json()),
            ("combined_rel", self.combined_rel.to_json()),
        ])
    }
}

fn main() {
    let spec = load_spec("fig7");
    let scale = spec_scale(&spec);
    let seeds = spec_seeds(&spec);
    println!("Figure 7 (CT 1 lesion study, scale {scale}, {} seed(s))", seeds.len());
    println!("{:<10} {:>10} {:>10} {:>12}", "services", "Text (T)", "Image (I)", "Text+Image");

    let rungs = ["A", "AB", "ABC", "ABCD"];
    let mut acc: Vec<[Vec<f64>; 3]> =
        (0..rungs.len()).map(|_| [Vec::new(), Vec::new(), Vec::new()]).collect();
    let mut baselines = Vec::new();
    for &seed in &seeds {
        let run = TaskRun::new(spec.tasks[0], scale, seed, spec_reservoir(&spec, scale));
        let runner = run.runner();
        let curation = curate(&run.data, &run.curation_config(seed));
        baselines.push(runner.baseline_auprc().unwrap());
        for (i, rung) in rungs.iter().enumerate() {
            let text = spec_scenario(&spec, &format!("text-only T+{rung}"));
            let image = spec_scenario(&spec, &format!("image-only I+{rung}"));
            let cross = spec_scenario(&spec, &format!("cross-modal T,I+{rung}"));
            acc[i][0].push(runner.run(&text, None).unwrap().auprc);
            acc[i][1].push(runner.run(&image, Some(&curation)).unwrap().auprc);
            acc[i][2].push(runner.run(&cross, Some(&curation)).unwrap().auprc);
        }
    }
    let baseline = mean(&baselines);
    let mut out = Vec::new();
    for (i, rung) in rungs.iter().enumerate() {
        let r = Rung {
            sets: (*rung).to_owned(),
            text_rel: mean(&acc[i][0]) / baseline,
            image_rel: mean(&acc[i][1]) / baseline,
            combined_rel: mean(&acc[i][2]) / baseline,
        };
        println!(
            "{:<10} {:>9.2}x {:>9.2}x {:>11.2}x",
            r.sets, r.text_rel, r.image_rel, r.combined_rel
        );
        out.push(r);
    }
    maybe_write_json(&out);
}
