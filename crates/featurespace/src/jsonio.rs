//! JSON persistence for the schema layer.
//!
//! Schemas are the contract between feature-generation jobs and training
//! jobs, so they must survive persistence. The workspace builds without
//! registry access, so instead of serde derives this module hand-rolls the
//! encoding on top of [`cm_json`]. Lookup indices (schema name index,
//! vocabulary reverse map) are not encoded; decoding rebuilds them.

use cm_json::{Json, JsonError, ToJson};

use crate::schema::{FeatureDef, FeatureSchema, FeatureSet, ServingMode};
use crate::value::{CatSet, FeatureKind, FeatureValue};
use crate::vocab::Vocabulary;

fn bad(what: &str) -> JsonError {
    JsonError { message: format!("invalid or missing {what}"), offset: 0 }
}

impl ToJson for FeatureSet {
    fn to_json(&self) -> Json {
        let name = match self {
            FeatureSet::A => "A",
            FeatureSet::B => "B",
            FeatureSet::C => "C",
            FeatureSet::D => "D",
            FeatureSet::ModalitySpecific => "ModalitySpecific",
        };
        Json::Str(name.to_owned())
    }
}

impl FeatureSet {
    /// Parses the encoding produced by [`ToJson`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("A") => Ok(FeatureSet::A),
            Some("B") => Ok(FeatureSet::B),
            Some("C") => Ok(FeatureSet::C),
            Some("D") => Ok(FeatureSet::D),
            Some("ModalitySpecific") => Ok(FeatureSet::ModalitySpecific),
            _ => Err(bad("FeatureSet")),
        }
    }
}

impl ToJson for ServingMode {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                ServingMode::Servable => "Servable",
                ServingMode::Nonservable => "Nonservable",
            }
            .to_owned(),
        )
    }
}

impl ServingMode {
    /// Parses the encoding produced by [`ToJson`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("Servable") => Ok(ServingMode::Servable),
            Some("Nonservable") => Ok(ServingMode::Nonservable),
            _ => Err(bad("ServingMode")),
        }
    }
}

impl ToJson for FeatureKind {
    fn to_json(&self) -> Json {
        match self {
            FeatureKind::Numeric => Json::Str("Numeric".to_owned()),
            FeatureKind::Categorical => Json::Str("Categorical".to_owned()),
            FeatureKind::Embedding { dim } => {
                Json::obj([("Embedding", Json::obj([("dim", dim.to_json())]))])
            }
        }
    }
}

impl FeatureKind {
    /// Parses the encoding produced by [`ToJson`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) if s == "Numeric" => Ok(FeatureKind::Numeric),
            Json::Str(s) if s == "Categorical" => Ok(FeatureKind::Categorical),
            _ => {
                let dim = v
                    .get("Embedding")
                    .and_then(|e| e.get("dim"))
                    .and_then(Json::as_usize)
                    .ok_or_else(|| bad("FeatureKind"))?;
                Ok(FeatureKind::Embedding { dim })
            }
        }
    }
}

impl ToJson for Vocabulary {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(|(_, name)| Json::Str(name.to_owned())).collect())
    }
}

impl Vocabulary {
    /// Parses the encoding produced by [`ToJson`], rebuilding the reverse
    /// index (ids are positional).
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let names = v.as_arr().ok_or_else(|| bad("Vocabulary"))?;
        let mut out = Vec::with_capacity(names.len());
        for n in names {
            out.push(n.as_str().ok_or_else(|| bad("Vocabulary entry"))?.to_owned());
        }
        let distinct: std::collections::HashSet<&str> = out.iter().map(String::as_str).collect();
        if distinct.len() != out.len() {
            return Err(bad("Vocabulary (duplicate entry)"));
        }
        Ok(Vocabulary::from_names(out))
    }
}

impl ToJson for CatSet {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(|id| Json::Num(f64::from(id))).collect())
    }
}

impl CatSet {
    /// Parses the encoding produced by [`ToJson`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items = v.as_arr().ok_or_else(|| bad("CatSet"))?;
        let mut ids = Vec::with_capacity(items.len());
        for item in items {
            let id = item.as_usize().ok_or_else(|| bad("CatSet id"))?;
            ids.push(u32::try_from(id).map_err(|_| bad("CatSet id range"))?);
        }
        Ok(CatSet::from_ids(ids))
    }
}

impl ToJson for FeatureValue {
    fn to_json(&self) -> Json {
        match self {
            FeatureValue::Numeric(x) => Json::obj([("Numeric", x.to_json())]),
            FeatureValue::Categorical(set) => Json::obj([("Categorical", set.to_json())]),
            FeatureValue::Embedding(e) => Json::obj([("Embedding", e.to_json())]),
            FeatureValue::Missing => Json::Str("Missing".to_owned()),
        }
    }
}

impl FeatureValue {
    /// Parses the encoding produced by [`ToJson`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        if v.as_str() == Some("Missing") {
            return Ok(FeatureValue::Missing);
        }
        if let Some(x) = v.get("Numeric") {
            return Ok(FeatureValue::Numeric(x.as_f64().ok_or_else(|| bad("Numeric value"))?));
        }
        if let Some(set) = v.get("Categorical") {
            return Ok(FeatureValue::Categorical(CatSet::from_json(set)?));
        }
        if let Some(e) = v.get("Embedding") {
            let items = e.as_arr().ok_or_else(|| bad("Embedding value"))?;
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(item.as_f64().ok_or_else(|| bad("Embedding element"))? as f32);
            }
            return Ok(FeatureValue::Embedding(out));
        }
        Err(bad("FeatureValue"))
    }
}

impl ToJson for FeatureDef {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("kind", self.kind.to_json()),
            ("set", self.set.to_json()),
            ("serving", self.serving.to_json()),
            ("vocab", self.vocab.to_json()),
        ])
    }
}

impl FeatureDef {
    /// Parses the encoding produced by [`ToJson`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(FeatureDef {
            name: v.get("name").and_then(Json::as_str).ok_or_else(|| bad("name"))?.to_owned(),
            kind: FeatureKind::from_json(v.get("kind").ok_or_else(|| bad("kind"))?)?,
            set: FeatureSet::from_json(v.get("set").ok_or_else(|| bad("set"))?)?,
            serving: ServingMode::from_json(v.get("serving").ok_or_else(|| bad("serving"))?)?,
            vocab: Vocabulary::from_json(v.get("vocab").ok_or_else(|| bad("vocab"))?)?,
        })
    }
}

impl ToJson for FeatureSchema {
    fn to_json(&self) -> Json {
        Json::obj([("defs", Json::Arr(self.defs().iter().map(ToJson::to_json).collect()))])
    }
}

impl FeatureSchema {
    /// Parses the encoding produced by [`ToJson`]. The name index is
    /// rebuilt, so lookups work immediately on the result.
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        let defs = v
            .get("defs")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("defs"))?
            .iter()
            .map(FeatureDef::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let distinct: std::collections::HashSet<&str> =
            defs.iter().map(|d| d.name.as_str()).collect();
        if distinct.len() != defs.len() {
            return Err(bad("defs (duplicate feature name)"));
        }
        Ok(FeatureSchema::from_defs(defs))
    }
}
