#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md). Every step must pass before merge.
#
# The build is hermetic: no network, no registry deps. Everything below
# runs offline against the in-tree workspace only.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> xtask lint --self-test (lint engine vs seeded corpus)"
cargo run -q -p xtask -- lint --self-test

echo "==> xtask lint (layer 1: semantic source lints)"
mkdir -p results
cargo run -q -p xtask -- lint --json > results/lint_report.json

echo "==> xtask validate --self-test (validator vs pinned spec corpus)"
cargo run -q -p xtask -- validate --self-test

echo "==> xtask validate (layer 2: specs + pipeline-graph validator)"
cargo run -q -p xtask -- validate --json > results/validate_report.json

echo "==> xtask validate --seeded-negatives (gate self-test)"
cargo run -q -p xtask -- validate --seeded-negatives

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (CM_THREADS=1)"
CM_THREADS=1 cargo test -q --workspace

echo "==> cargo test (CM_THREADS=4)"
CM_THREADS=4 cargo test -q --workspace

echo "==> fault matrix (CM_THREADS=2)"
CM_THREADS=2 cargo test -q --test fault_matrix

echo "==> CM_FAULTS smoke: fault drill must be thread-invariant"
FAULT_SPEC='seed=13;topics=unavailable@0.4;keywords=transient(2)@0.5;user_reports=corrupt@0.3'
CM_FAULTS="$FAULT_SPEC" CM_THREADS=1 cargo run -q --release --example fault_drill \
    > /tmp/cm_fault_drill_t1.out
CM_FAULTS="$FAULT_SPEC" CM_THREADS=4 cargo run -q --release --example fault_drill \
    > /tmp/cm_fault_drill_t4.out
diff /tmp/cm_fault_drill_t1.out /tmp/cm_fault_drill_t4.out
echo "    fault drill output identical across thread counts"

echo "==> shard smoke: streamed curation must be bit-identical to resident"
# Three shard sizes (1 row, a prime, whole-corpus) at two thread counts;
# the example exits non-zero on the first divergence.
CM_THREADS=1 cargo run -q --release --example shard_smoke
CM_THREADS=4 cargo run -q --release --example shard_smoke

echo "==> serve smoke: crash/restart must be bit-identical to a clean run"
# The drill loads specs/serve.json (mixed fault storm), checkpoints every
# tick, and prints a deterministic report. Three runs against the pinned
# fixture: clean, crashed after the 2nd batch ingest (stdout discarded),
# and resumed off the crash's checkpoint at a different thread count.
SERVE_CKPT=/tmp/cm_serve_drill_ckpt.json
rm -f "$SERVE_CKPT"
CM_CHECKPOINT="$SERVE_CKPT" CM_THREADS=1 cargo run -q --release --example serve_drill \
    > /tmp/cm_serve_drill_clean.out
diff /tmp/cm_serve_drill_clean.out tests/fixtures/serve_drill.out
rm -f "$SERVE_CKPT"
CM_CHECKPOINT="$SERVE_CKPT" CM_CRASH_AT=2 CM_THREADS=4 cargo run -q --release --example serve_drill \
    > /dev/null
test -f "$SERVE_CKPT" || { echo "crashed run left no checkpoint"; exit 1; }
CM_CHECKPOINT="$SERVE_CKPT" CM_THREADS=4 cargo run -q --release --example serve_drill \
    > /tmp/cm_serve_drill_resume.out
diff /tmp/cm_serve_drill_resume.out tests/fixtures/serve_drill.out
rm -f "$SERVE_CKPT"
echo "    serve drill identical across clean and crash/restart runs"

echo "==> serve smoke: delta-log resume with a torn tail"
# The wire checkpoint is a base snapshot + append-only delta log. Kill
# mid-run (compaction deferred so the tail is a delta record), then tear
# the last record the way a crash mid-append would; resumes at both
# thread counts must recover to the last complete record and still match
# the pinned fixture byte for byte.
rm -f "$SERVE_CKPT"
CM_CHECKPOINT="$SERVE_CKPT" CM_CRASH_AT=4 CM_CKPT_COMPACT_TICKS=10000 CM_THREADS=1 \
    cargo run -q --release --example serve_drill > /dev/null
test -f "$SERVE_CKPT" || { echo "killed run left no delta log"; exit 1; }
head -c 4 "$SERVE_CKPT" | grep -q 'CMCK' || { echo "checkpoint is not a wire delta log"; exit 1; }
truncate -s -7 "$SERVE_CKPT"
CM_CHECKPOINT="$SERVE_CKPT" CM_THREADS=1 cargo run -q --release --example serve_drill \
    > /tmp/cm_serve_drill_torn_t1.out
diff /tmp/cm_serve_drill_torn_t1.out tests/fixtures/serve_drill.out
rm -f "$SERVE_CKPT"
CM_CHECKPOINT="$SERVE_CKPT" CM_CRASH_AT=4 CM_CKPT_COMPACT_TICKS=10000 CM_THREADS=4 \
    cargo run -q --release --example serve_drill > /dev/null
truncate -s -7 "$SERVE_CKPT"
CM_CHECKPOINT="$SERVE_CKPT" CM_THREADS=4 cargo run -q --release --example serve_drill \
    > /tmp/cm_serve_drill_torn_t4.out
diff /tmp/cm_serve_drill_torn_t4.out tests/fixtures/serve_drill.out
rm -f "$SERVE_CKPT"
echo "    delta-log resume identical after torn-tail kills at CM_THREADS=1 and 4"

echo "==> bench smoke: serve group"
# One end-to-end service run (compile + run guard; the committed
# results/BENCH_serve.json comes from an uncapped run).
CM_SERVE_JSON=/tmp/cm_bench_serve_smoke.json \
    cargo bench -q -p cm-bench --bench substrates -- serve

echo "==> bench smoke: scale group, capped corpus"
# Executes the sharded scale sweep once at a small row cap (compile +
# run guard; the committed results/BENCH_scale.json comes from a full
# uncapped run).
CM_SCALE_MAX_ROWS=20000 CM_SCALE_JSON=/tmp/cm_bench_scale_smoke.json \
    cargo bench -q -p cm-bench --bench substrates -- scale

echo "==> bench smoke: kernels group, 1 sample"
# Executes every columnar hot-path kernel benchmark once (compile +
# run guard only; timings at this sample size are meaningless).
CM_BENCH_SAMPLES=1 cargo bench -q -p cm-bench --bench substrates -- kernels

echo "ci: all gates passed"
