//! End-to-end cross-modal adaptation pipeline — the paper's primary
//! contribution (§2.4, Figure 3).
//!
//! Given a task with a labeled old-modality (text) corpus and an unlabeled
//! new-modality (image) pool, the pipeline:
//!
//! 1. **feature generation** ([`data`]) — featurizes every data point into
//!    the common feature space via the organizational-resource registry and
//!    densifies it into a shared model layout;
//! 2. **training data curation** ([`curation`]) — mines labeling functions
//!    from the old-modality corpus (§4.3), optionally augments them with a
//!    label-propagation LF (§4.4), and fits the generative label model to
//!    emit probabilistic labels for the pool;
//! 3. **model training** ([`training`]) — trains early/intermediate/DeViSE
//!    fusion models over any combination of modalities and label sources,
//!    and evaluates AUPRC on the held-out image test set, relative to the
//!    paper's baseline (a fully supervised model on pre-trained image
//!    embeddings alone).
//!
//! [`expert`] carries the hand-written "domain expert" LF suites used by the
//! §6.7.1 comparison, and [`report`] the serializable experiment outputs the
//! bench binaries print.

pub mod active;
pub mod attribution;
pub mod curation;
pub mod data;
pub mod expert;
pub mod incremental;
pub mod report;
pub mod selftrain;
pub mod stream;
pub mod training;

pub use active::{apply_review, select_for_review, ReviewStrategy};
pub use attribution::{feature_set_attribution, SetAttribution};
pub use curation::{
    curate, curate_with_lfs, CurationConfig, CurationOutput, LabelModelKind, WsQuality,
};
pub use data::{mask_disallowed_sets, DenseView, TaskData};
pub use expert::{expert_lfs, EXPERT_AUTHORING};
pub use incremental::{
    mean_entropy, BatchPreview, BatchStats, IncrementalConfig, IncrementalCurator,
    IncrementalDelta, IncrementalState,
};
pub use report::{DegradationReport, LfAbstainRates, ModelEval, ScenarioReport, ServingReport};
pub use selftrain::{self_train, SelfTrainConfig, SelfTrainOutcome};
pub use stream::{
    curate_streamed, curate_streamed_with, StreamStageTiming, StreamStats, StreamedCuration,
};
pub use training::{FusionStrategy, LabelSource, Scenario, ScenarioRunner};
