//@ path: crates/demo/src/lib.rs
// Seeded negative (bans): identifier boundaries — fallible siblings and
// lookalike names never match the banned tokens.

pub fn f(v: Option<u32>, r: Result<u32, String>) -> u32 {
    let a = v.unwrap_or(0);
    let b = v.unwrap_or_else(|| 1);
    let c = v.unwrap_or_default();
    let d = r.clone().unwrap_err().len() as u32;
    let e = r.expect_err("want err").len() as u32;
    eprintln!("diagnostic output is fine");
    core::panicking();
    my_thread::spawn(|| 2);
    let pool = Pool::new();
    let _s = pool.spawn(|| 3);
    let _t = MyInstant::now_ish();
    a + b + c + d + e
}
