//! A span-carrying Rust lexer sized for linting.
//!
//! Produces the full token stream of a source file with byte offsets and
//! 1-based line/column positions, so passes can match token *sequences*
//! (a banned call split across lines, a path like `Instant::now`) and
//! report findings at exact positions. The lexer is lossless about the
//! constructs that defeat a per-line scanner:
//!
//! - nested block comments (`/* outer /* inner */ still comment */`),
//! - raw strings with any hash depth (`r#"…"#`, `br##"…"##`), which may
//!   span lines and contain `"` freely,
//! - plain strings spanning lines (trailing `\` continuation or plain
//!   multi-line literals),
//! - char and byte literals (`'a'`, `b'\n'`) versus lifetimes (`'a`),
//! - raw identifiers (`r#type`).
//!
//! It is tolerant: unterminated literals or comments consume to end of
//! input instead of failing, so the engine can still lint the rest of a
//! broken file.
//!
//! Positions are carried as [`cm_span::Span`]s — the shared byte/line/col
//! span type also used by `cm-json`'s spanned parser and `cm-check`'s
//! spec diagnostics.

use cm_span::Span;

/// Token classes the passes care about. Comments are kept in the stream
/// (the waiver pragmas live there); passes that match code skip them via
/// [`TokKind::is_comment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `unsafe`, `unwrap`, `r#type`).
    Ident,
    /// Lifetime (`'a`, `'static`) — distinct from char literals.
    Lifetime,
    /// Numeric literal, including suffixes (`1_000u64`, `2.5e-3`).
    Num,
    /// String literal of any flavor: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// Char or byte literal: `'a'`, `b'\0'`.
    Char,
    /// `// …` comment (doc comments included).
    LineComment,
    /// `/* … */` comment, nesting handled, may span lines.
    BlockComment,
    /// Any single other character: `.`, `:`, `!`, `(`, `{`, `<`, …
    Punct,
}

impl TokKind {
    /// True for the two comment kinds.
    pub fn is_comment(self) -> bool {
        matches!(self, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// One token with its lexeme and position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// The exact source text of the token (quotes and hashes included).
    pub text: String,
    /// Source region: byte range plus 1-based line/column of the first
    /// character.
    pub span: Span,
}

impl Tok {
    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True when this token is an identifier with exactly this text
    /// (raw-identifier prefix `r#` stripped before comparing).
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.ident_text() == name
    }

    /// Identifier text with any `r#` raw prefix stripped.
    pub fn ident_text(&self) -> &str {
        self.text.strip_prefix("r#").unwrap_or(&self.text)
    }

    /// 1-based line of the token's first character.
    pub fn line(&self) -> u32 {
        self.span.line
    }

    /// 1-based column (in characters) of the token's first character.
    pub fn col(&self) -> u32 {
        self.span.col
    }
}

/// Character-indexed cursor over the source with line/column tracking.
struct Lexer<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, chars: src.char_indices().collect(), i: 0, line: 1, col: 1 }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).map(|&(_, c)| c)
    }

    fn byte_at(&self, idx: usize) -> usize {
        self.chars.get(idx).map_or(self.src.len(), |&(b, _)| b)
    }

    /// Consumes one character, updating line/column.
    fn bump(&mut self) {
        if let Some(&(_, c)) = self.chars.get(self.i) {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes a `//` comment up to (not including) the newline.
    fn line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    /// Consumes a `/* … */` comment with nesting; tolerant of EOF.
    fn block_comment(&mut self) {
        self.bump_n(2); // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
    }

    /// Consumes a plain (non-raw) string or byte-string body. The cursor
    /// sits on the opening `"`. Escapes skip the next character, which
    /// also handles `\"` and trailing-backslash line continuations.
    fn quoted_string(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => self.bump_n(2),
                '"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a raw (byte) string. The cursor sits on the first `#` or
    /// the opening `"`; `hashes` is the number of `#` before the quote.
    fn raw_string(&mut self, hashes: usize) {
        self.bump_n(hashes + 1); // hashes + opening quote
        while let Some(c) = self.peek(0) {
            if c == '"' {
                let closed = (1..=hashes).all(|k| self.peek(k) == Some('#'));
                if closed {
                    self.bump_n(hashes + 1);
                    return;
                }
            }
            self.bump();
        }
    }

    /// Consumes a char/byte literal body. The cursor sits on the opening
    /// `'`.
    fn char_literal(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => self.bump_n(2),
                '\'' => {
                    self.bump();
                    return;
                }
                '\n' => return, // stray quote: do not eat the next line
                _ => self.bump(),
            }
        }
    }

    fn ident(&mut self) {
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Consumes a numeric literal: integer/float bodies with suffixes and
    /// signed exponents. `1.max(2)` and `0..n` keep their dots.
    fn number(&mut self) {
        self.digits_and_suffix();
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump(); // the dot
            self.digits_and_suffix();
        }
    }

    fn digits_and_suffix(&mut self) {
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                let exp_sign = (c == 'e' || c == 'E')
                    && matches!(self.peek(1), Some('+') | Some('-'))
                    && self.peek(2).is_some_and(|d| d.is_ascii_digit());
                self.bump();
                if exp_sign {
                    self.bump(); // the sign
                }
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// How many `#` characters follow position `ahead`, and whether a `"`
/// follows them (i.e. this is a raw-string opener).
fn raw_opener(lx: &Lexer<'_>, ahead: usize) -> Option<usize> {
    let mut h = 0usize;
    while lx.peek(ahead + h) == Some('#') {
        h += 1;
    }
    (lx.peek(ahead + h) == Some('"')).then_some(h)
}

/// Lexes `source` into its full token stream (whitespace dropped,
/// comments kept).
pub fn lex(source: &str) -> Vec<Tok> {
    let mut lx = Lexer::new(source);
    let mut toks = Vec::new();
    while let Some(c) = lx.peek(0) {
        if c.is_whitespace() {
            lx.bump();
            continue;
        }
        let (line, col, start) = (lx.line, lx.col, lx.byte_at(lx.i));
        let kind = match c {
            '/' if lx.peek(1) == Some('/') => {
                lx.line_comment();
                TokKind::LineComment
            }
            '/' if lx.peek(1) == Some('*') => {
                lx.block_comment();
                TokKind::BlockComment
            }
            '"' => {
                lx.quoted_string();
                TokKind::Str
            }
            'r' if raw_opener(&lx, 1).is_some() => {
                // lx sits on `r`; raw_string expects hashes + quote next.
                let h = raw_opener(&lx, 1).unwrap_or(0);
                lx.bump(); // the `r`
                lx.raw_string(h);
                TokKind::Str
            }
            'r' if lx.peek(1) == Some('#') && lx.peek(2).is_some_and(is_ident_start) => {
                lx.bump_n(2); // raw identifier `r#name`
                lx.ident();
                TokKind::Ident
            }
            'b' if lx.peek(1) == Some('"') => {
                lx.bump(); // the `b`
                lx.quoted_string();
                TokKind::Str
            }
            'b' if lx.peek(1) == Some('\'') => {
                lx.bump(); // the `b`
                lx.char_literal();
                TokKind::Char
            }
            'b' if lx.peek(1) == Some('r') && raw_opener(&lx, 2).is_some() => {
                let h = raw_opener(&lx, 2).unwrap_or(0);
                lx.bump_n(2); // `br`
                lx.raw_string(h);
                TokKind::Str
            }
            '\'' => {
                // Lifetime vs char literal. `'\…'` and `'x'` are chars;
                // `'name` (no nearby closing quote) is a lifetime.
                if lx.peek(1) == Some('\\') {
                    lx.char_literal();
                    TokKind::Char
                } else if lx.peek(2) == Some('\'') && lx.peek(1) != Some('\'') {
                    lx.char_literal();
                    TokKind::Char
                } else if lx.peek(1).is_some_and(is_ident_start) {
                    lx.bump(); // the quote
                    lx.ident();
                    TokKind::Lifetime
                } else {
                    lx.bump();
                    TokKind::Punct
                }
            }
            c if is_ident_start(c) => {
                lx.ident();
                TokKind::Ident
            }
            c if c.is_ascii_digit() => {
                lx.number();
                TokKind::Num
            }
            _ => {
                lx.bump();
                TokKind::Punct
            }
        };
        let end = lx.byte_at(lx.i);
        toks.push(Tok {
            kind,
            text: source[start..end].to_owned(),
            span: Span::new(start, end, line, col),
        });
    }
    toks
}
