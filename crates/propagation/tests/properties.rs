//! Randomized tests for graphs and label propagation (seeded, in-tree PRNG).

use cm_linalg::rng::{Rng, StdRng};
use cm_propagation::{propagate, propagate_streaming, PropagationConfig, SparseGraph};

const CASES: u64 = 64;

fn random_graph(rng: &mut StdRng) -> (usize, Vec<(u32, u32, f32)>) {
    let n = rng.gen_range(4..24usize);
    let n_edges = rng.gen_range(0..n * 3);
    let edges = (0..n_edges)
        .map(|_| {
            (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32), rng.gen_range(0.05f32..1.0))
        })
        .collect();
    (n, edges)
}

fn seed_scores(rng: &mut StdRng, n: usize, lo: usize, hi: usize) -> Vec<(usize, f64)> {
    let count = rng.gen_range(lo..hi);
    (0..count).filter(|&i| i < n).map(|i| (i, if rng.gen_bool(0.5) { 1.0 } else { 0.0 })).collect()
}

/// The CSR build is symmetric: u in N(v) iff v in N(u), with equal
/// weights.
#[test]
fn graph_is_symmetric() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5133 ^ case);
        let (n, edges) = random_graph(&mut rng);
        let g = SparseGraph::from_edges(n, &edges);
        for v in 0..n {
            let (neigh, weights) = g.neighbors(v);
            for (&u, &w) in neigh.iter().zip(weights) {
                let (back, back_w) = g.neighbors(u as usize);
                let pos = back.iter().position(|&x| x as usize == v);
                let Some(pos) = pos else {
                    panic!("case {case}: edge {v}->{u} missing its reverse");
                };
                assert_eq!(back_w[pos], w, "case {case}");
            }
        }
    }
}

/// Neighbor lists are sorted and self-loop free.
#[test]
fn neighbor_lists_are_canonical() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xCA20 ^ case);
        let (n, edges) = random_graph(&mut rng);
        let g = SparseGraph::from_edges(n, &edges);
        for v in 0..n {
            let (neigh, _) = g.neighbors(v);
            for w in neigh.windows(2) {
                assert!(w[0] < w[1], "case {case}: unsorted or duplicate neighbors");
            }
            assert!(!neigh.contains(&(v as u32)), "case {case}: self loop at {v}");
        }
    }
}

/// Maximum principle: propagated scores stay within the convex hull of
/// the seed scores and the prior.
#[test]
fn propagation_respects_maximum_principle() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x3A10 ^ case);
        let (n, edges) = random_graph(&mut rng);
        let prior = rng.gen_range(0.0f64..1.0);
        let seeds = seed_scores(&mut rng, n, 1, 6);
        let g = SparseGraph::from_edges(n, &edges);
        let cfg = PropagationConfig { max_iters: 200, tol: 1e-9, prior };
        let scores = propagate(&g, &seeds, &cfg);
        let mut lo = prior;
        let mut hi = prior;
        for &(_, s) in &seeds {
            lo = lo.min(s);
            hi = hi.max(s);
        }
        for (v, &s) in scores.iter().enumerate() {
            assert!(
                s >= lo - 1e-9 && s <= hi + 1e-9,
                "case {case}: vertex {v} score {s} escapes [{lo}, {hi}]"
            );
        }
    }
}

/// Jacobi and Gauss–Seidel converge to the same fixed point.
#[test]
fn variants_agree_at_convergence() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xF18 ^ case);
        let (n, edges) = random_graph(&mut rng);
        let seeds = seed_scores(&mut rng, n, 2, 5);
        let g = SparseGraph::from_edges(n, &edges);
        let cfg = PropagationConfig { max_iters: 20_000, tol: 1e-12, prior: 0.5 };
        let sync = propagate(&g, &seeds, &cfg);
        let stream = propagate_streaming(&g, &seeds, &cfg);
        for (a, b) in sync.iter().zip(&stream) {
            assert!((a - b).abs() < 1e-5, "case {case}: {a} vs {b}");
        }
    }
}

/// Clamped seeds never move.
#[test]
fn seeds_are_clamped() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC1A ^ case);
        let (n, edges) = random_graph(&mut rng);
        let g = SparseGraph::from_edges(n, &edges);
        let seeds = vec![(0usize, 1.0f64), (n - 1, 0.0)];
        let scores = propagate(&g, &seeds, &PropagationConfig::default());
        assert_eq!(scores[0], 1.0, "case {case}");
        assert_eq!(scores[n - 1], 0.0, "case {case}");
    }
}
