//! Seeded bootstrap confidence intervals for AUPRC.

use cm_linalg::rng::Rng;
use cm_linalg::rng::StdRng;
use cm_par::ParConfig;

use crate::pr::auprc;

/// Minimum resamples per chunk for the parallel bootstrap.
const BOOTSTRAP_MIN_CHUNK: usize = 16;

/// Percentile bootstrap CI for AUPRC.
///
/// Resamples `(score, label)` pairs with replacement `n_resamples` times and
/// returns the `(alpha/2, 1-alpha/2)` percentiles. Resamples with no
/// positives are redrawn (up to a bounded retry budget) so the statistic is
/// defined; with extreme imbalance and tiny samples the interval degrades
/// gracefully to `(0, 0)`.
///
/// # Panics
/// Panics on length mismatch, `n_resamples == 0`, or `alpha` outside (0, 1).
pub fn bootstrap_auprc_ci(
    scores: &[f64],
    positives: &[bool],
    n_resamples: usize,
    alpha: f64,
    seed: u64,
) -> (f64, f64) {
    bootstrap_auprc_ci_with(scores, positives, n_resamples, alpha, seed, &ParConfig::from_env())
}

/// [`bootstrap_auprc_ci`] with an explicit parallel configuration.
///
/// Each resample draws from its own RNG stream derived from `(seed, index)`,
/// so any thread count produces the same interval for a given seed.
///
/// # Panics
/// Panics on length mismatch, `n_resamples == 0`, or `alpha` outside (0, 1).
pub fn bootstrap_auprc_ci_with(
    scores: &[f64],
    positives: &[bool],
    n_resamples: usize,
    alpha: f64,
    seed: u64,
    par: &ParConfig,
) -> (f64, f64) {
    assert_eq!(scores.len(), positives.len(), "score/label length mismatch");
    assert!(n_resamples > 0, "need at least one resample");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    let n = scores.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let chunks = cm_par::par_map_chunks(
        &par.clone().with_min_chunk(BOOTSTRAP_MIN_CHUNK),
        n_resamples,
        |range| {
            let mut stats = Vec::with_capacity(range.len());
            let mut s_buf = vec![0.0f64; n];
            let mut p_buf = vec![false; n];
            for r in range {
                // Per-resample stream: splitmix64-style index mixing keeps
                // resample r's draws independent of how work is chunked.
                let stream = seed ^ (r as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut rng = StdRng::seed_from_u64(stream);
                let mut ok = false;
                for _retry in 0..16 {
                    let mut any_pos = false;
                    for i in 0..n {
                        let j = rng.gen_range(0..n);
                        s_buf[i] = scores[j];
                        p_buf[i] = positives[j];
                        any_pos |= positives[j];
                    }
                    if any_pos {
                        ok = true;
                        break;
                    }
                }
                stats.push(if ok { auprc(&s_buf, &p_buf) } else { 0.0 });
            }
            stats
        },
    )
    .unwrap_or_else(|e| e.resume());
    let mut stats: Vec<f64> = chunks.into_iter().flatten().collect();
    stats.sort_by(f64::total_cmp);
    let lo_idx = ((alpha / 2.0) * n_resamples as f64) as usize;
    let hi_idx = (((1.0 - alpha / 2.0) * n_resamples as f64) as usize).min(n_resamples - 1);
    (stats[lo_idx], stats[hi_idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> (Vec<f64>, Vec<bool>) {
        // Mildly informative scores.
        let scores: Vec<f64> = (0..n)
            .map(|i| {
                let noise = ((i * 7919) % 1000) as f64 / 1000.0;
                if i % 5 == 0 {
                    0.4 + 0.6 * noise
                } else {
                    0.6 * noise
                }
            })
            .collect();
        let positives: Vec<bool> = (0..n).map(|i| i % 5 == 0).collect();
        (scores, positives)
    }

    #[test]
    fn interval_brackets_point_estimate() {
        let (s, p) = data(500);
        let point = auprc(&s, &p);
        let (lo, hi) = bootstrap_auprc_ci(&s, &p, 200, 0.1, 42);
        assert!(lo <= point && point <= hi, "[{lo}, {hi}] vs {point}");
        assert!(lo < hi);
    }

    #[test]
    fn wider_alpha_narrows_interval() {
        let (s, p) = data(500);
        let (lo90, hi90) = bootstrap_auprc_ci(&s, &p, 300, 0.10, 1);
        let (lo50, hi50) = bootstrap_auprc_ci(&s, &p, 300, 0.50, 1);
        assert!(hi50 - lo50 <= hi90 - lo90);
    }

    #[test]
    fn deterministic_per_seed() {
        let (s, p) = data(200);
        assert_eq!(
            bootstrap_auprc_ci(&s, &p, 100, 0.1, 7),
            bootstrap_auprc_ci(&s, &p, 100, 0.1, 7)
        );
        assert_ne!(
            bootstrap_auprc_ci(&s, &p, 100, 0.1, 7),
            bootstrap_auprc_ci(&s, &p, 100, 0.1, 8)
        );
    }

    #[test]
    fn empty_input_degrades_to_zero() {
        assert_eq!(bootstrap_auprc_ci(&[], &[], 10, 0.1, 0), (0.0, 0.0));
    }

    #[test]
    fn interval_is_identical_across_thread_counts() {
        let (s, p) = data(300);
        let base = bootstrap_auprc_ci_with(&s, &p, 250, 0.1, 9, &ParConfig::threads(1));
        for threads in [2usize, 4, 8] {
            let ci = bootstrap_auprc_ci_with(&s, &p, 250, 0.1, 9, &ParConfig::threads(threads));
            assert_eq!(ci, base, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn rejects_bad_alpha() {
        bootstrap_auprc_ci(&[0.5], &[true], 10, 1.5, 0);
    }
}
