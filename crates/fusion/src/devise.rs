//! The adapted DeViSE baseline (§5, Figure 4 right).

use cm_linalg::{sigmoid, Matrix};
use cm_models::{train_model, ModelKind, TrainConfig, TrainedModel};

use crate::projection::{LinearProjection, ProjectionConfig};
use crate::ModalityData;

/// DeViSE adapted to the cross-modal setting:
///
/// 1. train model **A** on the existing (old) modalities and freeze it —
///    DeViSE's language-model pre-training;
/// 2. pre-train model **B** on the weakly supervised new-modality data —
///    DeViSE's visual-model pre-training;
/// 3. train a linear projection **P** matching B's pre-head output `Y` to
///    A's pre-head output `X` on the new-modality points;
/// 4. at inference, serve `sigmoid(A.head(P(B.embed(x))))` — B plus P,
///    through A's frozen prediction layer.
pub struct DeViseModel {
    model_a: TrainedModel,
    model_b: TrainedModel,
    projection: LinearProjection,
    input_dim: usize,
}

impl DeViseModel {
    /// Trains the three stages. `old` carries ground-truth labels of the
    /// existing modalities; `new` carries weakly supervised labels of the
    /// target modality. Both are in the shared dense layout.
    ///
    /// # Panics
    /// Panics if widths differ or either part is empty.
    pub fn train(
        old: &ModalityData,
        new: &ModalityData,
        kind: &ModelKind,
        config: &TrainConfig,
    ) -> Self {
        assert_eq!(old.x.cols(), new.x.cols(), "modality width mismatch");
        let input_dim = old.x.cols();
        // Stage 1: frozen old-modality model A.
        let model_a = train_model(kind, &old.x, &old.targets, config, None);
        // Stage 2: new-modality model B.
        let cfg_b = TrainConfig { seed: config.seed.wrapping_add(1), ..config.clone() };
        let model_b = train_model(kind, &new.x, &new.targets, &cfg_b, None);
        // Stage 3: project Y (B's embedding) onto X (A's embedding) over
        // the new-modality points.
        let x_emb = model_a.embed(&new.x);
        let y_emb = model_b.embed(&new.x);
        let projection = LinearProjection::fit(
            &y_emb,
            &x_emb,
            &ProjectionConfig { seed: config.seed.wrapping_add(2), ..Default::default() },
        );
        Self { model_a, model_b, projection, input_dim }
    }

    /// Positive-class probabilities: B → P → A's frozen head.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        assert_eq!(x.cols(), self.input_dim, "feature width mismatch");
        let projected = self.projection.project(&self.model_b.embed(x));
        projected.rows_iter().map(|row| f64::from(sigmoid(self.model_a.head_logit(row)))).collect()
    }

    /// The frozen old-modality model.
    pub fn model_a(&self) -> &TrainedModel {
        &self.model_a
    }

    /// The new-modality model.
    pub fn model_b(&self) -> &TrainedModel {
        &self.model_b
    }
}

#[cfg(test)]
mod tests {
    use cm_eval::auprc;

    use super::*;
    use crate::testutil::two_modality_task;

    #[test]
    fn devise_learns_but_lags_early_fusion() {
        // §6.6: early fusion beats DeViSE (up to 5.52x, average 2.21x).
        let (old, new, xt, yt) = two_modality_task(600, 21);
        let kind = ModelKind::Mlp { hidden: vec![12] };
        let cfg = TrainConfig { epochs: 25, patience: None, ..Default::default() };
        let pos: Vec<bool> = yt.iter().map(|&v| v >= 0.5).collect();

        let devise = DeViseModel::train(&old, &new, &kind, &cfg);
        let ap_devise = auprc(&devise.predict_proba(&xt), &pos);
        let early = crate::EarlyFusionModel::train(&[old.clone(), new.clone()], &kind, &cfg, None);
        let ap_early = auprc(&early.predict_proba(&xt), &pos);

        assert!(ap_devise > 0.35, "DeViSE must still learn: {ap_devise}");
        assert!(
            ap_early >= ap_devise * 0.95,
            "early fusion ({ap_early}) should not lose clearly to DeViSE ({ap_devise})"
        );
    }

    #[test]
    fn probabilities_are_valid() {
        let (old, new, xt, _) = two_modality_task(200, 9);
        let cfg = TrainConfig { epochs: 5, ..Default::default() };
        let m = DeViseModel::train(&old, &new, &ModelKind::Mlp { hidden: vec![6] }, &cfg);
        for p in m.predict_proba(&xt) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn works_with_logistic_models() {
        // For logistic models embed = input, so P maps input to input.
        let (old, new, xt, yt) = two_modality_task(300, 13);
        let cfg = TrainConfig::default();
        let m = DeViseModel::train(&old, &new, &ModelKind::Logistic, &cfg);
        let pos: Vec<bool> = yt.iter().map(|&v| v >= 0.5).collect();
        assert!(auprc(&m.predict_proba(&xt), &pos) > 0.4);
    }

    #[test]
    #[should_panic(expected = "modality width mismatch")]
    fn rejects_mismatched_widths() {
        let (old, _, _, _) = two_modality_task(50, 1);
        let bad = ModalityData::new(cm_linalg::Matrix::zeros(10, 3), vec![0.0; 10]);
        DeViseModel::train(&old, &bad, &ModelKind::Logistic, &TrainConfig::default());
    }
}
