//! Declarative scenario-spec parsing and span-aware validation.
//!
//! A spec file (`specs/*.json`) declares one experiment of the evaluation
//! matrix: which tasks it runs, at what scale and over how many seeds,
//! and the list of [`ScenarioSpec`]s (modality pair, feature sets, label
//! source, fusion strategy) the experiment trains. `cm-pipeline` turns a
//! validated [`ScenarioSpec`] into a runnable `Scenario`; the experiment
//! binaries load their spec instead of hard-coding the matrix.
//!
//! [`validate_spec_source`] is the single entry point: it parses with the
//! span-retaining [`cm_json::JsonNode`] parser and walks the document,
//! raising every violation with the exact byte/line/column of the
//! offending token, so `xtask validate` renders `path:line:col: rule:
//! message` diagnostics. A spec that validates clean is returned as an
//! [`ExperimentSpec`]; a spec with any violation is not usable.
//!
//! ## Spec format
//!
//! ```json
//! {
//!   "name": "fusion_compare",
//!   "tasks": ["CT 1", "CT 2"],        // optional; default: all five
//!   "scale": 0.5,                      // optional; default 1.0
//!   "seeds": 3,                        // optional seed count; default 1
//!   "seed": 42,                        // optional base seed; default 42
//!   "n_labeled_image": 4000,           // optional reservoir size at scale 1
//!   "fault_plan": "seed=7;topics=unavailable@0.5",  // optional CM_FAULTS spec
//!   "serve": {                         // optional cm-serve drill knobs
//!     "batch_rows": 40, "queue_capacity": 8, "high_watermark": 6,
//!     "crash_at": 3, "min_coverage": 0.02, "max_abstain": 0.995
//!   },
//!   "scenarios": [
//!     {
//!       "name": "cross-modal T,I+ABCD",
//!       "text_sets": "ABCD",           // ladder chars A–D, "" disables text
//!       "image_sets": "ABCD",
//!       "label_source": "weak",        // "weak" | "none" | {"fully_supervised": n}
//!       "fusion": "early",             // "early" | "intermediate" | "devise"
//!       "include_modality_specific": true
//!     }
//!   ]
//! }
//! ```
//!
//! A spec may also carry inline **artifact sections** (`table`, `votes`,
//! `fusion_plan`, `graph`) describing literal artifacts to check. These
//! exist so every artifact rule family has spec-file positives in the
//! pinned corpus — the same structural rules as the [`crate::artifact`]
//! checks, but anchored to exact source positions.

use cm_faults::FaultPlan;
use cm_featurespace::FeatureSet;
use cm_json::spanned::offset_span;
use cm_json::JsonNode;
use cm_orgsim::TaskId;
use cm_span::Span;

use crate::{CheckRule, FusionKind, Violation};

/// Where a spec scenario's image-part labels come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecLabelSource {
    /// Probabilistic labels from the curation step.
    Weak,
    /// No image labels: the image modality does not train (text transfer).
    None,
    /// `n` hand labels from the labeled reservoir (at scale 1.0).
    FullySupervised(usize),
}

/// One scenario of the evaluation matrix, as declared in a spec file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Display name; also the join key for report rows.
    pub name: String,
    /// Shared feature sets for the text part; empty disables text.
    pub text_sets: Vec<FeatureSet>,
    /// Shared feature sets for the image part and test encoding.
    pub image_sets: Vec<FeatureSet>,
    /// Image-label source.
    pub label_source: SpecLabelSource,
    /// Fusion strategy.
    pub fusion: FusionKind,
    /// Include modality-specific features in the layout.
    pub include_modality_specific: bool,
}

/// Serving-drill overrides declared by a spec's `"serve"` section: the
/// incremental-curation-service knobs `cm-serve` layers on top of the
/// experiment's task/scale/seed. Every field is optional; an absent
/// field leaves the service default in place.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeSpec {
    /// Total arrival rows the drill streams.
    pub total_rows: Option<usize>,
    /// Nominal rows per arrival batch (`CM_BATCH_ROWS`).
    pub batch_rows: Option<usize>,
    /// Arrival batches offered per service tick.
    pub arrivals_per_tick: Option<usize>,
    /// Admission-queue capacity (`CM_QUEUE_DEPTH`).
    pub queue_capacity: Option<usize>,
    /// Queue depth at which offers start deferring.
    pub high_watermark: Option<usize>,
    /// Crash-injection point: exit after this many ingested batches
    /// (`CM_CRASH_AT`).
    pub crash_at: Option<usize>,
    /// Quality-guard floor on batch label coverage.
    pub min_coverage: Option<f64>,
    /// Quality-guard ceiling on batch abstain rate.
    pub max_abstain: Option<f64>,
}

/// A validated experiment spec: the full configuration one experiment
/// binary needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Experiment name (conventionally the spec's file stem).
    pub name: String,
    /// Tasks the experiment sweeps, in paper order.
    pub tasks: Vec<TaskId>,
    /// Synthetic-world scale factor.
    pub scale: f64,
    /// How many seeds to average over.
    pub seeds: usize,
    /// Base seed (seed `i` of the sweep is `seed + i * 1000`, matching
    /// the `CM_SEEDS` convention).
    pub seed: u64,
    /// Labeled-image reservoir size at scale 1.0, when the experiment
    /// pins one.
    pub n_labeled_image: Option<usize>,
    /// Fault plan in `CM_FAULTS` syntax, when the experiment injects
    /// faults.
    pub fault_plan: Option<String>,
    /// The scenario matrix.
    pub scenarios: Vec<ScenarioSpec>,
    /// Serving-drill overrides, when the experiment drives `cm-serve`.
    pub serve: Option<ServeSpec>,
}

/// Validates a spec source text. On a clean spec, returns it parsed; any
/// violation (each carrying the exact span of the offending token in
/// `source`) makes the spec unusable and the first element `None`.
pub fn validate_spec_source(source: &str, path: &str) -> (Option<ExperimentSpec>, Vec<Violation>) {
    let root = match JsonNode::parse(source) {
        Ok(n) => n,
        Err(e) => {
            let span = offset_span(source, e.offset);
            return (None, vec![Violation::spanned(CheckRule::SpecSyntax, path, span, e.message)]);
        }
    };
    let mut w = Walker { path, out: Vec::new() };
    let spec = w.experiment(&root);
    if w.out.is_empty() {
        (spec, w.out)
    } else {
        (None, w.out)
    }
}

/// The known top-level spec fields.
const TOP_FIELDS: &[&str] = &[
    "name",
    "tasks",
    "scale",
    "seeds",
    "seed",
    "n_labeled_image",
    "fault_plan",
    "scenarios",
    "serve",
    "table",
    "votes",
    "fusion_plan",
    "graph",
];

/// The known scenario fields.
const SCENARIO_FIELDS: &[&str] =
    &["name", "text_sets", "image_sets", "label_source", "fusion", "include_modality_specific"];

/// Validation walker: accumulates spanned violations against `path`.
struct Walker<'a> {
    path: &'a str,
    out: Vec<Violation>,
}

impl Walker<'_> {
    fn push(&mut self, rule: CheckRule, span: Span, message: impl Into<String>) {
        self.out.push(Violation::spanned(rule, self.path, span, message));
    }

    /// Flags unknown keys of an object against an allow-list.
    fn known_fields(&mut self, node: &JsonNode, allowed: &[&str], what: &str) {
        if let Some(entries) = node.as_obj() {
            for e in entries {
                if !allowed.contains(&e.key.as_str()) {
                    self.push(
                        CheckRule::SpecField,
                        e.key_span,
                        format!("unknown {what} field {:?}", e.key),
                    );
                }
            }
        }
    }

    /// A required string field; `None` (with a violation) when missing or
    /// mistyped.
    fn req_str<'n>(&mut self, node: &'n JsonNode, key: &str, what: &str) -> Option<&'n str> {
        match node.get(key) {
            Some(v) => match v.as_str() {
                Some(s) => Some(s),
                None => {
                    self.push(
                        CheckRule::SpecField,
                        v.span,
                        format!("{what} {key:?} is {}, expected string", v.type_name()),
                    );
                    None
                }
            },
            None => {
                self.push(
                    CheckRule::SpecField,
                    node.span,
                    format!("{what} is missing required field {key:?}"),
                );
                None
            }
        }
    }

    /// An optional non-negative integer field.
    fn opt_usize(&mut self, node: &JsonNode, key: &str) -> Option<usize> {
        let v = node.get(key)?;
        match v.as_usize() {
            Some(n) => Some(n),
            None => {
                self.push(
                    CheckRule::SpecField,
                    v.span,
                    format!("{key:?} must be a non-negative integer, got {}", render(v)),
                );
                None
            }
        }
    }

    fn experiment(&mut self, root: &JsonNode) -> Option<ExperimentSpec> {
        if root.as_obj().is_none() {
            self.push(
                CheckRule::SpecField,
                root.span,
                format!("spec root is {}, expected object", root.type_name()),
            );
            return None;
        }
        self.known_fields(root, TOP_FIELDS, "spec");
        let name = self.req_str(root, "name", "spec").unwrap_or_default().to_owned();
        let tasks = self.tasks(root);
        let scale = self.scale(root);
        let seeds = match self.opt_usize(root, "seeds") {
            Some(0) => {
                if let Some(v) = root.get("seeds") {
                    self.push(CheckRule::SpecValue, v.span, "seed count must be at least 1");
                }
                1
            }
            Some(n) => n,
            None => 1,
        };
        let seed = self.opt_usize(root, "seed").map_or(42, |n| n as u64);
        let n_labeled_image = self.opt_usize(root, "n_labeled_image");
        let fault_plan = self.fault_plan(root);
        let scenarios = self.scenarios(root);
        let serve = self.serve_section(root);
        self.table_section(root);
        self.votes_section(root);
        self.fusion_plan_section(root);
        self.graph_section(root);
        Some(ExperimentSpec {
            name,
            tasks,
            scale,
            seeds,
            seed,
            n_labeled_image,
            fault_plan,
            scenarios,
            serve,
        })
    }

    /// The known `serve` section fields.
    const SERVE_FIELDS: &'static [&'static str] = &[
        "total_rows",
        "batch_rows",
        "arrivals_per_tick",
        "queue_capacity",
        "high_watermark",
        "crash_at",
        "min_coverage",
        "max_abstain",
    ];

    /// Validates the `serve` section: per-knob type and range checks plus
    /// the cross-field watermark/capacity ordering the admission queue
    /// assumes.
    fn serve_section(&mut self, root: &JsonNode) -> Option<ServeSpec> {
        let section = root.get("serve")?;
        if section.as_obj().is_none() {
            self.push(
                CheckRule::SpecField,
                section.span,
                format!("\"serve\" is {}, expected object", section.type_name()),
            );
            return None;
        }
        self.known_fields(section, Self::SERVE_FIELDS, "serve");
        let spec = ServeSpec {
            total_rows: self.opt_usize(section, "total_rows"),
            batch_rows: self.opt_usize(section, "batch_rows"),
            arrivals_per_tick: self.opt_usize(section, "arrivals_per_tick"),
            queue_capacity: self.opt_usize(section, "queue_capacity"),
            high_watermark: self.opt_usize(section, "high_watermark"),
            crash_at: self.opt_usize(section, "crash_at"),
            min_coverage: self.opt_fraction(section, "min_coverage"),
            max_abstain: self.opt_fraction(section, "max_abstain"),
        };
        // Zero is never a usable value for the positive-count knobs:
        // batches must hold rows, ticks must offer batches, the queue
        // must hold at least one batch, and crash injection counts
        // *completed* ingests (so 1 is the earliest crash).
        for key in ["total_rows", "batch_rows", "arrivals_per_tick", "queue_capacity", "crash_at"] {
            if let Some(v) = section.get(key) {
                if v.as_usize() == Some(0) {
                    self.push(CheckRule::SpecValue, v.span, format!("{key:?} must be at least 1"));
                }
            }
        }
        if let (Some(hw), Some(cap)) = (spec.high_watermark, spec.queue_capacity) {
            if hw > cap {
                let span = section.get("high_watermark").map_or(section.span, |v| v.span);
                self.push(
                    CheckRule::SpecValue,
                    span,
                    format!("high watermark {hw} exceeds queue capacity {cap}"),
                );
            }
        }
        Some(spec)
    }

    /// An optional fraction field: a finite number in `[0, 1]`.
    fn opt_fraction(&mut self, node: &JsonNode, key: &str) -> Option<f64> {
        let v = node.get(key)?;
        let Some(n) = v.as_f64() else {
            self.push(
                CheckRule::SpecField,
                v.span,
                format!("{key:?} is {}, expected number", v.type_name()),
            );
            return None;
        };
        if !n.is_finite() {
            self.push(CheckRule::NonFiniteNumeric, v.span, format!("{key} is {n}"));
            return None;
        }
        if !(0.0..=1.0).contains(&n) {
            self.push(
                CheckRule::SpecValue,
                v.span,
                format!("{key} {n} outside the [0, 1] fraction range"),
            );
            return None;
        }
        Some(n)
    }

    fn tasks(&mut self, root: &JsonNode) -> Vec<TaskId> {
        let Some(v) = root.get("tasks") else {
            return TaskId::ALL.to_vec();
        };
        let Some(items) = v.as_arr() else {
            self.push(
                CheckRule::SpecField,
                v.span,
                format!("\"tasks\" is {}, expected an array of task names", v.type_name()),
            );
            return TaskId::ALL.to_vec();
        };
        if items.is_empty() {
            self.push(CheckRule::SpecValue, v.span, "\"tasks\" selects no tasks");
            return Vec::new();
        }
        let mut out = Vec::new();
        for item in items {
            let Some(s) = item.as_str() else {
                self.push(
                    CheckRule::SpecField,
                    item.span,
                    format!("task entry is {}, expected a name like \"CT 1\"", item.type_name()),
                );
                continue;
            };
            match TaskId::from_name(s) {
                Some(id) if out.contains(&id) => {
                    self.push(
                        CheckRule::SpecValue,
                        item.span,
                        format!("task {:?} listed twice", id.name()),
                    );
                }
                Some(id) => out.push(id),
                None => self.push(
                    CheckRule::SpecValue,
                    item.span,
                    format!("unknown task {s:?} (know CT 1 .. CT 5)"),
                ),
            }
        }
        out
    }

    fn scale(&mut self, root: &JsonNode) -> f64 {
        let Some(v) = root.get("scale") else {
            return 1.0;
        };
        let Some(n) = v.as_f64() else {
            self.push(
                CheckRule::SpecField,
                v.span,
                format!("\"scale\" is {}, expected number", v.type_name()),
            );
            return 1.0;
        };
        if !n.is_finite() {
            self.push(CheckRule::NonFiniteNumeric, v.span, format!("scale is {n}"));
            return 1.0;
        }
        if n <= 0.0 {
            self.push(CheckRule::SpecValue, v.span, format!("scale {n} is not strictly positive"));
            return 1.0;
        }
        n
    }

    fn fault_plan(&mut self, root: &JsonNode) -> Option<String> {
        let v = root.get("fault_plan")?;
        let Some(s) = v.as_str() else {
            self.push(
                CheckRule::SpecField,
                v.span,
                format!("\"fault_plan\" is {}, expected a CM_FAULTS string", v.type_name()),
            );
            return None;
        };
        if let Err(e) = FaultPlan::parse(s) {
            self.push(
                CheckRule::SpecValue,
                v.span,
                format!("fault plan does not parse: {}", e.message),
            );
            return None;
        }
        Some(s.to_owned())
    }

    fn scenarios(&mut self, root: &JsonNode) -> Vec<ScenarioSpec> {
        let Some(v) = root.get("scenarios") else {
            return Vec::new();
        };
        let Some(items) = v.as_arr() else {
            self.push(
                CheckRule::SpecField,
                v.span,
                format!("\"scenarios\" is {}, expected array", v.type_name()),
            );
            return Vec::new();
        };
        let mut out: Vec<ScenarioSpec> = Vec::new();
        for item in items {
            if item.as_obj().is_none() {
                self.push(
                    CheckRule::SpecField,
                    item.span,
                    format!("scenario entry is {}, expected object", item.type_name()),
                );
                continue;
            }
            if let Some(s) = self.scenario(item) {
                if out.iter().any(|prev| prev.name == s.name) {
                    let span = item.key_span("name").unwrap_or(item.span);
                    self.push(
                        CheckRule::SpecValue,
                        span,
                        format!("duplicate scenario name {:?}", s.name),
                    );
                }
                out.push(s);
            }
        }
        out
    }

    fn scenario(&mut self, node: &JsonNode) -> Option<ScenarioSpec> {
        self.known_fields(node, SCENARIO_FIELDS, "scenario");
        let name = self.req_str(node, "name", "scenario")?.to_owned();
        let text_sets = self.set_ladder(node, "text_sets");
        let image_sets = self.set_ladder(node, "image_sets");
        let label_source = self.label_source(node);
        let fusion = self.fusion(node);
        let include_modality_specific = match node.get("include_modality_specific") {
            None => true,
            Some(v) => v.as_bool().unwrap_or_else(|| {
                self.push(
                    CheckRule::SpecField,
                    v.span,
                    format!("\"include_modality_specific\" is {}, expected boolean", v.type_name()),
                );
                true
            }),
        };

        // Semantic checks: the same structural facts `check_fusion_plan`
        // and `ScenarioRunner::run` enforce on built artifacts, caught at
        // the spec token that causes them.
        let anchor = node.key_span("name").unwrap_or(node.span);
        let has_text = !text_sets.is_empty();
        let has_image = label_source != SpecLabelSource::None;
        if !has_text && !has_image {
            self.push(
                CheckRule::FusionDimChain,
                anchor,
                "scenario trains no modality (no text sets and no image labels)",
            );
        } else if !has_text && image_sets.is_empty() && !include_modality_specific {
            self.push(
                CheckRule::FusionDimChain,
                anchor,
                "scenario selects no features (empty set ladders without modality-specific)",
            );
        }
        if fusion == FusionKind::DeVise && !(has_text && has_image) {
            let span = node.get("fusion").map_or(anchor, |v| v.span);
            self.push(
                CheckRule::FusionDimChain,
                span,
                "DeViSE requires both an old (text) and a new (image) modality part",
            );
        }
        Some(ScenarioSpec {
            name,
            text_sets,
            image_sets,
            label_source,
            fusion,
            include_modality_specific,
        })
    }

    /// Parses a `"ABCD"`-style ladder string field into feature sets,
    /// pointing violations at the exact character.
    fn set_ladder(&mut self, node: &JsonNode, key: &str) -> Vec<FeatureSet> {
        let Some(v) = node.get(key) else {
            return Vec::new();
        };
        let Some(s) = v.as_str() else {
            self.push(
                CheckRule::SpecField,
                v.span,
                format!("{key:?} is {}, expected a ladder string like \"ABCD\"", v.type_name()),
            );
            return Vec::new();
        };
        let mut out = Vec::new();
        for (i, c) in s.chars().enumerate() {
            let set = match c {
                'A' => FeatureSet::A,
                'B' => FeatureSet::B,
                'C' => FeatureSet::C,
                'D' => FeatureSet::D,
                other => {
                    self.push(
                        CheckRule::SpecValue,
                        ladder_char_span(v.span, i),
                        format!("unknown feature set {other:?} (know A, B, C, D)"),
                    );
                    continue;
                }
            };
            if out.contains(&set) {
                self.push(
                    CheckRule::SpecValue,
                    ladder_char_span(v.span, i),
                    format!("feature set {c} listed twice"),
                );
            } else {
                out.push(set);
            }
        }
        out
    }

    fn label_source(&mut self, node: &JsonNode) -> SpecLabelSource {
        let Some(v) = node.get("label_source") else {
            return SpecLabelSource::Weak;
        };
        if let Some(s) = v.as_str() {
            return match s {
                "weak" => SpecLabelSource::Weak,
                "none" => SpecLabelSource::None,
                other => {
                    self.push(
                        CheckRule::SpecValue,
                        v.span,
                        format!(
                            "unknown label source {other:?} \
                             (know \"weak\", \"none\", {{\"fully_supervised\": n}})"
                        ),
                    );
                    SpecLabelSource::Weak
                }
            };
        }
        if v.as_obj().is_some() {
            self.known_fields(v, &["fully_supervised"], "label_source");
            if let Some(nv) = v.get("fully_supervised") {
                return match nv.as_usize() {
                    Some(0) => {
                        self.push(
                            CheckRule::SpecValue,
                            nv.span,
                            "fully supervised scenario needs at least 1 label",
                        );
                        SpecLabelSource::Weak
                    }
                    Some(n) => SpecLabelSource::FullySupervised(n),
                    None => {
                        self.push(
                            CheckRule::SpecField,
                            nv.span,
                            format!("\"fully_supervised\" must be a count, got {}", render(nv)),
                        );
                        SpecLabelSource::Weak
                    }
                };
            }
        }
        self.push(
            CheckRule::SpecField,
            v.span,
            format!("\"label_source\" is {}, expected \"weak\", \"none\", or {{\"fully_supervised\": n}}", v.type_name()),
        );
        SpecLabelSource::Weak
    }

    fn fusion(&mut self, node: &JsonNode) -> FusionKind {
        let Some(v) = node.get("fusion") else {
            return FusionKind::Early;
        };
        match v.as_str() {
            Some("early") => FusionKind::Early,
            Some("intermediate") => FusionKind::Intermediate,
            Some("devise") => FusionKind::DeVise,
            Some(other) => {
                self.push(
                    CheckRule::SpecValue,
                    v.span,
                    format!(
                        "unknown fusion strategy {other:?} \
                         (know \"early\", \"intermediate\", \"devise\")"
                    ),
                );
                FusionKind::Early
            }
            None => {
                self.push(
                    CheckRule::SpecField,
                    v.span,
                    format!("\"fusion\" is {}, expected string", v.type_name()),
                );
                FusionKind::Early
            }
        }
    }
}

/// Internal column kind for the inline `table` section.
enum ColKind {
    Num,
    Cat(usize),
    Emb(usize),
}

impl Walker<'_> {
    /// Validates the inline `table` artifact section:
    /// `{"schema": [{"name", "kind"}], "rows": [[cell, ...]]}` where a
    /// cell is a number, `{"cat": [ids]}`, `{"emb": [floats]}`, or null.
    fn table_section(&mut self, root: &JsonNode) {
        let Some(section) = root.get("table") else {
            return;
        };
        if section.as_obj().is_none() {
            self.push(
                CheckRule::SpecField,
                section.span,
                format!("\"table\" is {}, expected object", section.type_name()),
            );
            return;
        }
        self.known_fields(section, &["schema", "rows"], "table");
        let mut cols: Vec<(String, ColKind)> = Vec::new();
        let mut schema_ok = true;
        match section.get("schema").and_then(JsonNode::as_arr) {
            Some(defs) => {
                for def in defs {
                    let Some(name) = self.req_str(def, "name", "column") else {
                        schema_ok = false;
                        continue;
                    };
                    let name = name.to_owned();
                    self.known_fields(def, &["name", "kind"], "column");
                    let Some(kv) = def.get("kind") else {
                        self.push(
                            CheckRule::SpecField,
                            def.span,
                            format!("column {name:?} is missing required field \"kind\""),
                        );
                        schema_ok = false;
                        continue;
                    };
                    let kind = if kv.as_str() == Some("numeric") {
                        Some(ColKind::Num)
                    } else if let Some(vocab) = kv.get("categorical") {
                        vocab.as_arr().map(|v| ColKind::Cat(v.len())).or_else(|| {
                            self.push(
                                CheckRule::SpecField,
                                vocab.span,
                                "\"categorical\" must list the vocabulary as an array",
                            );
                            None
                        })
                    } else if let Some(dim) = kv.get("embedding") {
                        dim.as_usize().map(ColKind::Emb).or_else(|| {
                            self.push(
                                CheckRule::SpecField,
                                dim.span,
                                format!("\"embedding\" must be a width, got {}", render(dim)),
                            );
                            None
                        })
                    } else {
                        self.push(
                            CheckRule::SpecField,
                            kv.span,
                            "column kind must be \"numeric\", {\"categorical\": [...]}, \
                             or {\"embedding\": dim}",
                        );
                        None
                    };
                    match kind {
                        Some(k) => cols.push((name, k)),
                        None => schema_ok = false,
                    }
                }
            }
            None => {
                self.push(
                    CheckRule::SpecField,
                    section.span,
                    "\"table\" needs a \"schema\" array of column definitions",
                );
                schema_ok = false;
            }
        }
        let Some(rows) = section.get("rows").and_then(JsonNode::as_arr) else {
            self.push(CheckRule::SpecField, section.span, "\"table\" needs a \"rows\" array");
            return;
        };
        if !schema_ok {
            return;
        }
        for (r, row) in rows.iter().enumerate() {
            let Some(cells) = row.as_arr() else {
                self.push(
                    CheckRule::SpecField,
                    row.span,
                    format!("row {r} is {}, expected an array of cells", row.type_name()),
                );
                continue;
            };
            if cells.len() != cols.len() {
                self.push(
                    CheckRule::SchemaTableMismatch,
                    row.span,
                    format!("row {r} has {} cells, schema has {} columns", cells.len(), cols.len()),
                );
                continue;
            }
            for (cell, (name, kind)) in cells.iter().zip(&cols) {
                self.table_cell(cell, name, kind, r);
            }
        }
    }

    fn table_cell(&mut self, cell: &JsonNode, name: &str, kind: &ColKind, row: usize) {
        if cell.is_null() {
            return; // missing value — legitimate sparsity
        }
        match kind {
            ColKind::Num => match cell.as_f64() {
                Some(v) if !v.is_finite() => self.push(
                    CheckRule::NonFiniteNumeric,
                    cell.span,
                    format!("numeric value is {v} [col {name}, row {row}]"),
                ),
                Some(_) => {}
                None => self.push(
                    CheckRule::SchemaTableMismatch,
                    cell.span,
                    format!("cell is {}, column {name:?} is numeric", cell.type_name()),
                ),
            },
            ColKind::Cat(vocab_len) => match cell.get("cat").and_then(JsonNode::as_arr) {
                Some(ids) => {
                    for id in ids {
                        match id.as_usize() {
                            Some(v) if v >= *vocab_len => self.push(
                                CheckRule::VocabIndexOutOfBounds,
                                id.span,
                                format!(
                                    "id {v} >= vocabulary size {vocab_len} [col {name}, row {row}]"
                                ),
                            ),
                            Some(_) => {}
                            None => self.push(
                                CheckRule::SpecField,
                                id.span,
                                format!(
                                    "category id must be a non-negative integer, got {}",
                                    render(id)
                                ),
                            ),
                        }
                    }
                }
                None => self.push(
                    CheckRule::SchemaTableMismatch,
                    cell.span,
                    format!("cell lacks {{\"cat\": [...]}}, column {name:?} is categorical"),
                ),
            },
            ColKind::Emb(dim) => match cell.get("emb").and_then(JsonNode::as_arr) {
                Some(vals) => {
                    if vals.len() != *dim {
                        self.push(
                            CheckRule::EmbeddingDimMismatch,
                            cell.span,
                            format!(
                                "stored width {} != declared dim {dim} [col {name}, row {row}]",
                                vals.len()
                            ),
                        );
                        return;
                    }
                    for v in vals {
                        match v.as_f64() {
                            Some(x) if !x.is_finite() => self.push(
                                CheckRule::NonFiniteNumeric,
                                v.span,
                                format!(
                                    "embedding holds a non-finite component [col {name}, row {row}]"
                                ),
                            ),
                            Some(_) => {}
                            None => self.push(
                                CheckRule::SpecField,
                                v.span,
                                format!("embedding component must be a number, got {}", render(v)),
                            ),
                        }
                    }
                }
                None => self.push(
                    CheckRule::SchemaTableMismatch,
                    cell.span,
                    format!("cell lacks {{\"emb\": [...]}}, column {name:?} is an embedding"),
                ),
            },
        }
    }

    /// Validates the inline `votes` artifact section:
    /// `{"lfs": ["name", ...], "rows": [[-1, 0, 1], ...]}`.
    fn votes_section(&mut self, root: &JsonNode) {
        let Some(section) = root.get("votes") else {
            return;
        };
        if section.as_obj().is_none() {
            self.push(
                CheckRule::SpecField,
                section.span,
                format!("\"votes\" is {}, expected object", section.type_name()),
            );
            return;
        }
        self.known_fields(section, &["lfs", "rows"], "votes");
        let Some(lfs) = section.get("lfs").and_then(JsonNode::as_arr) else {
            self.push(CheckRule::SpecField, section.span, "\"votes\" needs an \"lfs\" name array");
            return;
        };
        let Some(rows) = section.get("rows").and_then(JsonNode::as_arr) else {
            self.push(CheckRule::SpecField, section.span, "\"votes\" needs a \"rows\" array");
            return;
        };
        let mut shape_ok = true;
        let mut columns: Vec<Vec<i64>> = vec![Vec::new(); lfs.len()];
        for (r, row) in rows.iter().enumerate() {
            let Some(votes) = row.as_arr() else {
                self.push(
                    CheckRule::SpecField,
                    row.span,
                    format!("row {r} is {}, expected an array of votes", row.type_name()),
                );
                shape_ok = false;
                continue;
            };
            if votes.len() != lfs.len() {
                self.push(
                    CheckRule::VoteMatrixShape,
                    row.span,
                    format!("row {r} has {} votes, registry has {} LFs", votes.len(), lfs.len()),
                );
                shape_ok = false;
                continue;
            }
            for (j, v) in votes.iter().enumerate() {
                match v.as_f64() {
                    Some(x) if x.fract() == 0.0 && (-1.0..=1.0).contains(&x) => {
                        columns[j].push(x as i64);
                    }
                    Some(x) => self.push(
                        CheckRule::InvalidVote,
                        v.span,
                        format!("vote {x} outside {{-1, 0, +1}} [lf {j}, row {r}]"),
                    ),
                    None => self.push(
                        CheckRule::SpecField,
                        v.span,
                        format!("vote must be a number, got {}", render(v)),
                    ),
                }
            }
        }
        if !shape_ok || rows.is_empty() {
            return;
        }
        // Degeneracy, anchored at the LF's name token.
        for (j, lf) in lfs.iter().enumerate() {
            let name = lf.as_str().unwrap_or("?");
            let col = &columns[j];
            if col.len() != rows.len() {
                continue; // some votes in this column were invalid
            }
            let first = col[0];
            if !col.iter().all(|&v| v == first) {
                continue;
            }
            if first == 0 {
                self.push(
                    CheckRule::DegenerateLf,
                    lf.span,
                    format!("lf {name} abstains on every row (zero coverage)"),
                );
            } else if rows.len() > 1 {
                self.push(
                    CheckRule::DegenerateLf,
                    lf.span,
                    format!(
                        "lf {name} votes {first:+} on every row (constant; carries no evidence)"
                    ),
                );
            }
        }
    }

    /// Validates the inline `fusion_plan` artifact section — the spanned
    /// twin of [`crate::artifact::check_fusion_plan`].
    fn fusion_plan_section(&mut self, root: &JsonNode) {
        let Some(section) = root.get("fusion_plan") else {
            return;
        };
        if section.as_obj().is_none() {
            self.push(
                CheckRule::SpecField,
                section.span,
                format!("\"fusion_plan\" is {}, expected object", section.type_name()),
            );
            return;
        }
        self.known_fields(
            section,
            &["kind", "part_dims", "embedding_dims", "projection"],
            "fusion_plan",
        );
        let kind = match section.get("kind") {
            None => {
                self.push(
                    CheckRule::SpecField,
                    section.span,
                    "\"fusion_plan\" needs a \"kind\" (\"early\", \"intermediate\", \"devise\")",
                );
                FusionKind::Early
            }
            Some(v) => match v.as_str() {
                Some("early") => FusionKind::Early,
                Some("intermediate") => FusionKind::Intermediate,
                Some("devise") => FusionKind::DeVise,
                Some(other) => {
                    self.push(
                        CheckRule::SpecValue,
                        v.span,
                        format!(
                            "unknown fusion strategy {other:?} \
                             (know \"early\", \"intermediate\", \"devise\")"
                        ),
                    );
                    FusionKind::Early
                }
                None => {
                    self.push(
                        CheckRule::SpecField,
                        v.span,
                        format!("\"kind\" is {}, expected string", v.type_name()),
                    );
                    FusionKind::Early
                }
            },
        };
        let Some(dims_node) = section.get("part_dims") else {
            self.push(
                CheckRule::SpecField,
                section.span,
                "\"fusion_plan\" needs a \"part_dims\" width array",
            );
            return;
        };
        let Some(dim_nodes) = dims_node.as_arr() else {
            self.push(
                CheckRule::SpecField,
                dims_node.span,
                format!("\"part_dims\" is {}, expected array", dims_node.type_name()),
            );
            return;
        };
        if dim_nodes.is_empty() {
            self.push(CheckRule::FusionDimChain, dims_node.span, "plan has no modality parts");
            return;
        }
        let mut dims: Vec<Option<usize>> = Vec::new();
        for d in dim_nodes {
            match d.as_usize() {
                Some(0) => {
                    self.push(
                        CheckRule::FusionDimChain,
                        d.span,
                        "modality part encodes to width 0",
                    );
                    dims.push(Some(0));
                }
                Some(n) => dims.push(Some(n)),
                None => {
                    self.push(
                        CheckRule::SpecField,
                        d.span,
                        format!("part width must be a non-negative integer, got {}", render(d)),
                    );
                    dims.push(None);
                }
            }
        }
        if matches!(kind, FusionKind::Early | FusionKind::DeVise) {
            if let Some(first) = dims[0] {
                for (node, d) in dim_nodes.iter().zip(&dims).skip(1) {
                    if let Some(d) = d {
                        if *d != first {
                            self.push(
                                CheckRule::FusionDimChain,
                                node.span,
                                format!(
                                    "dense width {d} differs from part 0's width {first}; \
                                     shared-layout fusion needs one width"
                                ),
                            );
                        }
                    }
                }
            }
        }
        if kind == FusionKind::DeVise {
            let emb = self.usize_pair(section, "embedding_dims");
            let proj = self.usize_pair(section, "projection");
            match (emb, proj) {
                (Some((a_emb, b_emb)), Some((src, dst))) => {
                    let span = section.get("projection").map_or(section.span, |v| v.span);
                    if src != b_emb {
                        self.push(
                            CheckRule::FusionDimChain,
                            span,
                            format!(
                                "projection source width {src} != new-model embedding width {b_emb}"
                            ),
                        );
                    }
                    if dst != a_emb {
                        self.push(
                            CheckRule::FusionDimChain,
                            span,
                            format!(
                                "projection target width {dst} != old-model embedding width {a_emb}"
                            ),
                        );
                    }
                }
                _ => self.push(
                    CheckRule::FusionDimChain,
                    section.span,
                    "DeViSE plan needs both embedding_dims and projection",
                ),
            }
        }
    }

    /// An optional `[a, b]` pair field of non-negative integers.
    fn usize_pair(&mut self, node: &JsonNode, key: &str) -> Option<(usize, usize)> {
        let v = node.get(key)?;
        let pair = v.as_arr().and_then(|items| match items {
            [a, b] => Some((a.as_usize()?, b.as_usize()?)),
            _ => None,
        });
        if pair.is_none() {
            self.push(
                CheckRule::SpecField,
                v.span,
                format!("{key:?} must be a pair of widths [a, b], got {}", render(v)),
            );
        }
        pair
    }

    /// Validates the inline `graph` artifact section:
    /// `{"n": vertices, "edges": [[u, v, weight], ...]}` (directed edge
    /// list; symmetry must be written out explicitly).
    fn graph_section(&mut self, root: &JsonNode) {
        let Some(section) = root.get("graph") else {
            return;
        };
        if section.as_obj().is_none() {
            self.push(
                CheckRule::SpecField,
                section.span,
                format!("\"graph\" is {}, expected object", section.type_name()),
            );
            return;
        }
        self.known_fields(section, &["n", "edges"], "graph");
        let Some(n) = self.opt_usize(section, "n") else {
            if section.get("n").is_none() {
                self.push(
                    CheckRule::SpecField,
                    section.span,
                    "\"graph\" needs an \"n\" vertex count",
                );
            }
            return;
        };
        let Some(edges) = section.get("edges").and_then(JsonNode::as_arr) else {
            self.push(CheckRule::SpecField, section.span, "\"graph\" needs an \"edges\" array");
            return;
        };
        // First pass: decode (u, v, w) triples, flagging local problems.
        let mut decoded: Vec<Option<(usize, usize, f32)>> = Vec::new();
        for edge in edges {
            let triple = edge.as_arr().and_then(|items| match items {
                [u, v, w] => Some((u, v, w)),
                _ => None,
            });
            let Some((u_node, v_node, w_node)) = triple else {
                self.push(
                    CheckRule::SpecField,
                    edge.span,
                    "edge must be a [from, to, weight] triple",
                );
                decoded.push(None);
                continue;
            };
            let (u, v, w) = match (u_node.as_usize(), v_node.as_usize(), w_node.as_f64()) {
                (Some(u), Some(v), Some(w)) => (u, v, w as f32),
                _ => {
                    self.push(
                        CheckRule::SpecField,
                        edge.span,
                        "edge endpoints must be vertex indices and the weight a number",
                    );
                    decoded.push(None);
                    continue;
                }
            };
            if !w.is_finite() {
                self.push(
                    CheckRule::GraphNonFiniteWeight,
                    w_node.span,
                    format!("weight is {w} [edge {u}->{v}]"),
                );
                decoded.push(None);
                continue;
            }
            if w <= 0.0 {
                self.push(
                    CheckRule::GraphInvalidWeight,
                    w_node.span,
                    format!("weight {w} is not strictly positive [edge {u}->{v}]"),
                );
            }
            if u == v {
                self.push(
                    CheckRule::GraphInvalidWeight,
                    edge.span,
                    format!("self-loop [edge {u}->{v}]"),
                );
                decoded.push(None);
                continue;
            }
            let mut in_range = true;
            for (idx, node) in [(u, u_node), (v, v_node)] {
                if idx >= n {
                    self.push(
                        CheckRule::GraphAsymmetry,
                        node.span,
                        format!("neighbor index {idx} >= vertex count {n}"),
                    );
                    in_range = false;
                }
            }
            decoded.push(in_range.then_some((u, v, w)));
        }
        // Second pass: symmetry, anchored at the un-mirrored edge.
        for (edge, dec) in edges.iter().zip(&decoded) {
            let Some((u, v, w)) = dec else { continue };
            let back = decoded
                .iter()
                .flatten()
                .find(|(bu, bv, _)| (*bu, *bv) == (*v, *u))
                .map(|(_, _, bw)| *bw);
            match back {
                None => self.push(
                    CheckRule::GraphAsymmetry,
                    edge.span,
                    format!("reverse edge missing [edge {u}->{v}]"),
                ),
                Some(bw) => {
                    if (bw - w).abs() > f32::EPSILON * w.abs().max(1.0) {
                        self.push(
                            CheckRule::GraphAsymmetry,
                            edge.span,
                            format!("reverse weight {bw} != forward weight {w} [edge {u}->{v}]"),
                        );
                    }
                }
            }
        }
    }
}

/// Span of the `i`-th ladder character inside a quoted ASCII string
/// token.
fn ladder_char_span(string_span: Span, i: usize) -> Span {
    let byte = string_span.byte + 1 + i;
    Span::new(byte, byte + 1, string_span.line, string_span.col + 1 + i as u32)
}

/// Short value rendering for diagnostics.
fn render(v: &JsonNode) -> String {
    v.to_json().to_string_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact;

    fn violations(src: &str) -> Vec<Violation> {
        validate_spec_source(src, "specs/test.json").1
    }

    fn rules(src: &str) -> Vec<&'static str> {
        let mut r: Vec<_> = violations(src).iter().map(|v| v.rule.name()).collect();
        r.sort_unstable();
        r
    }

    #[test]
    fn minimal_clean_spec_parses_with_defaults() {
        let (spec, v) = validate_spec_source(r#"{"name": "t"}"#, "specs/t.json");
        assert!(v.is_empty(), "{v:?}");
        let spec = spec.unwrap();
        assert_eq!(spec.tasks, TaskId::ALL.to_vec());
        assert_eq!(spec.scale, 1.0);
        assert_eq!(spec.seeds, 1);
        assert_eq!(spec.seed, 42);
        assert!(spec.scenarios.is_empty());
    }

    #[test]
    fn full_scenario_spec_round_trips() {
        let src = r#"{
            "name": "fusion_compare",
            "tasks": ["CT 1", "ct2"],
            "scale": 0.5,
            "seeds": 3,
            "n_labeled_image": 4000,
            "scenarios": [
                {"name": "cross", "text_sets": "ABCD", "image_sets": "ABCD",
                 "label_source": "weak", "fusion": "devise"},
                {"name": "hand", "image_sets": "AB",
                 "label_source": {"fully_supervised": 500}, "fusion": "early",
                 "include_modality_specific": false}
            ]
        }"#;
        let (spec, v) = validate_spec_source(src, "specs/t.json");
        assert!(v.is_empty(), "{v:?}");
        let spec = spec.unwrap();
        assert_eq!(spec.tasks, vec![TaskId::Ct1, TaskId::Ct2]);
        assert_eq!(spec.n_labeled_image, Some(4000));
        assert_eq!(spec.scenarios.len(), 2);
        assert_eq!(spec.scenarios[0].fusion, FusionKind::DeVise);
        assert_eq!(spec.scenarios[0].text_sets, FeatureSet::SHARED.to_vec());
        assert_eq!(spec.scenarios[1].label_source, SpecLabelSource::FullySupervised(500));
        assert!(!spec.scenarios[1].include_modality_specific);
    }

    #[test]
    fn syntax_errors_carry_the_failure_position() {
        let src = "{\"name\": \"t\",\n  \"tasks\": [}";
        let v = violations(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, CheckRule::SpecSyntax);
        let span = v[0].span.unwrap();
        assert_eq!((span.line, span.col), (2, 13), "anchored at the stray '}}'");
        assert_eq!(v[0].location, "specs/test.json:2:13");
    }

    #[test]
    fn unknown_fields_and_values_point_at_their_tokens() {
        let src = "{\"name\": \"t\",\n  \"tusks\": [\"CT 1\"],\n  \"tasks\": [\"CT 9\"]}";
        let v = violations(src);
        assert_eq!(v.len(), 2, "{v:?}");
        let field = v.iter().find(|x| x.rule == CheckRule::SpecField).unwrap();
        assert_eq!((field.line(), field.col()), (2, 3), "anchored at the \"tusks\" key");
        let value = v.iter().find(|x| x.rule == CheckRule::SpecValue).unwrap();
        assert_eq!((value.line(), value.col()), (3, 13), "anchored at the bad task name");
    }

    #[test]
    fn ladder_violations_point_at_the_exact_character() {
        let src = r#"{"name": "t", "scenarios": [{"name": "s", "text_sets": "ABXA"}]}"#;
        let v = violations(src);
        // X unknown, second A duplicate.
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == CheckRule::SpecValue));
        let cols: Vec<u32> = v.iter().map(Violation::col).collect();
        let base = src.find("\"ABXA\"").unwrap() as u32 + 1; // 0-based col of 'A'
        assert_eq!(cols, vec![base + 3, base + 4], "chars X and the repeated A");
    }

    #[test]
    fn devise_without_text_is_a_fusion_dim_chain_violation() {
        let src = r#"{"name": "t", "scenarios": [
            {"name": "s", "image_sets": "AB", "fusion": "devise"}]}"#;
        assert_eq!(rules(src), vec!["fusion-dim-chain"]);
        let src2 = r#"{"name": "t", "scenarios": [
            {"name": "s", "text_sets": "AB", "image_sets": "AB",
             "label_source": "none", "fusion": "devise"}]}"#;
        assert_eq!(rules(src2), vec!["fusion-dim-chain"]);
    }

    #[test]
    fn non_finite_scale_is_caught_as_non_finite_numeric() {
        assert_eq!(rules(r#"{"name": "t", "scale": 1e999}"#), vec!["non-finite-numeric"]);
        assert_eq!(rules(r#"{"name": "t", "scale": -0.5}"#), vec!["spec-value"]);
    }

    #[test]
    fn fault_plans_are_parsed_by_the_real_parser() {
        let ok = r#"{"name": "t", "fault_plan": "seed=7;topics=unavailable@0.5"}"#;
        assert!(violations(ok).is_empty());
        let bad = r#"{"name": "t", "fault_plan": "topics=exploded"}"#;
        let v = violations(bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, CheckRule::SpecValue);
    }

    /// The spanned fusion-plan walker must agree rule-for-rule with
    /// `artifact::check_fusion_plan` on the same plan.
    #[test]
    fn fusion_plan_walker_matches_artifact_check() {
        let cases = [
            (
                r#"{"kind": "early", "part_dims": [4, 4]}"#,
                FusionKind::Early,
                vec![4, 4],
                None,
                None,
            ),
            (
                r#"{"kind": "early", "part_dims": [4, 0, 3]}"#,
                FusionKind::Early,
                vec![4, 0, 3],
                None,
                None,
            ),
            (
                r#"{"kind": "intermediate", "part_dims": [4, 9]}"#,
                FusionKind::Intermediate,
                vec![4, 9],
                None,
                None,
            ),
            (
                r#"{"kind": "devise", "part_dims": [4, 4], "embedding_dims": [16, 8], "projection": [9, 17]}"#,
                FusionKind::DeVise,
                vec![4, 4],
                Some((16, 8)),
                Some((9, 17)),
            ),
            (
                r#"{"kind": "devise", "part_dims": [4, 4]}"#,
                FusionKind::DeVise,
                vec![4, 4],
                None,
                None,
            ),
        ];
        for (section, kind, part_dims, embedding_dims, projection) in cases {
            let src = format!(r#"{{"name": "t", "fusion_plan": {section}}}"#);
            let spec_rules = rules(&src);
            let plan = artifact::FusionPlan { kind, part_dims, embedding_dims, projection };
            let mut artifact_rules: Vec<&'static str> =
                artifact::check_fusion_plan(&plan, "plan").iter().map(|v| v.rule.name()).collect();
            artifact_rules.sort_unstable();
            assert_eq!(spec_rules, artifact_rules, "section {section}");
        }
    }

    /// The spanned vote walker must agree rule-for-rule with the
    /// artifact vote checks on the same matrix.
    #[test]
    fn votes_walker_matches_artifact_checks() {
        use cm_labelmodel::LabelMatrix;
        // An out-of-range vote cannot even be constructed as a
        // LabelMatrix (the constructor asserts), so the spec walker is
        // the only layer that can point at it.
        let bad = r#"{"name": "t", "votes": {"lfs": ["a", "b"], "rows": [[7, 0], [-1, 1]]}}"#;
        assert_eq!(rules(bad), vec!["invalid-vote"]);

        let cases: [(&str, Vec<i8>, usize); 3] = [
            (r#"{"lfs": ["a", "b"], "rows": [[1, 0], [-1, 1]]}"#, vec![1, 0, -1, 1], 2),
            (r#"{"lfs": ["a", "b"], "rows": [[0, 1], [0, -1]]}"#, vec![0, 1, 0, -1], 2),
            (r#"{"lfs": ["a", "b"], "rows": [[1, 1], [1, -1]]}"#, vec![1, 1, 1, -1], 2),
        ];
        for (section, votes, n_lfs) in cases {
            let src = format!(r#"{{"name": "t", "votes": {section}}}"#);
            let spec_rules = rules(&src);
            let n_rows = votes.len() / n_lfs;
            let names: Vec<String> = ["a", "b"].iter().map(|s| (*s).to_owned()).collect();
            let m = LabelMatrix::from_votes(n_rows, n_lfs, votes, names.clone());
            let mut artifact_rules: Vec<&'static str> =
                artifact::check_vote_matrix(&m, &names, n_rows, "m")
                    .iter()
                    .chain(artifact::check_lf_degeneracy(&m, "m").iter())
                    .map(|v| v.rule.name())
                    .collect();
            artifact_rules.sort_unstable();
            assert_eq!(spec_rules, artifact_rules, "section {section}");
        }
    }

    #[test]
    fn serve_section_parses_clean_and_flags_bad_knobs() {
        let ok = r#"{"name": "t", "serve": {
            "batch_rows": 40, "queue_capacity": 8, "high_watermark": 6,
            "crash_at": 3, "min_coverage": 0.02, "max_abstain": 0.995}}"#;
        let (spec, v) = validate_spec_source(ok, "specs/t.json");
        assert!(v.is_empty(), "{v:?}");
        let serve = spec.unwrap().serve.unwrap();
        assert_eq!(serve.batch_rows, Some(40));
        assert_eq!(serve.queue_capacity, Some(8));
        assert_eq!(serve.high_watermark, Some(6));
        assert_eq!(serve.crash_at, Some(3));
        assert_eq!(serve.min_coverage, Some(0.02));
        assert_eq!(serve.max_abstain, Some(0.995));

        // Unknown field, mistyped knob, zero count, inverted watermark,
        // out-of-range fraction: each anchors at its own token.
        assert_eq!(
            rules(r#"{"name": "t", "serve": {"queue_depth": 8}}"#),
            vec!["spec-field"],
            "unknown serve field"
        );
        assert_eq!(
            rules(r#"{"name": "t", "serve": {"batch_rows": "many"}}"#),
            vec!["spec-field"],
            "mistyped count"
        );
        assert_eq!(
            rules(r#"{"name": "t", "serve": {"crash_at": 0}}"#),
            vec!["spec-value"],
            "crash_at counts completed ingests"
        );
        assert_eq!(
            rules(r#"{"name": "t", "serve": {"queue_capacity": 4, "high_watermark": 6}}"#),
            vec!["spec-value"],
            "watermark above capacity"
        );
        assert_eq!(
            rules(r#"{"name": "t", "serve": {"max_abstain": 1.5}}"#),
            vec!["spec-value"],
            "fraction out of range"
        );
        assert_eq!(
            rules(r#"{"name": "t", "serve": {"min_coverage": 1e999}}"#),
            vec!["non-finite-numeric"],
            "non-finite fraction"
        );
    }

    #[test]
    fn graph_symmetry_violations_anchor_at_the_edge() {
        let src = r#"{"name": "t", "graph": {"n": 3,
            "edges": [[0, 1, 0.5], [1, 0, 0.25], [0, 2, 1.0]]}}"#;
        let v = violations(src);
        // Like the artifact check, a weight mismatch reports from both
        // directions; the unmirrored edge reports once.
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|x| x.rule == CheckRule::GraphAsymmetry));
        assert!(v[0].message.contains("reverse weight 0.25 != forward weight 0.5"));
        assert!(v[1].message.contains("reverse weight 0.5 != forward weight 0.25"));
        assert!(v[2].message.contains("reverse edge missing"));
    }
}
