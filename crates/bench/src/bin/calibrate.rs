//! Diagnostic binary: prints every intermediate quantity of a single-task
//! pipeline run, for calibrating the generative world against the paper's
//! qualitative shapes. Not part of the paper's tables.

use cm_bench::{load_spec, spec_reservoir, spec_scale, spec_scenario, spec_seed, TaskRun};
use cm_featurespace::FeatureSet;
use cm_orgsim::TaskId;
use cm_pipeline::{curate, CurationConfig, Scenario};

fn main() {
    let spec = load_spec("calibrate");
    let scale = spec_scale(&spec);
    let seed = spec_seed(&spec);
    let id = match std::env::var("CM_TASK") {
        Ok(t) => TaskId::from_name(&t).expect("unknown CM_TASK"),
        Err(_) => spec.tasks[0],
    };

    let run = TaskRun::new(id, scale, seed, spec_reservoir(&spec, scale));
    let d = &run.data;
    println!(
        "{}: text={} pool={} test={} reservoir={} pool_pos_rate={:.3} borderline_share={:.3}",
        id.name(),
        d.text.len(),
        d.pool.len(),
        d.test.len(),
        d.labeled_image.len(),
        d.pool.positive_rate(),
        d.pool.borderline.iter().filter(|&&b| b).count() as f64
            / d.pool.labels.iter().filter(|l| l.is_positive()).count().max(1) as f64
    );

    for (label, lp) in [("WS w/o LP", false), ("WS with LP", true)] {
        let cfg = CurationConfig { use_label_propagation: lp, seed, ..run.curation_config(seed) };
        let out = curate(d, &cfg);
        println!(
            "{label}: lfs={} cov={:.3} P={:.3} R={:.3} F1={:.3} conflict={:.3} mine={:?} prop={:?}",
            out.lf_names.len(),
            out.ws_quality.coverage,
            out.ws_quality.precision,
            out.ws_quality.recall,
            out.ws_quality.f1,
            out.conflict,
            out.mining_time,
            out.propagation_time,
        );
    }

    let runner = run.runner();
    let baseline = runner.baseline_auprc().unwrap();
    println!("baseline (embeddings only, fully supervised) AUPRC = {baseline:.4}");

    let curation = curate(d, &run.curation_config(seed));
    let sets = FeatureSet::SHARED;
    for (name, eval) in [
        ("text-only", runner.run(&spec_scenario(&spec, "text-only T+ABCD"), None)),
        ("image-WS", runner.run(&spec_scenario(&spec, "image-only I+ABCD"), Some(&curation))),
        ("cross-modal", runner.run(&spec_scenario(&spec, "cross-modal T,I+ABCD"), Some(&curation))),
        (
            "fully-sup n=1000",
            runner.run(&Scenario::fully_supervised(&sets, (1000.0 * scale) as usize), None),
        ),
        (
            "fully-sup n=all",
            runner.run(&Scenario::fully_supervised(&sets, d.labeled_image.len()), None),
        ),
    ] {
        let eval = eval.unwrap();
        println!(
            "{name:<18} AUPRC={:.4} rel={:.2}x n_train={}",
            eval.auprc,
            eval.auprc / baseline.max(1e-9),
            eval.n_train_rows
        );
    }
}
