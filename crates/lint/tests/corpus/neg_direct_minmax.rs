//@ path: crates/demo/src/lib.rs
// Seeded negative (float-ordering): two-argument max/min calls have
// explicit operands — no iteration order can leak into the result — and
// the MAX/MIN consts are not the functions.

pub fn f(a: f64, b: f64) -> f64 {
    let direct = f64::max(a, b);
    let method = a.max(b).min(direct);
    let clamped = method.clamp(f64::MIN, f64::MAX);
    clamped
}
