//! Fault plans: which services fail, how, and under which seed.
//!
//! A [`FaultPlan`] is the complete, declarative description of one fault
//! scenario. It can be built programmatically or parsed from the compact
//! `CM_FAULTS` spec string:
//!
//! ```text
//! seed=7;topics=unavailable@0.5;keywords=transient(2);page_quality=latency(200)@0.3
//! ```
//!
//! Each `;`-separated clause names a service and a [`FaultMode`], with an
//! optional `@rate` giving the per-call probability the fault fires
//! (default `1.0`). The plan carries its own seed; every fault decision is
//! drawn from a stream derived from `(seed, service, row)`, so a plan
//! reproduces bit-for-bit regardless of thread count or call interleaving.

use cm_featurespace::{CmError, CmResult, ErrorKind};

/// Environment variable holding the fault spec string.
pub const CM_FAULTS_ENV: &str = "CM_FAULTS";

/// How a faulted service misbehaves on a call where the fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The service is down: the call fails and retries cannot save it.
    Unavailable,
    /// The call fails `fails` consecutive times, then succeeds — the shape
    /// a retry loop is built for.
    Transient {
        /// Number of consecutive failures before the call succeeds.
        fails: u32,
    },
    /// The call succeeds but only after a simulated delay, eating into the
    /// per-service deadline budget.
    Latency {
        /// Simulated delay per attempt, in milliseconds.
        delay_ms: u64,
    },
    /// The call "succeeds" but returns garbage: a non-finite numeric, an
    /// out-of-vocabulary category id, or a perturbed embedding.
    Corrupt,
    /// The call returns a frozen earlier observation for this service
    /// instead of the live value (a stale cache or lagging replica).
    Stale,
}

impl FaultMode {
    /// Short stable name, used in specs, stats, and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultMode::Unavailable => "unavailable",
            FaultMode::Transient { .. } => "transient",
            FaultMode::Latency { .. } => "latency",
            FaultMode::Corrupt => "corrupt",
            FaultMode::Stale => "stale",
        }
    }
}

/// One service's fault assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Name of the service (must exist in the registry the plan is applied
    /// to; checked when the access layer is built).
    pub service: String,
    /// How the service misbehaves when the fault fires.
    pub mode: FaultMode,
    /// Per-call probability in `(0, 1]` that the fault fires.
    pub rate: f64,
}

/// A complete fault scenario: a seed plus per-service fault assignments.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for every fault decision stream. Independent of the world seed,
    /// so the same data can be replayed under different fault draws.
    pub seed: u64,
    /// Per-service fault assignments; empty means no faults.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The no-fault plan: every service call passes through untouched.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether any service has a fault assigned.
    pub fn is_enabled(&self) -> bool {
        !self.specs.is_empty()
    }

    /// The fault assignment for `service`, if any.
    pub fn spec_for(&self, service: &str) -> Option<&FaultSpec> {
        self.specs.iter().find(|s| s.service == service)
    }

    /// Reads the plan from the `CM_FAULTS` environment variable. Unset or
    /// empty means [`FaultPlan::disabled`]; a malformed spec is an error
    /// (silent fallback would mask typos in CI scenarios).
    pub fn from_env() -> CmResult<Self> {
        match std::env::var(CM_FAULTS_ENV) {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec),
            _ => Ok(Self::disabled()),
        }
    }

    /// Parses a spec string like
    /// `seed=7;topics=unavailable@0.5;keywords=transient(2)`.
    ///
    /// Clauses are `;`-separated. `seed=N` (at most once) sets the fault
    /// seed; every other clause is `service=mode[(arg)][@rate]` where mode
    /// is one of `unavailable`, `transient(fails)`, `latency(delay_ms)`,
    /// `corrupt`, `stale` and `rate` is in `(0, 1]` (default `1`).
    pub fn parse(spec: &str) -> CmResult<Self> {
        const LOC: &str = "FaultPlan::parse";
        let bad = |msg: String| CmError::new(ErrorKind::InvalidConfig, LOC, msg);
        let mut plan = FaultPlan::disabled();
        let mut seed_seen = false;
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| bad(format!("clause {clause:?} is not `name=value`")))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                if seed_seen {
                    return Err(bad("duplicate seed clause".to_owned()));
                }
                seed_seen = true;
                plan.seed =
                    value.parse::<u64>().map_err(|e| bad(format!("bad seed {value:?}: {e}")))?;
                continue;
            }
            if key.is_empty() {
                return Err(bad(format!("clause {clause:?} has an empty service name")));
            }
            if plan.spec_for(key).is_some() {
                return Err(bad(format!("service {key:?} assigned twice")));
            }
            let (mode_str, rate) = match value.split_once('@') {
                Some((m, r)) => {
                    let rate = r
                        .trim()
                        .parse::<f64>()
                        .map_err(|e| bad(format!("bad rate {r:?} for {key:?}: {e}")))?;
                    if !(rate > 0.0 && rate <= 1.0) {
                        return Err(bad(format!("rate {rate} for {key:?} must be in (0, 1]")));
                    }
                    (m.trim(), rate)
                }
                None => (value, 1.0),
            };
            let mode = parse_mode(mode_str, key)?;
            plan.specs.push(FaultSpec { service: key.to_owned(), mode, rate });
        }
        Ok(plan)
    }
}

/// Parses a mode token like `transient(2)` or `unavailable`.
fn parse_mode(token: &str, service: &str) -> CmResult<FaultMode> {
    const LOC: &str = "FaultPlan::parse";
    let bad = |msg: String| CmError::new(ErrorKind::InvalidConfig, LOC, msg);
    let (name, arg) = match token.split_once('(') {
        Some((name, rest)) => {
            let arg = rest
                .strip_suffix(')')
                .ok_or_else(|| bad(format!("unclosed `(` in mode {token:?} for {service:?}")))?;
            (name.trim(), Some(arg.trim()))
        }
        None => (token, None),
    };
    let need_arg = |what: &str| {
        arg.ok_or_else(|| bad(format!("mode {name:?} for {service:?} needs ({what})")))
    };
    let no_arg = |mode: FaultMode| {
        if arg.is_some() {
            Err(bad(format!("mode {name:?} for {service:?} takes no argument")))
        } else {
            Ok(mode)
        }
    };
    match name {
        "unavailable" => no_arg(FaultMode::Unavailable),
        "corrupt" => no_arg(FaultMode::Corrupt),
        "stale" => no_arg(FaultMode::Stale),
        "transient" => {
            let raw = need_arg("fails")?;
            let fails = raw
                .parse::<u32>()
                .map_err(|e| bad(format!("bad transient fails {raw:?} for {service:?}: {e}")))?;
            if fails == 0 {
                return Err(bad(format!("transient fails for {service:?} must be >= 1")));
            }
            Ok(FaultMode::Transient { fails })
        }
        "latency" => {
            let raw = need_arg("delay_ms")?;
            let delay_ms = raw
                .parse::<u64>()
                .map_err(|e| bad(format!("bad latency delay {raw:?} for {service:?}: {e}")))?;
            if delay_ms == 0 {
                return Err(bad(format!("latency delay for {service:?} must be >= 1 ms")));
            }
            Ok(FaultMode::Latency { delay_ms })
        }
        other => Err(bad(format!("unknown fault mode {other:?} for {service:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_is_empty() {
        let p = FaultPlan::disabled();
        assert!(!p.is_enabled());
        assert_eq!(p.seed, 0);
        assert!(p.spec_for("topics").is_none());
    }

    #[test]
    fn parses_full_grammar() {
        let p = FaultPlan::parse(
            "seed=7; topics=unavailable@0.5; keywords=transient(2); \
             page_quality=latency(200)@0.3; user_reports=corrupt@0.2; kg_entities=stale",
        )
        .unwrap();
        assert_eq!(p.seed, 7);
        assert!(p.is_enabled());
        assert_eq!(p.specs.len(), 5);
        let topics = p.spec_for("topics").unwrap();
        assert_eq!(topics.mode, FaultMode::Unavailable);
        assert_eq!(topics.rate, 0.5);
        let kw = p.spec_for("keywords").unwrap();
        assert_eq!(kw.mode, FaultMode::Transient { fails: 2 });
        assert_eq!(kw.rate, 1.0);
        let pq = p.spec_for("page_quality").unwrap();
        assert_eq!(pq.mode, FaultMode::Latency { delay_ms: 200 });
        assert_eq!(p.spec_for("kg_entities").unwrap().mode, FaultMode::Stale);
    }

    #[test]
    fn empty_spec_is_disabled() {
        assert!(!FaultPlan::parse("").unwrap().is_enabled());
        assert!(!FaultPlan::parse("  ;  ; ").unwrap().is_enabled());
    }

    #[test]
    fn seed_only_plan_is_disabled() {
        let p = FaultPlan::parse("seed=42").unwrap();
        assert_eq!(p.seed, 42);
        assert!(!p.is_enabled());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "topics",                      // no `=`
            "=unavailable",                // empty service
            "topics=down",                 // unknown mode
            "topics=unavailable@0",        // rate out of range
            "topics=unavailable@1.5",      // rate out of range
            "topics=unavailable@x",        // non-numeric rate
            "topics=transient",            // missing arg
            "topics=transient(0)",         // zero fails
            "topics=transient(2",          // unclosed paren
            "topics=latency(0)",           // zero delay
            "topics=unavailable(3)",       // spurious arg
            "topics=stale;topics=corrupt", // duplicate service
            "seed=1;seed=2",               // duplicate seed
            "seed=abc",                    // bad seed
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert_eq!(err.kind, ErrorKind::InvalidConfig, "spec {bad:?}");
        }
    }

    #[test]
    fn mode_names_are_stable() {
        assert_eq!(FaultMode::Unavailable.name(), "unavailable");
        assert_eq!(FaultMode::Transient { fails: 3 }.name(), "transient");
        assert_eq!(FaultMode::Latency { delay_ms: 5 }.name(), "latency");
        assert_eq!(FaultMode::Corrupt.name(), "corrupt");
        assert_eq!(FaultMode::Stale.name(), "stale");
    }
}
