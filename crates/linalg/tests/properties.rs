//! Randomized tests for the linear-algebra kernels (seeded, in-tree PRNG).

use cm_linalg::rng::{Rng, StdRng};
use cm_linalg::{dot, softmax_in_place, Matrix};

const CASES: u64 = 48;

fn matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-10.0f32..10.0)).collect();
    Matrix::from_vec(rows, cols, data)
}

fn vector(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-10.0f32..10.0)).collect()
}

fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert!((x - y).abs() <= tol, "{x} vs {y}");
    }
}

/// (A B) C == A (B C) within float tolerance.
#[test]
fn matmul_is_associative() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xA550C ^ case);
        let a = matrix(&mut rng, 3, 4);
        let b = matrix(&mut rng, 4, 5);
        let c = matrix(&mut rng, 5, 2);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert_close(&left, &right, 1e-2);
    }
}

/// A (B + C) == A B + A C.
#[test]
fn matmul_distributes() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD157 ^ case);
        let a = matrix(&mut rng, 3, 4);
        let b = matrix(&mut rng, 4, 3);
        let c = matrix(&mut rng, 4, 3);
        let mut sum = b.clone();
        sum.add_assign(&c);
        let left = a.matmul(&sum);
        let mut right = a.matmul(&b);
        right.add_assign(&a.matmul(&c));
        assert_close(&left, &right, 1e-3);
    }
}

/// (A B)^T == B^T A^T.
#[test]
fn transpose_reverses_products() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7123 ^ case);
        let a = matrix(&mut rng, 3, 4);
        let b = matrix(&mut rng, 4, 2);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        assert_close(&left, &right, 1e-4);
    }
}

/// matvec agrees with matmul against a column matrix.
#[test]
fn matvec_matches_matmul() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x3A7 ^ case);
        let a = matrix(&mut rng, 4, 3);
        let x = vector(&mut rng, 3);
        let via_vec = a.matvec(&x);
        let col = Matrix::from_vec(3, 1, x);
        let via_mat = a.matmul(&col);
        for (i, v) in via_vec.iter().enumerate() {
            assert!((v - via_mat[(i, 0)]).abs() < 1e-4);
        }
    }
}

/// dot is symmetric and |dot| obeys Cauchy-Schwarz.
#[test]
fn dot_axioms() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD07 ^ case);
        let x = vector(&mut rng, 6);
        let y = vector(&mut rng, 6);
        let xy = dot(&x, &y);
        let yx = dot(&y, &x);
        assert!((xy - yx).abs() < 1e-4);
        let bound = cm_linalg::l2_norm(&x) * cm_linalg::l2_norm(&y);
        assert!(xy.abs() <= bound * (1.0 + 1e-4) + 1e-5);
    }
}

/// softmax outputs a probability vector and preserves argmax.
#[test]
fn softmax_is_a_distribution() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x50F ^ case);
        let mut x = vector(&mut rng, 5);
        let argmax_before = cm_linalg::argmax(&x);
        softmax_in_place(&mut x);
        let sum: f32 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(cm_linalg::argmax(&x), argmax_before);
    }
}

/// Frobenius norm is zero iff the matrix is zero; scaling scales it.
#[test]
fn frobenius_scaling() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xF20 ^ case);
        let a = matrix(&mut rng, 3, 3);
        let s = rng.gen_range(-4.0f32..4.0);
        let n = a.frobenius_norm();
        let mut b = a.clone();
        b.scale(s);
        assert!((b.frobenius_norm() - s.abs() * n).abs() < 1e-2 * (1.0 + n));
    }
}
