//! Integration of the propagation stack (similarity -> graph -> scores ->
//! threshold LF) over world-generated data, including the paper's §4.4
//! claim: propagation recovers borderline positives that itemset mining
//! misses.

use cross_modal::featurespace::SimilarityConfig;
use cross_modal::prelude::*;
use cross_modal::propagation::{propagate, GraphBuilder, PropagationConfig};

#[test]
fn propagation_scores_rank_pool_positives() {
    // CT 5 has strong borderline structure; scores over the pool should
    // rank true positives far above the base rate.
    let task = TaskConfig::paper(TaskId::Ct5).scaled(0.04);
    let world = World::build(WorldConfig::new(task.clone(), 3));
    let text = world.generate(ModalityKind::Text, 2_000, 1);
    let pool = world.generate(ModalityKind::Image, 800, 2);

    let mut columns = world.schema().columns_in_sets(&FeatureSet::SHARED, false);
    columns.push(world.schema().column("img_embedding").unwrap());
    let mut combined = text.table.clone();
    combined.extend_from(&pool.table);
    let sim = SimilarityConfig::uniform(columns).fit_scales(&combined);
    let graph = GraphBuilder::approximate(10, combined.len()).build(&combined, &sim, 7);

    let seeds: Vec<(usize, f64)> = (0..text.len()).map(|r| (r, text.labels[r].as_f64())).collect();
    let cfg = PropagationConfig { max_iters: 50, tol: 1e-4, prior: 0.07 };
    let scores = propagate(&graph, &seeds, &cfg);
    let pool_scores = &scores[text.len()..];

    let truth: Vec<bool> = pool.labels.iter().map(|l| l.is_positive()).collect();
    let ap = auprc(pool_scores, &truth);
    let rate = pool.positive_rate();
    assert!(
        ap > rate * 2.5,
        "propagation AUPRC {ap:.3} should clearly beat the base rate {rate:.3}"
    );
}

#[test]
fn propagation_lifts_borderline_recall_in_curation() {
    // CT 4: most positives are borderline. Compare curated recall over
    // *borderline* pool positives with and without the propagation LF.
    let data = TaskData::generate(TaskConfig::paper(TaskId::Ct4).scaled(0.08), 5, Some(64));
    let base = CurationConfig::default();
    let without = curate(&data, &CurationConfig { use_label_propagation: false, ..base.clone() });
    let with = curate(&data, &base);

    let borderline_recall = |out: &CurationOutput| {
        let mut hit = 0usize;
        let mut total = 0usize;
        for r in 0..data.pool.len() {
            if data.pool.labels[r].is_positive() && data.pool.borderline[r] {
                total += 1;
                if out.covered[r] && out.probabilistic_labels[r] >= 0.5 {
                    hit += 1;
                }
            }
        }
        (hit, total)
    };
    let (hit_wo, total) = borderline_recall(&without);
    let (hit_w, _) = borderline_recall(&with);
    assert!(total > 0, "fixture must contain borderline positives");
    assert!(
        hit_w >= hit_wo,
        "propagation must not lose borderline positives: {hit_w} vs {hit_wo} of {total}"
    );
    // And overall recall must not degrade materially.
    assert!(
        with.ws_quality.recall >= without.ws_quality.recall * 0.85,
        "with LP {:?} vs without {:?}",
        with.ws_quality,
        without.ws_quality
    );
}

#[test]
fn graph_connects_across_modalities() {
    // Text and image rows must end up in one connected similarity
    // structure (that is how labels travel across the gap).
    let task = TaskConfig::paper(TaskId::Ct1).scaled(0.02);
    let world = World::build(WorldConfig::new(task, 9));
    let text = world.generate(ModalityKind::Text, 300, 1);
    let pool = world.generate(ModalityKind::Image, 300, 2);
    let columns = world.schema().columns_in_sets(&FeatureSet::SHARED, false);
    let mut combined = text.table.clone();
    combined.extend_from(&pool.table);
    let sim = SimilarityConfig::uniform(columns).fit_scales(&combined);
    let graph = GraphBuilder::exact(8).build(&combined, &sim, 0);

    let mut cross_edges = 0usize;
    for v in 0..text.len() {
        let (neigh, _) = graph.neighbors(v);
        cross_edges += neigh.iter().filter(|&&u| (u as usize) >= text.len()).count();
    }
    assert!(
        cross_edges > 50,
        "only {cross_edges} text->image edges; the modalities are disconnected"
    );
}
