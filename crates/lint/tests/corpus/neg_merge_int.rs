//@ path: crates/demo/src/counts.rs
//! Negative: integer sufficient statistics merged in `par_map_reduce`
//! merge position are exact under any fold grouping — no finding.

pub struct Counts {
    pub covered: usize,
    pub conflicted: usize,
}

fn merge_counts(mut a: Counts, b: Counts) -> Counts {
    a.covered += b.covered;
    a.conflicted += b.conflicted;
    a
}

pub fn tally(cfg: &cm_par::ParConfig, n: usize, rows: &[i8]) -> Counts {
    let folded = cm_par::par_map_reduce(
        cfg,
        n,
        |range| {
            let mut c = Counts { covered: 0, conflicted: 0 };
            for i in range {
                let v: usize = usize::from(rows[i] != 0);
                c.covered += v;
            }
            c
        },
        merge_counts,
    );
    folded.unwrap_or(Counts { covered: 0, conflicted: 0 })
}
