//! Regenerates the **§6.6 training-method comparison**: early fusion vs
//! intermediate fusion vs the adapted DeViSE, per task, plus the
//! "materialized CNN features" comparison — our service features vs the raw
//! pre-trained embedding under identical (weak) supervision.
//!
//! The evaluation matrix (tasks, scale, seeds, scenarios) is declared in
//! `specs/fusion_compare.json`; `CM_SCALE`/`CM_SEEDS`/`CM_TASK`/`CM_JSON`
//! still override the spec's defaults.
//!
//! Expected shape (paper): early fusion wins — up to 1.22x (avg 1.08x) over
//! intermediate fusion and up to 5.52x (avg 2.21x) over DeViSE; service
//! features beat the raw embedding by up to 1.54x.

use cm_bench::{
    fmt_ratio, load_spec, maybe_write_json, mean, spec_reservoir, spec_scale, spec_scenario,
    spec_seeds, task_selected, TaskRun,
};
use cm_json::{Json, ToJson};
use cm_pipeline::curate;

struct Row {
    task: String,
    early_auprc: f64,
    early_vs_intermediate: f64,
    early_vs_devise: f64,
    features_vs_raw_embedding: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("task", self.task.to_json()),
            ("early_auprc", self.early_auprc.to_json()),
            ("early_vs_intermediate", self.early_vs_intermediate.to_json()),
            ("early_vs_devise", self.early_vs_devise.to_json()),
            ("features_vs_raw_embedding", self.features_vs_raw_embedding.to_json()),
        ])
    }
}

fn main() {
    let spec = load_spec("fusion_compare");
    let scale = spec_scale(&spec);
    let seeds = spec_seeds(&spec);
    let early_s = spec_scenario(&spec, "cross-modal T,I+ABCD");
    let inter_s = spec_scenario(&spec, "intermediate");
    let devise_s = spec_scenario(&spec, "devise");
    let feats_s = spec_scenario(&spec, "image-only I+ABCD");
    let raw_s = spec_scenario(&spec, "raw embedding (weak)");
    println!("Fusion comparison (§6.6) (scale {scale}, {} seed(s))", seeds.len());
    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>14}",
        "Task", "early", "vs interm.", "vs DeViSE", "feat vs raw"
    );

    let mut rows = Vec::new();
    for &id in &spec.tasks {
        if !task_selected(id) {
            continue;
        }
        let mut early_v = Vec::new();
        let mut vs_int = Vec::new();
        let mut vs_dev = Vec::new();
        let mut feat_raw = Vec::new();
        for &seed in &seeds {
            let run = TaskRun::new(id, scale, seed, spec_reservoir(&spec, scale));
            let runner = run.runner();
            let curation = curate(&run.data, &run.curation_config(seed));

            let e = runner.run(&early_s, Some(&curation)).unwrap().auprc;
            let i = runner.run(&inter_s, Some(&curation)).unwrap().auprc;
            let d = runner.run(&devise_s, Some(&curation)).unwrap().auprc;
            early_v.push(e);
            if i > 1e-9 {
                vs_int.push(e / i);
            }
            if d > 1e-9 {
                vs_dev.push(e / d);
            }

            // Features vs raw embedding, same weak labels: image-only with
            // shared feature sets vs image-only with only the
            // modality-specific features (embedding and friends).
            let feats = runner.run(&feats_s, Some(&curation)).unwrap().auprc;
            let raw_ap = runner.run(&raw_s, Some(&curation)).unwrap().auprc;
            if raw_ap > 1e-9 {
                feat_raw.push(feats / raw_ap);
            }
        }
        let row = Row {
            task: id.name().to_owned(),
            early_auprc: mean(&early_v),
            early_vs_intermediate: mean(&vs_int),
            early_vs_devise: mean(&vs_dev),
            features_vs_raw_embedding: mean(&feat_raw),
        };
        println!(
            "{:<6} {:>10.4} {:>12} {:>12} {:>14}",
            row.task,
            row.early_auprc,
            fmt_ratio(row.early_vs_intermediate),
            fmt_ratio(row.early_vs_devise),
            fmt_ratio(row.features_vs_raw_embedding),
        );
        rows.push(row);
    }
    if !rows.is_empty() {
        let avg_i = mean(&rows.iter().map(|r| r.early_vs_intermediate).collect::<Vec<_>>());
        let avg_d = mean(&rows.iter().map(|r| r.early_vs_devise).collect::<Vec<_>>());
        println!("\nearly fusion vs intermediate: avg {}", fmt_ratio(avg_i));
        println!("early fusion vs DeViSE:       avg {}", fmt_ratio(avg_d));
    }
    maybe_write_json(&rows);
}
