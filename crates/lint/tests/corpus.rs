//! Runs the seeded corpus — the same fixtures `xtask lint --self-test`
//! uses — as a cargo test, so `cargo test` alone proves the engine still
//! matches every pinned expectation.

use std::path::Path;

use cm_lint::corpus::run_corpus;
use cm_lint::LintConfig;

#[test]
fn corpus_matches_pinned_expectations() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let outcome = run_corpus(&dir, &LintConfig::repo_default());
    assert!(outcome.passed(), "corpus mismatches:\n{}", outcome.errors.join("\n"));
    // The corpus must stay substantial: every pass needs positives and
    // the issue requires at least three negatives per pass.
    assert!(outcome.files >= 17, "corpus shrank to {} files", outcome.files);
    assert!(outcome.positives >= 6, "only {} positive fixtures", outcome.positives);
    assert!(outcome.negatives >= 11, "only {} negative fixtures", outcome.negatives);
    assert!(outcome.expected_findings >= 30, "only {} pinned findings", outcome.expected_findings);
}
