//! Quickstart: the full cross-modal adaptation pipeline on a small task.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the paper's three steps end to end: feature generation (the
//! synthetic world plays the organization), training-data curation
//! (automatic LFs + label propagation + label model), and multi-modal
//! model training — then compares the cross-modal model against the
//! alternatives on the held-out image test set.

use cross_modal::prelude::*;

fn main() {
    // 1. Feature generation. The world stands in for the organization:
    //    fifteen shared services across feature sets A-D plus
    //    modality-specific features, applied to a labeled text corpus, an
    //    unlabeled image pool, and a labeled image test set.
    let task = TaskConfig::paper(TaskId::Ct1).scaled(0.1);
    println!(
        "task {:?}: {} labeled text, {} unlabeled image, {} test (positive rate {:.1}%)",
        task.id,
        task.n_text_labeled,
        task.n_image_unlabeled,
        task.n_image_test,
        task.profile.positive_rate * 100.0
    );
    let data = TaskData::generate(task, 42, None);

    // 2. Training-data curation: mine LFs from the text corpus, add a
    //    label-propagation LF, combine votes with the dev-anchored label
    //    model.
    let curation = curate(&data, &CurationConfig::default());
    println!(
        "\ncuration: {} LFs, coverage {:.1}%, weak-label P/R/F1 = {:.2}/{:.2}/{:.2}",
        curation.lf_names.len(),
        curation.ws_quality.coverage * 100.0,
        curation.ws_quality.precision,
        curation.ws_quality.recall,
        curation.ws_quality.f1,
    );
    println!(
        "  mined in {:.0?}, propagation {:.1?}",
        curation.mining_time,
        curation.propagation_time.unwrap_or_default()
    );

    // 3. Model training: early fusion over both modalities, compared with
    //    single-modality models and the embedding baseline.
    let runner = ScenarioRunner {
        data: &data,
        model: ModelKind::Mlp { hidden: vec![32] },
        train: TrainConfig { epochs: 20, patience: None, ..TrainConfig::default() },
    };
    let baseline = runner.baseline_auprc().unwrap();
    println!("\nbaseline (pre-trained image embeddings, fully supervised): AUPRC {baseline:.4}");

    let sets = FeatureSet::SHARED;
    for scenario in
        [Scenario::text_only(&sets), Scenario::image_only(&sets), Scenario::cross_modal(&sets)]
    {
        let eval = runner.run_relative(&scenario, Some(&curation), baseline).unwrap();
        println!(
            "{:<28} AUPRC {:.4}  ({} baseline)",
            eval.scenario,
            eval.auprc,
            eval.relative_auprc.map_or_else(|| "?x".into(), |r| format!("{r:.2}x")),
        );
    }
    println!("\nThe cross-modal model was trained with ZERO hand-labeled images.");
}
