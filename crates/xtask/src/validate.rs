//! Layer 2 driver: a thin front end over the `cm-check` validators,
//! mirroring the `lint` driver's shape.
//!
//! Modes:
//! - default — builds seed pipeline artifacts at a tiny scale, runs every
//!   artifact check over them, and validates every checked-in spec under
//!   `specs/`, rendering `path:line:col: rule: message` diagnostics;
//! - `--json` — the deterministic machine report (violations sorted by
//!   file, line, col) on stdout, same exit semantics, so CI can archive
//!   `results/validate_report.json` and gate on it;
//! - `--self-test` — replays the pinned positive/negative spec corpus in
//!   `crates/check/tests/corpus/`, enforcing that every rule has a pinned
//!   fixture;
//! - `--seeded-negatives` — corrupts each seed artifact the way a drifted
//!   config would and exits 0 only if every corruption is caught.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use cm_check::{
    check_fusion_plan, check_graph, check_lf_degeneracy, check_table, check_vote_matrix,
    report_json, validate_lint_spec_source, validate_spec_source, CheckRule, FusionKind,
    FusionPlan, Report, Violation,
};
use cm_featurespace::{
    CatSet, FeatureDef, FeatureSchema, FeatureSet, FeatureTable, FeatureValue, ServingMode,
    SimilarityConfig, Vocabulary,
};
use cm_labelmodel::LabelMatrix;
use cm_mining::{mine_lfs, MiningConfig};
use cm_models::ModelKind;
use cm_orgsim::{TaskConfig, TaskId};
use cm_pipeline::{DenseView, TaskData};
use cm_propagation::{GraphBuilder, SparseGraph};

/// Scale factor for the seed world: enough rows to exercise every check,
/// small enough that `validate` stays sub-second.
const SEED_SCALE: f64 = 0.02;
const SEED: u64 = 3;

fn seed_data() -> TaskData {
    TaskData::generate(TaskConfig::paper(TaskId::Ct1).scaled(SEED_SCALE), SEED, Some(64))
}

/// The embedding width `ModelKind` produces for a given input width —
/// the static fact the DeViSE projection chain is checked against.
fn embed_dim(kind: &ModelKind, input_dim: usize) -> usize {
    match kind {
        ModelKind::Logistic => input_dim,
        ModelKind::Mlp { hidden } => hidden.last().copied().unwrap_or(input_dim),
    }
}

/// Runs every validator over seed-built artifacts and returns the report.
pub fn validate_seed_artifacts() -> Report {
    let mut report = Report::new();
    let data = seed_data();
    let schema = data.world.schema();

    // 1. Schema/table agreement for every dataset the pipeline touches.
    for (name, table) in [
        ("text.table", &data.text.table),
        ("pool.table", &data.pool.table),
        ("test.table", &data.test.table),
        ("labeled_image.table", &data.labeled_image.table),
    ] {
        report.extend(check_table(table, schema, name));
    }

    // 2. LF vote matrix vs the mined-LF registry.
    let lf_columns = data.shared_columns(&FeatureSet::SHARED);
    let mined =
        mine_lfs(&data.text.table, &data.text.labels, &lf_columns, &MiningConfig::default(), 20, 4);
    let registry: Vec<String> = mined.lfs.iter().map(|lf| lf.name().to_owned()).collect();
    // Shape + encoding on both matrices; degeneracy only on the dev
    // matrix the LFs were mined from (pool abstention is legitimate when
    // the pool's modality lacks the source feature).
    let dev_votes = LabelMatrix::apply(&data.text.table, &mined.lfs);
    report.extend(check_vote_matrix(&dev_votes, &registry, data.text.len(), "dev.votes"));
    report.extend(check_lf_degeneracy(&dev_votes, "dev.votes"));
    let pool_votes = LabelMatrix::apply(&data.pool.table, &mined.lfs);
    report.extend(check_vote_matrix(&pool_votes, &registry, data.pool.len(), "pool.votes"));

    // 3. Fusion dimension chains, derived statically from the dense view.
    match DenseView::fit(&[&data.text.table, &data.pool.table], lf_columns.clone()) {
        Ok(view) => {
            let width = view.encoder().layout().width();
            let early = FusionPlan {
                kind: FusionKind::Early,
                part_dims: vec![width, width],
                embedding_dims: None,
                projection: None,
            };
            report.extend(check_fusion_plan(&early, "fusion.early"));
            let kind = ModelKind::Mlp { hidden: vec![32, 16] };
            let emb = embed_dim(&kind, width);
            let devise = FusionPlan {
                kind: FusionKind::DeVise,
                part_dims: vec![width, width],
                embedding_dims: Some((emb, emb)),
                projection: Some((emb, emb)),
            };
            report.extend(check_fusion_plan(&devise, "fusion.devise"));
        }
        Err(e) => report.extend(vec![cm_check::Violation::new(
            CheckRule::FusionDimChain,
            "fusion.dense_view",
            format!("dense view failed to fit: {e}"),
        )]),
    }

    // 4. Propagation-graph well-formedness over a pool k-NN graph.
    let sim = SimilarityConfig::uniform(lf_columns).fit_scales(&data.pool.table);
    let graph =
        GraphBuilder::approximate(8, data.pool.table.len()).build(&data.pool.table, &sim, SEED);
    report.extend(check_graph(&graph, "pool.knn_graph"));

    report
}

/// One seeded corruption: a named artifact defect plus the rule that must
/// catch it.
struct Negative {
    name: &'static str,
    expect: CheckRule,
    violations: Vec<cm_check::Violation>,
}

fn tiny_schema() -> Arc<FeatureSchema> {
    Arc::new(FeatureSchema::from_defs(vec![
        FeatureDef::numeric("n", FeatureSet::A, ServingMode::Servable),
        FeatureDef::categorical(
            "c",
            FeatureSet::C,
            ServingMode::Servable,
            Vocabulary::from_names((0..4).map(|i| format!("v{i}"))),
        ),
    ]))
}

/// Builds each seeded-negative artifact and records what the validators
/// report for it.
fn seeded_negatives() -> Vec<Negative> {
    let mut out = Vec::new();

    // Schema/table column-count mismatch: a table built against a
    // narrower schema than the registry's.
    let narrow = Arc::new(FeatureSchema::from_defs(vec![FeatureDef::numeric(
        "n",
        FeatureSet::A,
        ServingMode::Servable,
    )]));
    let mut t = FeatureTable::new(narrow);
    t.push_row(&[FeatureValue::Numeric(1.0)]);
    out.push(Negative {
        name: "schema-column-count",
        expect: CheckRule::SchemaTableMismatch,
        violations: check_table(&t, &tiny_schema(), "negative.table"),
    });

    // Categorical id outside the vocabulary.
    let mut t = FeatureTable::new(tiny_schema());
    t.push_row(&[
        FeatureValue::Numeric(0.5),
        FeatureValue::Categorical(CatSet::from_ids(vec![99])),
    ]);
    out.push(Negative {
        name: "vocab-index-bound",
        expect: CheckRule::VocabIndexOutOfBounds,
        violations: check_table(&t, &tiny_schema(), "negative.table"),
    });

    // Constant LF: votes +1 on every row.
    let votes = LabelMatrix::from_votes(
        4,
        2,
        vec![1, 1, 1, -1, 1, 0, 1, 0],
        vec!["constant".to_owned(), "ok".to_owned()],
    );
    out.push(Negative {
        name: "constant-lf",
        expect: CheckRule::DegenerateLf,
        violations: check_lf_degeneracy(&votes, "negative.votes"),
    });

    // Vote matrix shaped for the wrong pool.
    out.push(Negative {
        name: "vote-row-count",
        expect: CheckRule::VoteMatrixShape,
        violations: check_vote_matrix(
            &votes,
            &["constant".to_owned(), "ok".to_owned()],
            99,
            "negative.votes",
        ),
    });

    // DeViSE projection with the wrong target width.
    let plan = FusionPlan {
        kind: FusionKind::DeVise,
        part_dims: vec![24, 24],
        embedding_dims: Some((16, 16)),
        projection: Some((16, 8)),
    };
    out.push(Negative {
        name: "devise-projection-dim",
        expect: CheckRule::FusionDimChain,
        violations: check_fusion_plan(&plan, "negative.devise"),
    });

    // Graph with a NaN edge weight.
    let g = SparseGraph::from_edges(3, &[(0, 1, f32::NAN), (1, 2, 0.5)]);
    out.push(Negative {
        name: "nan-edge-weight",
        expect: CheckRule::GraphNonFiniteWeight,
        violations: check_graph(&g, "negative.graph"),
    });

    out
}

/// Validates every checked-in spec under `specs/`, returning the file
/// count and all violations (each carrying the exact source span).
fn validate_specs(root: &Path) -> (usize, Vec<Violation>) {
    let dir = root.join("specs");
    let mut out = Vec::new();
    let mut files = Vec::new();
    match std::fs::read_dir(&dir) {
        Ok(entries) => {
            for e in entries.flatten() {
                let p = e.path();
                if p.extension().is_some_and(|x| x == "json") {
                    files.push(p);
                }
            }
        }
        Err(e) => {
            out.push(Violation::new(
                CheckRule::SpecSyntax,
                dir.display().to_string(),
                format!("specs directory unreadable: {e}"),
            ));
            return (0, out);
        }
    }
    files.sort();
    let n = files.len();
    for p in files {
        let rel = p.strip_prefix(root).unwrap_or(&p).display().to_string();
        match std::fs::read_to_string(&p) {
            Ok(source) => {
                // The lint-effects sanction spec has its own validator;
                // every other spec is an experiment spec.
                if p.file_stem().is_some_and(|s| s == "lint_effects") {
                    out.extend(validate_lint_spec_source(&source, &rel));
                } else {
                    out.extend(validate_spec_source(&source, &rel).1);
                }
            }
            Err(e) => {
                out.push(Violation::new(CheckRule::SpecSyntax, rel, format!("unreadable: {e}")))
            }
        }
    }
    (n, out)
}

/// Runs the gate over seed artifacts and every checked-in spec; human or
/// JSON reporting.
pub fn run(root: &Path, json: bool) -> ExitCode {
    let mut report = validate_seed_artifacts();
    let (n_specs, spec_violations) = validate_specs(root);
    report.extend(spec_violations);
    let mut violations = report.violations;
    violations.sort_by(Violation::sort_key_cmp);
    if json {
        println!("{}", report_json(&violations, n_specs).to_string_pretty());
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
    }
    if violations.is_empty() {
        eprintln!("validate: clean ({n_specs} spec(s) + seed artifacts)");
        ExitCode::SUCCESS
    } else {
        eprintln!("validate: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Replays the pinned spec corpus (`crates/check/tests/corpus/`).
pub fn self_test(root: &Path) -> ExitCode {
    let dir = root.join("crates/check/tests/corpus");
    let outcome = cm_check::corpus::run_corpus(&dir);
    for e in &outcome.errors {
        eprintln!("validate self-test: {e}");
    }
    if outcome.passed() {
        eprintln!(
            "validate self-test: {} corpus files ({} positive, {} negative), {} expected \
             violations, {} rule(s) covered, all matched",
            outcome.files,
            outcome.positives,
            outcome.negatives,
            outcome.expected_violations,
            outcome.rules_covered.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("validate self-test: {} mismatch(es)", outcome.errors.len());
        ExitCode::FAILURE
    }
}

/// Runs the seeded-negatives gate self-test.
pub fn seeded_negatives_gate() -> ExitCode {
    let mut failures = 0;
    for neg in seeded_negatives() {
        let caught = neg.violations.iter().any(|v| v.rule == neg.expect);
        if caught {
            eprintln!("validate --seeded-negatives: {} caught [{}]", neg.name, neg.expect);
        } else {
            eprintln!(
                "validate --seeded-negatives: {} NOT caught (expected [{}], got {:?})",
                neg.name,
                neg.expect,
                neg.violations.iter().map(|v| v.rule).collect::<Vec<_>>()
            );
            failures += 1;
        }
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_artifacts_are_clean() {
        let report = validate_seed_artifacts();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn every_seeded_negative_is_caught() {
        for neg in seeded_negatives() {
            assert!(
                neg.violations.iter().any(|v| v.rule == neg.expect),
                "{}: expected [{}], got {:?}",
                neg.name,
                neg.expect,
                neg.violations
            );
        }
    }
}
