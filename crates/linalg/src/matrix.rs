//! A minimal row-major dense matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

use cm_par::ParConfig;

/// Multiply-accumulate count above which `matmul` fans out across the
/// `cm-par` substrate. Depends only on shapes, so the serial/parallel
/// choice — and the result, which is bit-identical either way because
/// every output row is computed independently — never varies with the
/// thread count.
const MATMUL_PAR_FLOPS: usize = 1 << 20;

/// Output rows computed together per pass over `other` in the blocked
/// matmul kernel. Four rows re-use each `other` row four times from
/// registers/L1 instead of refetching it per row, which is the entire win:
/// the per-element arithmetic is untouched.
const MATMUL_ROW_BLOCK: usize = 4;

/// Row-major dense `f32` matrix.
///
/// Rows are contiguous, so per-example access patterns (the common case in
/// mini-batch training) are cache-friendly. All dimensions are checked with
/// panics; shape errors here are always programming bugs, not data errors.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "row {i} has length {}, expected {cols}", row.len());
            data.extend_from_slice(row);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Iterator over rows.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Matrix product `self * other`.
    ///
    /// Uses a row-blocked ikj kernel: the inner loop streams over
    /// contiguous memory in both the output rows and the `other` row, and
    /// [`MATMUL_ROW_BLOCK`] output rows share each fetched `other` row.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.matmul_with(other, &ParConfig::from_env())
    }

    /// [`Matrix::matmul`] with an explicit parallel configuration. Output
    /// rows are independent, so the product is bit-identical at every
    /// thread count.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`, or re-raises a worker
    /// panic.
    pub fn matmul_with(&self, other: &Matrix, par: &ParConfig) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        if out.cols == 0 {
            return out;
        }
        let flops = self.rows * self.cols * other.cols;
        if flops >= MATMUL_PAR_FLOPS {
            let unit = out.cols;
            if let Err(e) = cm_par::par_chunks_mut(par, &mut out.data, unit, |start, chunk| {
                matmul_rows(self, start, other, chunk);
            }) {
                e.resume();
            }
        } else {
            matmul_rows(self, 0, other, &mut out.data);
        }
        out
    }

    /// Unblocked serial reference product, retained as the differential-
    /// test oracle for the blocked kernel. Every output element is a
    /// single accumulator updated in ascending-`k` order, skipping zero
    /// `a` entries — exactly the chain the blocked kernel must reproduce.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul_reference(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            matmul_row(self.row(i), other, out.row_mut(i));
        }
        out
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec shape mismatch");
        self.rows_iter().map(|row| crate::vecops::dot(row, x)).collect()
    }

    /// Transposed matrix-vector product `self^T * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_t(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.rows, "matvec_t shape mismatch");
        let mut out = vec![0.0f32; self.cols];
        for (row, &xi) in self.rows_iter().zip(x) {
            if xi == 0.0 {
                continue;
            }
            crate::vecops::axpy(xi, row, &mut out);
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Elementwise in-place addition.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaling by a scalar.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// `self += s * other` (SAXPY over the whole matrix).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, s: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        crate::vecops::l2_norm(&self.data)
    }

    /// Fills the matrix with zeros, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }
}

/// A contiguous run of GEMM output rows starting at row `start`:
/// full blocks of [`MATMUL_ROW_BLOCK`] rows go through the blocked kernel,
/// the remainder through the single-row kernel. Grouping does not touch
/// the per-element arithmetic, so any chunking (serial or parallel)
/// produces bit-identical output.
fn matmul_rows(a: &Matrix, start: usize, other: &Matrix, out_chunk: &mut [f32]) {
    let unit = other.cols;
    for (blk_idx, blk) in out_chunk.chunks_mut(unit * MATMUL_ROW_BLOCK).enumerate() {
        let row0 = start + blk_idx * MATMUL_ROW_BLOCK;
        if blk.len() == unit * MATMUL_ROW_BLOCK {
            let (o0, rest) = blk.split_at_mut(unit);
            let (o1, rest) = rest.split_at_mut(unit);
            let (o2, o3) = rest.split_at_mut(unit);
            matmul_block4(
                [a.row(row0), a.row(row0 + 1), a.row(row0 + 2), a.row(row0 + 3)],
                other,
                o0,
                o1,
                o2,
                o3,
            );
        } else {
            for (i, out_row) in blk.chunks_exact_mut(unit).enumerate() {
                matmul_row(a.row(row0 + i), other, out_row);
            }
        }
    }
}

/// Four GEMM output rows at once: per `k`, the fetched `other` row feeds
/// all four output rows. Each output element still owns a single
/// accumulator updated in ascending-`k` order with the same `a != 0.0`
/// gate as [`matmul_row`] — removing one row's updates from the loop does
/// not change another row's accumulation chain, so every element is
/// bit-identical to the unblocked kernel.
fn matmul_block4(
    a: [&[f32]; MATMUL_ROW_BLOCK],
    other: &Matrix,
    o0: &mut [f32],
    o1: &mut [f32],
    o2: &mut [f32],
    o3: &mut [f32],
) {
    for k in 0..a[0].len() {
        let (a0, a1, a2, a3) = (a[0][k], a[1][k], a[2][k], a[3][k]);
        let b_row = other.row(k);
        let n = b_row.len();
        if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
            // Hoisted reslices let the compiler drop bounds checks and
            // vectorize across j (independent accumulators per element).
            let (o0, o1) = (&mut o0[..n], &mut o1[..n]);
            let (o2, o3) = (&mut o2[..n], &mut o3[..n]);
            for j in 0..n {
                let b = b_row[j];
                o0[j] += a0 * b;
                o1[j] += a1 * b;
                o2[j] += a2 * b;
                o3[j] += a3 * b;
            }
        } else {
            // Some rows skip this k (zero gate); update the rest alone.
            for (av, o) in [(a0, &mut *o0), (a1, &mut *o1), (a2, &mut *o2), (a3, &mut *o3)] {
                if av != 0.0 {
                    for (ov, &b) in o.iter_mut().zip(b_row) {
                        *ov += av * b;
                    }
                }
            }
        }
    }
}

/// One GEMM output row: `out_row = a_row * other` with the ikj kernel, so
/// the inner loop streams over contiguous memory in both the output row
/// and the `other` row.
fn matmul_row(a_row: &[f32], other: &Matrix, out_row: &mut [f32]) {
    for (k, &a) in a_row.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        let b_row = other.row(k);
        for (o, &b) in out_row.iter_mut().zip(b_row) {
            *o += a * b;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", &self.row(r)[..self.cols.min(8)])?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_correct_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_populates_by_position() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(0, 2)], 2.0);
        assert_eq!(m[(1, 1)], 11.0);
    }

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "row 1 has length")]
    fn from_rows_rejects_ragged_input() {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn blocked_matmul_matches_reference_exactly() {
        // Odd shapes exercise the remainder path; the modular fill plants
        // zeros in `a` to exercise the zero-gate mixed path.
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (4, 4, 4), (7, 13, 9), (66, 31, 17), (8, 1, 5)] {
            let a = Matrix::from_fn(m, k, |r, c| {
                let v = (r * 31 + c * 17) % 7;
                if v == 3 {
                    0.0
                } else {
                    v as f32 - 2.5
                }
            });
            let b = Matrix::from_fn(k, n, |r, c| ((r * 13 + c * 5) % 11) as f32 * 0.37 - 1.0);
            let blocked = a.matmul_with(&b, &ParConfig::serial());
            let reference = a.matmul_reference(&b);
            assert_eq!(blocked, reference, "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn parallel_matmul_is_bit_identical_to_serial() {
        // 128 x 128 x 128 = 2M MACs, above the parallel threshold.
        let a = Matrix::from_fn(128, 128, |r, c| ((r * 31 + c * 17) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(128, 128, |r, c| ((r * 7 + c * 3) % 11) as f32 * 0.25);
        let serial = a.matmul_with(&b, &ParConfig::serial());
        for threads in [2usize, 4, 8] {
            let par = a.matmul_with(&b, &ParConfig::threads(threads));
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, -1.0, 2.0], vec![0.0, 3.0, 1.0]]);
        let x = vec![2.0, 1.0, 0.5];
        assert_eq!(a.matvec(&x), vec![2.0, 3.5]);
    }

    #[test]
    fn matvec_t_is_transpose_matvec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let x = vec![1.0, -1.0];
        let direct = a.matvec_t(&x);
        let via_transpose = a.transpose().matvec(&x);
        assert_eq!(direct, via_transpose);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn axpy_and_scale_compose() {
        let mut a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![10.0, 20.0]]);
        a.axpy(0.5, &b);
        assert_eq!(a.row(0), &[6.0, 12.0]);
        a.scale(2.0);
        assert_eq!(a.row(0), &[12.0, 24.0]);
    }

    #[test]
    fn frobenius_norm_of_unit_axes() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn fill_zero_keeps_shape() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0]]);
        m.fill_zero();
        assert_eq!(m.shape(), (1, 2));
        assert_eq!(m.row(0), &[0.0, 0.0]);
    }
}
