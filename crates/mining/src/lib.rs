//! Automatic labeling-function generation via frequent itemset mining
//! (paper §4.3).
//!
//! Domain experts are scarce; the paper replaces them with an Apriori-style
//! miner over the labeled old-modality corpus: feature values that occur
//! disproportionately often in positive (resp. negative) examples become
//! labeling functions, subject to precision/recall thresholds evaluated on
//! the development set. Two of the paper's design choices are kept exactly:
//!
//! - **positives first** — candidates are counted over the positive
//!   examples alone before any pass over the (much larger, class-imbalanced)
//!   negatives;
//! - **single-feature conjunctions** — higher-order itemsets only combine
//!   values of the *same* feature, minimizing correlation between LFs.

pub mod apriori;
pub mod catalog;
pub mod discretize;
pub mod lfgen;
pub mod modelgen;
pub mod reference;

pub use apriori::{
    mine_from_bitsets, mine_itemsets, mine_itemsets_with, Item, ItemStats, ItemValue,
    MinedItemsets, MiningConfig,
};
pub use catalog::{ItemCatalog, ItemCatalogBuilder};
pub use discretize::Discretizer;
pub use lfgen::{lfs_from_itemsets, mine_lfs, MinedLfs, MiningReport};
pub use modelgen::{generate_stump_lfs, StumpConfig};
