//@ path: crates/shard/src/knn.rs
// Seeded negative: FeatureTable::new is fine outside the streaming
// curation driver — cm-shard owns segment and anchor-table assembly.

pub fn f(schema: Arc<FeatureSchema>) -> FeatureTable {
    FeatureTable::new(schema)
}
