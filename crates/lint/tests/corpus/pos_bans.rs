//@ path: crates/demo/src/lib.rs
// Seeded positive: one single-line hit for every classic ban.

pub fn f(v: Option<u32>) -> u32 {
    println!("starting");
    dbg!(&v);
    let w = v.unwrap();
    let x = v.expect("must exist");
    if w != x {
        panic!("mismatch")
    }
    todo!();
    unimplemented!()
}

pub fn g() {
    let _h = std::thread::spawn(|| 1);
    std::thread::scope(|_s| {});
    let _t = std::time::Instant::now();
    let _u = std::time::SystemTime::now();
}

pub unsafe fn h() {}
