//! Serializable experiment outputs consumed by the bench binaries.

use serde::{Deserialize, Serialize};

/// One trained-and-evaluated model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelEval {
    /// Scenario display name.
    pub scenario: String,
    /// Absolute AUPRC on the image test set.
    pub auprc: f64,
    /// AUPRC relative to the embedding baseline, when computed.
    pub relative_auprc: Option<f64>,
    /// Training rows the model saw.
    pub n_train_rows: usize,
}

/// A group of evaluations for one task (one table row / figure panel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Task display name (e.g. `"CT 1"`).
    pub task: String,
    /// Baseline absolute AUPRC all relative values divide by.
    pub baseline_auprc: f64,
    /// Evaluations.
    pub rows: Vec<ModelEval>,
}

impl ScenarioReport {
    /// Renders a compact fixed-width table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "{}  (baseline AUPRC {:.4})\n{:<42} {:>8} {:>9} {:>9}\n",
            self.task, self.baseline_auprc, "scenario", "AUPRC", "relative", "n_train"
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{:<42} {:>8.4} {:>9} {:>9}\n",
                row.scenario,
                row.auprc,
                row.relative_auprc
                    .map_or_else(|| "-".to_owned(), |r| format!("{r:.2}x")),
                row.n_train_rows
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_rows() {
        let report = ScenarioReport {
            task: "CT 1".into(),
            baseline_auprc: 0.25,
            rows: vec![
                ModelEval {
                    scenario: "cross-modal".into(),
                    auprc: 0.38,
                    relative_auprc: Some(1.52),
                    n_train_rows: 25_000,
                },
                ModelEval {
                    scenario: "text-only".into(),
                    auprc: 0.28,
                    relative_auprc: None,
                    n_train_rows: 18_000,
                },
            ],
        };
        let t = report.to_table();
        assert!(t.contains("CT 1"));
        assert!(t.contains("1.52x"));
        assert!(t.contains("text-only"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = ScenarioReport {
            task: "CT 2".into(),
            baseline_auprc: 0.1,
            rows: vec![],
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: ScenarioReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
