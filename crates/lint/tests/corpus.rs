//! Runs the seeded corpus — the same fixtures `xtask lint --self-test`
//! uses — as a cargo test, so `cargo test` alone proves the engine still
//! matches every pinned expectation.

use std::path::Path;

use cm_lint::corpus::run_corpus;
use cm_lint::LintConfig;

#[test]
fn corpus_matches_pinned_expectations() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let dir = manifest.join("tests/corpus");
    // The workspace config loads specs/lint_effects.json, so the corpus
    // exercises the declared sanctions exactly as `xtask lint` does.
    let root = manifest.ancestors().nth(2).expect("workspace root");
    let outcome = run_corpus(&dir, &LintConfig::for_workspace(root));
    assert!(outcome.passed(), "corpus mismatches:\n{}", outcome.errors.join("\n"));
    // The corpus must stay substantial: every pass needs positives and
    // the issue requires at least three negatives per pass.
    assert!(outcome.files >= 23, "corpus shrank to {} files", outcome.files);
    assert!(outcome.positives >= 9, "only {} positive fixtures", outcome.positives);
    assert!(outcome.negatives >= 14, "only {} negative fixtures", outcome.negatives);
    assert!(outcome.expected_findings >= 40, "only {} pinned findings", outcome.expected_findings);
}
