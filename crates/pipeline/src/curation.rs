//! Training-data curation (pipeline step B, §4): automatic LF mining,
//! optional label propagation, and the label model.
//!
//! The label model defaults to the dev-anchored variant: LF vote rates are
//! measured on the labeled old-modality corpus (§4.2's "use labeled data of
//! existing modalities as a development set") and posteriors on the
//! unlabeled pool follow from Bayes' rule. The EM generative model and
//! majority vote remain available for the ablation benches.

use std::time::Duration;

use cm_faults::{FaultSummary, Stopwatch};
use cm_featurespace::{FeatureSchema, FeatureSet, Label, ServingMode, SimilarityConfig};
use cm_labelmodel::{
    majority_vote, AnchoredModel, BoundScoreLf, GenerativeConfig, GenerativeModel, LabelMatrix,
    LabelingFunction, LfRates,
};
use cm_linalg::rng::SliceRandom;
use cm_linalg::rng::StdRng;
use cm_mining::{mine_lfs, MiningConfig};
use cm_par::ParConfig;
use cm_propagation::{propagate, tune_score_thresholds, GraphBuilder, PropagationConfig};

use crate::data::TaskData;
use crate::report::{DegradationReport, LfAbstainRates};

/// Which label model combines LF votes into probabilistic labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelModelKind {
    /// Dev-set-anchored class-conditional model (default; §4.2).
    Anchored,
    /// EM-fitted conditionally-independent generative model (Snorkel's).
    Em,
    /// Unweighted majority vote (ablation baseline).
    MajorityVote,
}

/// Configuration of the curation step.
#[derive(Debug, Clone)]
pub struct CurationConfig {
    /// Feature sets whose (shared) features feed LF mining.
    pub lf_sets: Vec<FeatureSet>,
    /// Whether nonservable features may feed LFs (§4.1: weak supervision is
    /// offline, so they may — unless ablating).
    pub include_nonservable: bool,
    /// Itemset-mining thresholds.
    pub mining: MiningConfig,
    /// Cap on mined positive LFs.
    pub max_positive_lfs: usize,
    /// Cap on mined negative LFs.
    pub max_negative_lfs: usize,
    /// Whether to add the label-propagation LF (§4.4).
    pub use_label_propagation: bool,
    /// k-NN degree of the propagation graph.
    pub prop_k: usize,
    /// Max old-modality seed vertices (all positives are always kept).
    pub prop_max_seeds: usize,
    /// Dev-set precision floor for the propagation LF's positive side.
    pub prop_min_precision: f64,
    /// Max fraction of dev positives the negative side may swallow.
    pub prop_max_leakage: f64,
    /// Label-model choice.
    pub label_model: LabelModelKind,
    /// EM settings (used when `label_model` is [`LabelModelKind::Em`]).
    pub generative: GenerativeConfig,
    /// Seed for splits and graph construction.
    pub seed: u64,
}

impl Default for CurationConfig {
    fn default() -> Self {
        Self {
            lf_sets: FeatureSet::SHARED.to_vec(),
            include_nonservable: true,
            mining: MiningConfig {
                min_precision: 0.55,
                min_neg_precision: 0.985,
                ..MiningConfig::default()
            },
            max_positive_lfs: 80,
            max_negative_lfs: 30,
            use_label_propagation: true,
            prop_k: 15,
            prop_max_seeds: 5000,
            prop_min_precision: 0.45,
            prop_max_leakage: 0.05,
            label_model: LabelModelKind::Anchored,
            generative: GenerativeConfig::default(),
            seed: 0,
        }
    }
}

/// Quality of the curated labels against the pool's hidden ground truth
/// (a diagnostic the paper measures with its labeled test sets, §6.7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WsQuality {
    /// Precision of hard-thresholded probabilistic labels on covered rows.
    pub precision: f64,
    /// Recall over all pool positives.
    pub recall: f64,
    /// F1 of the above.
    pub f1: f64,
    /// Fraction of pool rows labeled by at least one LF.
    pub coverage: f64,
}

/// Result of curation over the unlabeled pool.
pub struct CurationOutput {
    /// Probabilistic label per pool row.
    pub probabilistic_labels: Vec<f64>,
    /// Whether each pool row was covered by at least one LF.
    pub covered: Vec<bool>,
    /// Names of the LFs used.
    pub lf_names: Vec<String>,
    /// Label quality vs ground truth.
    pub ws_quality: WsQuality,
    /// Wall-clock of LF mining (or expert authoring time when provided).
    pub mining_time: Duration,
    /// Wall-clock of graph build + propagation, when used.
    pub propagation_time: Option<Duration>,
    /// Label-matrix conflict rate (Snorkel diagnostic).
    pub conflict: f64,
    /// Degradation telemetry: dropped LFs, abstain rates, service faults.
    /// Populated on every run; a clean run reports zero drops/trips.
    pub degradation: DegradationReport,
}

/// Runs curation with automatically mined LFs (§4.3 + §4.4).
pub fn curate(data: &TaskData, config: &CurationConfig) -> CurationOutput {
    let mining_start = Stopwatch::start();
    let columns = lf_columns(data.world.schema(), config);
    let mined = mine_lfs(
        &data.text.table,
        &data.text.labels,
        &columns,
        &config.mining,
        config.max_positive_lfs,
        config.max_negative_lfs,
    );
    let mining_time = mining_start.elapsed();
    curate_with_lfs(data, config, mined.lfs, mining_time)
}

/// Runs curation with a caller-provided LF suite (e.g. the hand-written
/// expert LFs of §6.7.1). `authoring_time` is recorded as the mining time.
pub fn curate_with_lfs(
    data: &TaskData,
    config: &CurationConfig,
    lfs: Vec<Box<dyn LabelingFunction>>,
    authoring_time: Duration,
) -> CurationOutput {
    // Dev evidence for the base LFs: the whole labeled text corpus.
    let dev_matrix = LabelMatrix::apply(&data.text.table, &lfs);
    let prior = data.text.positive_rate().clamp(1e-4, 0.5);

    // Optional propagation LF, with its own dev slice.
    let mut propagation_time = None;
    let mut prop = None;
    if config.use_label_propagation {
        let start = Stopwatch::start();
        prop = propagation_artifacts(data, config);
        propagation_time = Some(start.elapsed());
    }

    let mut lf_names: Vec<String> = lfs.iter().map(|l| l.name().to_owned()).collect();
    let mut pool_matrix = LabelMatrix::apply(&data.pool.table, &lfs);
    let mut prop_rates: Option<LfRates> = None;
    if let Some(p) = &prop {
        lf_names.push("label_propagation".to_owned());
        prop_rates = Some(LfRates::estimate(&p.dev_votes, &p.dev_labels));
        // Extend the pool matrix with the propagation column.
        let n = pool_matrix.n_rows();
        let mut votes = Vec::with_capacity(n * (pool_matrix.n_lfs() + 1));
        for r in 0..n {
            votes.extend_from_slice(pool_matrix.row(r));
            votes.push(p.pool_lf.vote(&data.pool.table, r).as_i8());
        }
        pool_matrix = LabelMatrix::from_votes(n, lf_names.len(), votes, lf_names.clone());
    }

    finish_curation(
        ModelInputs {
            dev_matrix: &dev_matrix,
            dev_labels: &data.text.labels,
            prop_dev_votes: prop.as_ref().map(|p| p.dev_votes.as_slice()),
            prop_rates,
            pool_matrix,
            lf_names,
            prior,
            pool_truth: &data.pool.labels,
            fault_summary: data.fault_summary.as_ref(),
        },
        config,
        authoring_time,
        propagation_time,
        &ParConfig::from_env(),
    )
}

/// Everything the model-fitting tail of curation needs, assembled either
/// resident ([`curate_with_lfs`]) or segment by segment
/// (`crate::stream::curate_streamed`). Both assemblies produce identical
/// inputs, so sharing the tail makes the two paths agree by construction.
pub(crate) struct ModelInputs<'a> {
    /// LF votes over the labeled dev corpus (base LFs only).
    pub dev_matrix: &'a LabelMatrix,
    /// Dev corpus ground truth.
    pub dev_labels: &'a [Label],
    /// The propagation LF's votes on its dev slice, when present.
    pub prop_dev_votes: Option<&'a [i8]>,
    /// The propagation LF's dev-estimated rates, when present.
    pub prop_rates: Option<LfRates>,
    /// LF votes over the pool (propagation column included, when present).
    pub pool_matrix: LabelMatrix,
    /// LF names, one per pool-matrix column.
    pub lf_names: Vec<String>,
    /// Class prior, already clamped.
    pub prior: f64,
    /// Pool ground truth (diagnostics only).
    pub pool_truth: &'a [Label],
    /// Fault telemetry when datasets came through an access layer.
    pub fault_summary: Option<&'a FaultSummary>,
}

/// The model-fitting tail shared by the resident and streamed drivers:
/// abstain telemetry, degradation drops, label-model fit/predict, and the
/// quality report. Thread-count invariant (every parallel substrate it
/// calls is), so resident and streamed callers may pass different `par`.
pub(crate) fn finish_curation(
    inputs: ModelInputs<'_>,
    config: &CurationConfig,
    mining_time: Duration,
    propagation_time: Option<Duration>,
    par: &ParConfig,
) -> CurationOutput {
    let ModelInputs {
        dev_matrix,
        dev_labels,
        prop_dev_votes,
        prop_rates,
        pool_matrix,
        lf_names,
        prior,
        pool_truth,
        fault_summary,
    } = inputs;
    let n_rows = pool_matrix.n_rows();
    let n_lfs = pool_matrix.n_lfs();

    // Abstain-rate telemetry: dev rates over the evidence the LF weights
    // are estimated on (whole corpus for base LFs, the propagation dev
    // slice for the propagation LF), pool rates over the pool votes.
    let mut dev_abstain: Vec<f64> = (0..dev_matrix.n_lfs())
        .map(|c| {
            (0..dev_matrix.n_rows()).filter(|&r| dev_matrix.row(r)[c] == 0).count() as f64
                / dev_matrix.n_rows().max(1) as f64
        })
        .collect();
    if let Some(votes) = prop_dev_votes {
        dev_abstain
            .push(votes.iter().filter(|&&v| v == 0).count() as f64 / votes.len().max(1) as f64);
    }
    let pool_abstain: Vec<f64> = (0..n_lfs)
        .map(|c| {
            (0..n_rows).filter(|&r| pool_matrix.row(r)[c] == 0).count() as f64
                / n_rows.max(1) as f64
        })
        .collect();

    // Graceful degradation: a column that abstains on every dev row has no
    // rate evidence and is dropped in any run. A column that abstains on
    // every *pool* row casts no vote yet still shifts anchored posteriors
    // through its abstain likelihood; on clean runs that likelihood is
    // dev-calibrated and legitimately models modality shift, but on
    // fault-injected runs the abstention is caused by service loss the dev
    // calibration never saw — so those columns are dropped only when the
    // datasets came through a fault-injecting access layer.
    let fault_aware = fault_summary.is_some();
    let dropped_idx: Vec<usize> = (0..n_lfs)
        .filter(|&c| dev_abstain[c] >= 1.0 || (fault_aware && pool_abstain[c] >= 1.0))
        .collect();
    let dropped_lfs: Vec<String> = dropped_idx.iter().map(|&c| lf_names[c].clone()).collect();
    let active_matrix = if dropped_idx.is_empty() {
        pool_matrix
    } else {
        pool_matrix.without_columns(&dropped_idx)
    };

    // Coverage is invariant to dropping all-abstain columns, so clean runs
    // see exactly the pre-degradation semantics.
    let covered: Vec<bool> =
        (0..n_rows).map(|r| active_matrix.row(r).iter().any(|&v| v != 0)).collect();

    let probabilistic_labels = if active_matrix.n_lfs() == 0 {
        vec![prior; n_rows]
    } else {
        match config.label_model {
            LabelModelKind::Anchored => {
                let mut rates =
                    AnchoredModel::fit(dev_matrix, dev_labels, Some(prior)).rates().to_vec();
                if let Some(r) = prop_rates {
                    rates.push(r);
                }
                // Fitting is per-column independent, so dropping rate
                // entries by index equals fitting on the reduced matrix.
                let rates: Vec<LfRates> = rates
                    .into_iter()
                    .enumerate()
                    .filter(|&(c, _)| !dropped_idx.contains(&c))
                    .map(|(_, r)| r)
                    .collect();
                AnchoredModel::from_rates(rates, prior).predict(&active_matrix)
            }
            LabelModelKind::Em => {
                let gen_cfg =
                    GenerativeConfig { class_prior: Some(prior), ..config.generative.clone() };
                GenerativeModel::fit_with(&active_matrix, &gen_cfg, par)
                    .predict_with(&active_matrix, par)
            }
            LabelModelKind::MajorityVote => majority_vote(&active_matrix),
        }
    };

    let pool_coverage = covered.iter().filter(|&&c| c).count() as f64 / covered.len().max(1) as f64;
    let lf_abstain: Vec<LfAbstainRates> = lf_names
        .iter()
        .enumerate()
        .map(|(c, name)| LfAbstainRates {
            name: name.clone(),
            dev_abstain_rate: dev_abstain[c],
            pool_abstain_rate: pool_abstain[c],
            dropped: dropped_idx.contains(&c),
        })
        .collect();
    let degradation = DegradationReport {
        fault_seed: fault_summary.map_or(0, |s| s.seed),
        tripped_services: fault_summary.map_or_else(Vec::new, FaultSummary::tripped_services),
        dropped_lfs,
        pool_coverage,
        lf_abstain,
        faults: fault_summary.cloned(),
        serving: None,
    };

    let ws_quality = ws_quality(&probabilistic_labels, &covered, pool_truth);
    CurationOutput {
        probabilistic_labels,
        covered,
        lf_names,
        ws_quality,
        mining_time,
        propagation_time,
        conflict: active_matrix.conflict(),
        degradation,
    }
}

/// The columns LFs may reference: shared features of the configured sets,
/// optionally filtered to servable ones.
pub(crate) fn lf_columns(schema: &FeatureSchema, config: &CurationConfig) -> Vec<usize> {
    schema
        .columns_in_sets(&config.lf_sets, false)
        .into_iter()
        .filter(|&c| {
            config.include_nonservable
                || schema.def(c).map(|d| d.serving) == Some(ServingMode::Servable)
        })
        .collect()
}

/// The columns the propagation graph compares: LF columns plus
/// modality-specific embeddings — "we use features specific to the new
/// modality to construct edges, including unstructured features such as
/// image embeddings".
pub(crate) fn sim_columns(schema: &FeatureSchema, config: &CurationConfig) -> Vec<usize> {
    let mut columns = lf_columns(schema, config);
    columns.extend(
        schema
            .defs()
            .iter()
            .enumerate()
            .filter(|(_, d)| {
                d.set == FeatureSet::ModalitySpecific
                    && matches!(d.kind, cm_featurespace::FeatureKind::Embedding { .. })
            })
            .map(|(i, _)| i),
    );
    columns
}

/// Splits the labeled corpus for propagation: a dev slice for threshold
/// tuning and seed vertices (every positive plus negatives up to the cap).
/// Purely a function of `(labels, config.seed, config.prop_max_seeds)`, so
/// the streamed driver derives the identical split.
pub(crate) fn prop_split(labels: &[Label], config: &CurationConfig) -> (Vec<usize>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5EED);
    let mut idx: Vec<usize> = (0..labels.len()).collect();
    idx.shuffle(&mut rng);
    let dev_len = (labels.len() / 5).max(1);
    let (dev_idx, rest) = idx.split_at(dev_len.min(idx.len()));
    let mut seed_idx: Vec<usize> =
        rest.iter().copied().filter(|&r| labels[r].is_positive()).collect();
    let mut neg_budget = config.prop_max_seeds.saturating_sub(seed_idx.len());
    for &r in rest {
        if neg_budget == 0 {
            break;
        }
        if !labels[r].is_positive() {
            seed_idx.push(r);
            neg_budget -= 1;
        }
    }
    (dev_idx.to_vec(), seed_idx)
}

pub(crate) struct PropagationArtifacts {
    pub pool_lf: BoundScoreLf,
    pub dev_votes: Vec<i8>,
    pub dev_labels: Vec<Label>,
}

/// Turns propagated scores over a `[seeds | dev | pool]` corpus into the
/// propagation LF: thresholds tuned on the dev slice, scores bound to the
/// pool rows. `None` when no thresholds clear the configured precision
/// floor (the resident and streamed drivers then both omit the LF).
pub(crate) fn prop_artifacts_from_scores(
    scores: &[f64],
    seed_len: usize,
    dev_labels: Vec<Label>,
    config: &CurationConfig,
) -> Option<PropagationArtifacts> {
    let dev_scores = &scores[seed_len..seed_len + dev_labels.len()];
    let tuned = tune_score_thresholds(
        dev_scores,
        &dev_labels,
        config.prop_min_precision,
        config.prop_max_leakage,
    )?;
    let dev_votes: Vec<i8> = dev_scores
        .iter()
        .map(|&s| {
            if s >= tuned.positive {
                1
            } else if s <= tuned.negative {
                -1
            } else {
                0
            }
        })
        .collect();
    let pool_scores = scores[seed_len + dev_labels.len()..].to_vec();
    Some(PropagationArtifacts {
        pool_lf: BoundScoreLf::new(
            "label_propagation",
            pool_scores,
            tuned.positive,
            tuned.negative,
        ),
        dev_votes,
        dev_labels,
    })
}

/// Builds the label-propagation LF (§4.4): seeds from the old modality,
/// thresholds tuned on a held-out old-modality dev slice, scores bound to
/// the pool rows. Also returns the dev slice's votes so the anchored label
/// model can estimate the LF's class-conditional rates.
fn propagation_artifacts(data: &TaskData, config: &CurationConfig) -> Option<PropagationArtifacts> {
    let schema = data.world.schema();
    let sim_columns = sim_columns(schema, config);

    // Split text rows: seeds (clamped) vs dev (for threshold tuning).
    let (dev_idx, seed_idx) = prop_split(&data.text.labels, config);
    if seed_idx.is_empty() {
        return None;
    }

    // Combined table: [seeds | dev | pool].
    let seed_table = data.text.table.gather(&seed_idx);
    let dev_table = data.text.table.gather(&dev_idx);
    let mut combined = seed_table.clone();
    combined.extend_from(&dev_table);
    combined.extend_from(&data.pool.table);

    let sim = SimilarityConfig::uniform(sim_columns).fit_scales(&combined);
    let builder = GraphBuilder::approximate(config.prop_k, combined.len());
    let graph = builder.build(&combined, &sim, config.seed ^ 0x6EA9);

    let seeds: Vec<(usize, f64)> =
        seed_idx.iter().enumerate().map(|(v, &r)| (v, data.text.labels[r].as_f64())).collect();
    let prop_cfg = PropagationConfig {
        max_iters: 50,
        tol: 1e-4,
        prior: data.text.positive_rate().clamp(1e-4, 0.5),
    };
    let scores = propagate(&graph, &seeds, &prop_cfg);

    let dev_labels: Vec<Label> = dev_idx.iter().map(|&r| data.text.labels[r]).collect();
    prop_artifacts_from_scores(&scores, seed_idx.len(), dev_labels, config)
}

fn ws_quality(probs: &[f64], covered: &[bool], truth: &[Label]) -> WsQuality {
    let n_pos = truth.iter().filter(|l| l.is_positive()).count();
    let mut tp = 0usize;
    let mut fp = 0usize;
    for ((&q, &cov), label) in probs.iter().zip(covered).zip(truth) {
        if cov && q >= 0.5 {
            if label.is_positive() {
                tp += 1;
            } else {
                fp += 1;
            }
        }
    }
    let precision = if tp + fp > 0 { tp as f64 / (tp + fp) as f64 } else { 0.0 };
    let recall = if n_pos > 0 { tp as f64 / n_pos as f64 } else { 0.0 };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    let coverage = covered.iter().filter(|&&c| c).count() as f64 / covered.len().max(1) as f64;
    WsQuality { precision, recall, f1, coverage }
}

#[cfg(test)]
mod tests {
    use cm_orgsim::{TaskConfig, TaskId};

    use super::*;

    fn data() -> TaskData {
        TaskData::generate(TaskConfig::paper(TaskId::Ct2).scaled(0.04), 5, Some(64))
    }

    fn fast_config() -> CurationConfig {
        CurationConfig {
            prop_max_seeds: 400,
            mining: MiningConfig { min_recall: 0.05, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn curate_produces_useful_labels() {
        let d = data();
        let cfg = CurationConfig { use_label_propagation: false, ..fast_config() };
        let out = curate(&d, &cfg);
        assert_eq!(out.probabilistic_labels.len(), d.pool.len());
        assert!(!out.lf_names.is_empty(), "no LFs mined");
        assert!(out.ws_quality.precision > 0.5, "precision {:?}", out.ws_quality);
        assert!(out.ws_quality.recall > 0.2, "recall {:?}", out.ws_quality);
        assert!(out.ws_quality.coverage > 0.1);
        for p in &out.probabilistic_labels {
            assert!((0.0..=1.0).contains(p));
        }
    }

    #[test]
    fn propagation_adds_an_lf_and_recall() {
        let d = data();
        let without = curate(&d, &CurationConfig { use_label_propagation: false, ..fast_config() });
        let with = curate(&d, &fast_config());
        if with.lf_names.iter().any(|n| n == "label_propagation") {
            assert!(with.propagation_time.is_some());
            assert!(
                with.ws_quality.recall >= without.ws_quality.recall * 0.9,
                "LP should not collapse recall: {:?} vs {:?}",
                with.ws_quality,
                without.ws_quality
            );
        }
    }

    #[test]
    fn curate_with_provided_lfs_uses_them() {
        let d = data();
        let cfg = CurationConfig { use_label_propagation: false, ..fast_config() };
        let lfs = crate::expert::expert_lfs(d.world.schema()).unwrap();
        let n = lfs.len();
        let out = curate_with_lfs(&d, &cfg, lfs, Duration::from_secs(7 * 3600));
        assert_eq!(out.lf_names.len(), n);
        assert_eq!(out.mining_time, Duration::from_secs(7 * 3600));
    }

    #[test]
    fn covered_flags_match_labels() {
        let d = data();
        let out = curate(&d, &CurationConfig { use_label_propagation: false, ..fast_config() });
        assert_eq!(out.covered.len(), d.pool.len());
        let n_cov = out.covered.iter().filter(|&&c| c).count();
        assert!(n_cov > 0);
        assert!((out.ws_quality.coverage - n_cov as f64 / d.pool.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn anchored_beats_majority_vote_on_f1() {
        let d = data();
        let base = fast_config();
        let anchored = curate(&d, &CurationConfig { use_label_propagation: false, ..base.clone() });
        let mv = curate(
            &d,
            &CurationConfig {
                use_label_propagation: false,
                label_model: LabelModelKind::MajorityVote,
                ..base
            },
        );
        assert!(
            anchored.ws_quality.f1 >= mv.ws_quality.f1 * 0.9,
            "anchored {:?} vs majority {:?}",
            anchored.ws_quality,
            mv.ws_quality
        );
    }

    #[test]
    fn em_label_model_still_runs() {
        let d = data();
        let out = curate(
            &d,
            &CurationConfig {
                use_label_propagation: false,
                label_model: LabelModelKind::Em,
                ..fast_config()
            },
        );
        assert_eq!(out.probabilistic_labels.len(), d.pool.len());
    }
}
