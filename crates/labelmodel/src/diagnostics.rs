//! LF quality diagnostics against a labeled development set (§4.2).
//!
//! The paper's key trick: labeled data of *existing* modalities serves as
//! the development set for LFs that, thanks to the common feature space,
//! apply unchanged to the new modality.

use cm_featurespace::{FeatureTable, Label};

use crate::lf::{LabelingFunction, Vote};

/// Quality report for a single LF on a labeled dev set.
#[derive(Debug, Clone, PartialEq)]
pub struct LfReport {
    /// LF name.
    pub name: String,
    /// Fraction of rows labeled (not abstained).
    pub coverage: f64,
    /// Of the rows it labeled, fraction labeled correctly.
    pub accuracy: f64,
    /// Precision of its positive votes (positive-voting LFs; `None` if it
    /// never votes positive).
    pub positive_precision: Option<f64>,
    /// Recall of true positives via its positive votes.
    pub positive_recall: f64,
    /// Number of positive / negative votes emitted.
    pub votes: (usize, usize),
}

/// Aggregate report for an LF set.
#[derive(Debug, Clone, PartialEq)]
pub struct LfSummary {
    /// Per-LF reports.
    pub reports: Vec<LfReport>,
    /// Fraction of rows labeled by at least one LF.
    pub overall_coverage: f64,
    /// Precision of the pooled positive votes (any-LF-positive counts as a
    /// positive prediction).
    pub pooled_precision: f64,
    /// Recall of the pooled positive votes.
    pub pooled_recall: f64,
    /// F1 of the pooled positive votes.
    pub pooled_f1: f64,
}

/// Evaluates every LF against a labeled dev table.
///
/// # Panics
/// Panics if `labels.len() != dev.len()`.
pub fn evaluate_lfs(
    dev: &FeatureTable,
    labels: &[Label],
    lfs: &[Box<dyn LabelingFunction>],
) -> LfSummary {
    assert_eq!(dev.len(), labels.len(), "dev set size mismatch");
    let n = dev.len();
    let total_pos = labels.iter().filter(|l| l.is_positive()).count();

    let mut reports = Vec::with_capacity(lfs.len());
    let mut any_vote = vec![false; n];
    let mut pooled_pos = vec![false; n];
    for lf in lfs {
        let mut covered = 0usize;
        let mut correct = 0usize;
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut pos_votes = 0usize;
        let mut neg_votes = 0usize;
        for (r, label) in labels.iter().enumerate() {
            match lf.vote(dev, r) {
                Vote::Abstain => {}
                v => {
                    covered += 1;
                    any_vote[r] = true;
                    let is_pos_vote = v == Vote::Positive;
                    if is_pos_vote {
                        pos_votes += 1;
                        pooled_pos[r] = true;
                        if label.is_positive() {
                            tp += 1;
                        } else {
                            fp += 1;
                        }
                    } else {
                        neg_votes += 1;
                    }
                    let correct_vote = is_pos_vote == label.is_positive();
                    correct += usize::from(correct_vote);
                }
            }
        }
        reports.push(LfReport {
            name: lf.name().to_owned(),
            coverage: covered as f64 / n.max(1) as f64,
            accuracy: if covered > 0 { correct as f64 / covered as f64 } else { 0.0 },
            positive_precision: (tp + fp > 0).then(|| tp as f64 / (tp + fp) as f64),
            positive_recall: if total_pos > 0 { tp as f64 / total_pos as f64 } else { 0.0 },
            votes: (pos_votes, neg_votes),
        });
    }

    let pooled_tp =
        labels.iter().enumerate().filter(|(r, l)| pooled_pos[*r] && l.is_positive()).count();
    let pooled_pred = pooled_pos.iter().filter(|&&p| p).count();
    let precision = if pooled_pred > 0 { pooled_tp as f64 / pooled_pred as f64 } else { 0.0 };
    let recall = if total_pos > 0 { pooled_tp as f64 / total_pos as f64 } else { 0.0 };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    LfSummary {
        reports,
        overall_coverage: any_vote.iter().filter(|&&v| v).count() as f64 / n.max(1) as f64,
        pooled_precision: precision,
        pooled_recall: recall,
        pooled_f1: f1,
    }
}

/// Filters LFs to those meeting precision and coverage floors on the dev
/// set — the pre-deployment validation step the paper applies to both mined
/// and expert LFs.
pub fn filter_lfs(
    dev: &FeatureTable,
    labels: &[Label],
    lfs: Vec<Box<dyn LabelingFunction>>,
    min_precision: f64,
    min_coverage: f64,
) -> Vec<Box<dyn LabelingFunction>> {
    let summary = evaluate_lfs(dev, labels, &lfs);
    lfs.into_iter()
        .zip(summary.reports)
        .filter(|(_, rep)| {
            rep.coverage >= min_coverage
                && match rep.positive_precision {
                    Some(p) => p >= min_precision,
                    // Negative-only LFs are kept if their accuracy clears
                    // the same bar.
                    None => rep.accuracy >= min_precision,
                }
        })
        .map(|(lf, _)| lf)
        .collect()
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use cm_featurespace::{
        CatSet, FeatureDef, FeatureSchema, FeatureSet, FeatureValue, ServingMode, Vocabulary,
    };

    use super::*;
    use crate::lf::CategoricalContainsLf;

    /// 10 rows: rows 0-2 positive with id 0; rows 3-4 positive with id 1;
    /// rows 5-9 negative with id 2 (except row 5 which also carries id 0 —
    /// a false-positive trap).
    fn dev() -> (FeatureTable, Vec<Label>) {
        let schema = Arc::new(FeatureSchema::from_defs(vec![FeatureDef::categorical(
            "c",
            FeatureSet::A,
            ServingMode::Servable,
            Vocabulary::from_names(["p0", "p1", "bg"]),
        )]));
        let mut t = FeatureTable::new(schema);
        let mut labels = Vec::new();
        for i in 0..10 {
            let (ids, label) = match i {
                0..=2 => (vec![0], Label::Positive),
                3..=4 => (vec![1], Label::Positive),
                5 => (vec![0, 2], Label::Negative),
                _ => (vec![2], Label::Negative),
            };
            t.push_row(&[FeatureValue::Categorical(CatSet::from_ids(ids))]);
            labels.push(label);
        }
        (t, labels)
    }

    fn lf0() -> Box<dyn LabelingFunction> {
        Box::new(CategoricalContainsLf::new(0, vec![0], false, Vote::Positive))
    }

    #[test]
    fn report_counts_are_correct() {
        let (t, labels) = dev();
        let summary = evaluate_lfs(&t, &labels, &[lf0()]);
        let rep = &summary.reports[0];
        // LF fires on rows 0,1,2 (TP) and 5 (FP).
        assert_eq!(rep.votes, (4, 0));
        assert!((rep.coverage - 0.4).abs() < 1e-12);
        assert_eq!(rep.positive_precision, Some(0.75));
        assert!((rep.positive_recall - 3.0 / 5.0).abs() < 1e-12);
        assert!((rep.accuracy - 0.75).abs() < 1e-12);
    }

    #[test]
    fn pooled_metrics_combine_lfs() {
        let (t, labels) = dev();
        let lfs: Vec<Box<dyn LabelingFunction>> =
            vec![lf0(), Box::new(CategoricalContainsLf::new(0, vec![1], false, Vote::Positive))];
        let summary = evaluate_lfs(&t, &labels, &lfs);
        // Pooled positives: rows 0-4 (all 5 TP) + row 5 (FP).
        assert!((summary.pooled_precision - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(summary.pooled_recall, 1.0);
        assert!(summary.pooled_f1 > 0.9);
        assert!((summary.overall_coverage - 0.6).abs() < 1e-12);
    }

    #[test]
    fn filter_drops_low_precision_lfs() {
        let (t, labels) = dev();
        let lfs: Vec<Box<dyn LabelingFunction>> = vec![
            lf0(),                                                                   // precision 0.75
            Box::new(CategoricalContainsLf::new(0, vec![2], false, Vote::Positive)), // precision 1/6
        ];
        let kept = filter_lfs(&t, &labels, lfs, 0.7, 0.05);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].name(), lf0().name());
    }

    #[test]
    fn filter_drops_low_coverage_lfs() {
        let (t, labels) = dev();
        let kept = filter_lfs(&t, &labels, vec![lf0()], 0.5, 0.9);
        assert!(kept.is_empty());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn evaluate_rejects_mismatched_labels() {
        let (t, _) = dev();
        evaluate_lfs(&t, &[Label::Positive], &[lf0()]);
    }

    #[test]
    fn negative_lf_has_no_positive_precision() {
        let (t, labels) = dev();
        let lf: Box<dyn LabelingFunction> =
            Box::new(CategoricalContainsLf::new(0, vec![2], false, Vote::Negative));
        let summary = evaluate_lfs(&t, &labels, &[lf]);
        let rep = &summary.reports[0];
        assert_eq!(rep.positive_precision, None);
        assert_eq!(rep.votes.0, 0);
        // Fires on rows 5..=9 and 5 is negative => accuracy 1.0
        assert_eq!(rep.accuracy, 1.0);
    }
}
