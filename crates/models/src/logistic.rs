//! L2-regularized logistic regression trained by mini-batch gradient
//! descent on the noise-aware loss.

use cm_linalg::rng::SliceRandom;
use cm_linalg::rng::StdRng;
use cm_linalg::{dot, sigmoid, Matrix};
use cm_par::ParConfig;

use crate::loss::bce_grad;
use crate::optim::{Adam, Optimizer};

/// Minimum batch items per gradient chunk. The default batch size (64) fits
/// in one chunk, so small-batch training accumulates gradients in exactly
/// the historical order; large batches split into deterministic chunks
/// whose partial gradients fold in chunk index order.
const BATCH_MIN_CHUNK: usize = 256;

/// Below this many matrix cells, `logits` stays serial.
const LOGITS_PAR_WORK: usize = 1 << 16;

/// A trained logistic regression model.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f32>,
    bias: f32,
}

/// Hyperparameters for [`LogisticRegression::fit`].
#[derive(Debug, Clone)]
pub struct LogisticConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// L2 penalty on weights (not bias).
    pub l2: f32,
    /// Shuffle/init seed.
    pub seed: u64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self { epochs: 20, batch_size: 64, lr: 0.05, l2: 1e-4, seed: 0 }
    }
}

impl LogisticRegression {
    /// Fits on rows of `x` against soft targets, optionally per-sample
    /// weighted.
    ///
    /// # Panics
    /// Panics on shape mismatches or an empty training set.
    pub fn fit(
        x: &Matrix,
        targets: &[f64],
        sample_weights: Option<&[f64]>,
        config: &LogisticConfig,
    ) -> Self {
        Self::fit_with(x, targets, sample_weights, config, &ParConfig::from_env())
    }

    /// [`LogisticRegression::fit`] with an explicit parallel configuration.
    ///
    /// Per-batch gradients accumulate in fixed-size chunks whose partial
    /// sums fold in chunk index order, so the fitted weights are
    /// bit-identical for any thread count.
    ///
    /// # Panics
    /// Panics on shape mismatches or an empty training set.
    pub fn fit_with(
        x: &Matrix,
        targets: &[f64],
        sample_weights: Option<&[f64]>,
        config: &LogisticConfig,
        par: &ParConfig,
    ) -> Self {
        assert_eq!(x.rows(), targets.len(), "target count mismatch");
        assert!(x.rows() > 0, "empty training set");
        if let Some(w) = sample_weights {
            assert_eq!(w.len(), targets.len(), "sample weight count mismatch");
        }
        let par = par.clone().with_min_chunk(BATCH_MIN_CHUNK);
        let d = x.cols();
        let mut weights = vec![0.0f32; d];
        let mut bias = 0.0f32;
        let mut opt_w = Adam::new(config.lr, d);
        let mut opt_b = Adam::new(config.lr, 1);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..x.rows()).collect();

        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(config.batch_size) {
                let folded = cm_par::par_map_reduce(
                    &par,
                    batch.len(),
                    |range| {
                        let mut grad_w = vec![0.0f32; d];
                        let mut grad_b = 0.0f32;
                        let mut wsum = 0.0f32;
                        for &i in &batch[range] {
                            let row = x.row(i);
                            let z = dot(row, &weights) + bias;
                            let w = sample_weights.map_or(1.0, |w| w[i]) as f32;
                            let g = bce_grad(z, targets[i]) * w;
                            cm_linalg::axpy(g, row, &mut grad_w);
                            grad_b += g;
                            wsum += w;
                        }
                        (grad_w, grad_b, wsum)
                    },
                    // lint: allow(merge-float) — chunk-index-order fold is
                    // pinned by par_map_reduce; the serial path replays the
                    // identical merge sequence (serial≡parallel suite)
                    |(mut gw, gb, ws), (cw, cb, cs)| {
                        for (a, b) in gw.iter_mut().zip(&cw) {
                            *a += *b;
                        }
                        (gw, gb + cb, ws + cs)
                    },
                )
                .unwrap_or_else(|e| e.resume());
                let Some((mut grad_w, mut grad_b, wsum)) = folded else { continue };
                if wsum > 0.0 {
                    let inv = 1.0 / wsum;
                    for (gw, &wt) in grad_w.iter_mut().zip(&weights) {
                        *gw = *gw * inv + config.l2 * wt;
                    }
                    grad_b *= inv;
                    opt_w.step(&mut weights, &grad_w);
                    opt_b.step(std::slice::from_mut(&mut bias), &[grad_b]);
                }
            }
        }
        Self { weights, bias }
    }

    /// Decision-function logits.
    pub fn logits(&self, x: &Matrix) -> Vec<f32> {
        self.logits_with(x, &ParConfig::from_env())
    }

    /// [`LogisticRegression::logits`] with an explicit parallel
    /// configuration. Logits are row-independent, so any thread count
    /// yields the same bits; small inputs stay serial.
    ///
    /// # Panics
    /// Panics if the feature width differs from the fitted width.
    pub fn logits_with(&self, x: &Matrix, par: &ParConfig) -> Vec<f32> {
        assert_eq!(x.cols(), self.weights.len(), "feature width mismatch");
        if x.rows() * x.cols() < LOGITS_PAR_WORK {
            return x.rows_iter().map(|row| dot(row, &self.weights) + self.bias).collect();
        }
        cm_par::par_map(&par.clone().with_min_chunk(BATCH_MIN_CHUNK), x.rows(), |r| {
            dot(x.row(r), &self.weights) + self.bias
        })
        .unwrap_or_else(|e| e.resume())
    }

    /// Positive-class probabilities.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        self.logits(x).into_iter().map(|z| f64::from(sigmoid(z))).collect()
    }

    /// Learned weights.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Learned bias.
    pub fn bias(&self) -> f32 {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable blob pair.
    fn blobs(n: usize) -> (Matrix, Vec<f64>) {
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let cls = i % 2 == 0;
            let jitter = ((i * 37 % 100) as f32) / 100.0 - 0.5;
            let center = if cls { 2.0 } else { -2.0 };
            rows.push(vec![center + jitter, -center + jitter * 0.5]);
            y.push(if cls { 1.0 } else { 0.0 });
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn separates_blobs() {
        let (x, y) = blobs(200);
        let model = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default());
        let p = model.predict_proba(&x);
        let correct = p.iter().zip(&y).filter(|(p, &t)| (**p >= 0.5) == (t >= 0.5)).count();
        assert!(correct >= 195, "{correct}/200 correct");
    }

    #[test]
    fn soft_targets_are_honored() {
        // All targets at 0.5 should keep predictions near 0.5.
        let (x, _) = blobs(100);
        let soft = vec![0.5; 100];
        let model = LogisticRegression::fit(&x, &soft, None, &LogisticConfig::default());
        for p in model.predict_proba(&x) {
            assert!((p - 0.5).abs() < 0.15, "p = {p}");
        }
    }

    #[test]
    fn l2_shrinks_weights() {
        let (x, y) = blobs(200);
        let loose = LogisticRegression::fit(
            &x,
            &y,
            None,
            &LogisticConfig { l2: 0.0, ..Default::default() },
        );
        let tight = LogisticRegression::fit(
            &x,
            &y,
            None,
            &LogisticConfig { l2: 1.0, ..Default::default() },
        );
        let norm = |m: &LogisticRegression| cm_linalg::l2_norm(m.weights());
        assert!(norm(&tight) < norm(&loose));
    }

    #[test]
    fn sample_weights_shift_decision() {
        // Upweighting the positive class pushes probabilities up.
        let (x, y) = blobs(200);
        let w_pos: Vec<f64> = y.iter().map(|&t| if t >= 0.5 { 10.0 } else { 1.0 }).collect();
        let base = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default());
        let up = LogisticRegression::fit(&x, &y, Some(&w_pos), &LogisticConfig::default());
        let mean = |v: Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(up.predict_proba(&x)) > mean(base.predict_proba(&x)));
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = blobs(100);
        let a = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default());
        let b = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default());
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.bias(), b.bias());
    }

    #[test]
    fn training_is_bit_identical_across_thread_counts() {
        // Batch 2048 splits into multiple 256-item gradient chunks.
        let (x, y) = blobs(4096);
        let cfg = LogisticConfig { epochs: 3, batch_size: 2048, ..Default::default() };
        let base = LogisticRegression::fit_with(&x, &y, None, &cfg, &ParConfig::threads(1));
        for threads in [2usize, 4, 8] {
            let par = ParConfig::threads(threads);
            let model = LogisticRegression::fit_with(&x, &y, None, &cfg, &par);
            assert_eq!(model.weights(), base.weights(), "threads = {threads}");
            assert_eq!(model.bias().to_bits(), base.bias().to_bits(), "threads = {threads}");
            assert_eq!(model.logits_with(&x, &par), base.logits_with(&x, &par));
        }
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn rejects_empty_input() {
        LogisticRegression::fit(&Matrix::zeros(0, 2), &[], None, &LogisticConfig::default());
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn predict_rejects_wrong_width() {
        let (x, y) = blobs(10);
        let model = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default());
        model.predict_proba(&Matrix::zeros(1, 5));
    }
}
