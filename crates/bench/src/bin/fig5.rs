//! Regenerates **Figure 5**: fully supervised image models vs the
//! cross-modal pipeline as hand-labeled data grows, for CT 1, in two
//! regimes:
//!
//! - **top panel** — end models use all four feature sets (`+ ABCD`);
//! - **bottom panel** — end models use only `+ AB` while the LFs still use
//!   all features (the "nonservable" scenario: sets C/D feed weak
//!   supervision offline but cannot be served).
//!
//! Expected shape (paper): both cross-modal lines are flat (no hand labels
//! consumed); each fully supervised curve crosses its cross-modal line, and
//! the nonservable regime's cross-over needs *more* hand labels because the
//! LFs retain features the supervised model cannot use.
//!
//! The evaluation matrix lives in `specs/fig5.json`; `CM_SCALE`,
//! `CM_SEEDS`, and `CM_JSON` still override it.

use cm_bench::{
    load_spec, maybe_write_json, mean, spec_reservoir, spec_scale, spec_scenario, spec_seeds,
    TaskRun,
};
use cm_eval::{find_crossover, CrossoverSeries};
use cm_featurespace::FeatureSet;
use cm_json::{Json, ToJson};
use cm_pipeline::{curate, Scenario};

struct Panel {
    feature_sets: String,
    cross_modal_auprc: f64,
    cross_modal_rel: f64,
    supervised: Vec<(f64, f64, f64)>, // (n, auprc, relative)
    cross_over: Option<f64>,
}

impl ToJson for Panel {
    fn to_json(&self) -> Json {
        Json::obj([
            ("feature_sets", self.feature_sets.to_json()),
            ("cross_modal_auprc", self.cross_modal_auprc.to_json()),
            ("cross_modal_rel", self.cross_modal_rel.to_json()),
            ("supervised", self.supervised.to_json()),
            ("cross_over", self.cross_over.to_json()),
        ])
    }
}

fn main() {
    let spec = load_spec("fig5");
    let scale = spec_scale(&spec);
    let seeds = spec_seeds(&spec);
    let id = spec.tasks[0];
    println!("Figure 5 (CT 1, scale {scale}, {} seed(s))", seeds.len());

    let mut panels = Vec::new();
    for (label, end_sets) in
        [("ABCD", FeatureSet::SHARED.to_vec()), ("AB", vec![FeatureSet::A, FeatureSet::B])]
    {
        let mut cross_aps = Vec::new();
        let mut baselines = Vec::new();
        let mut curve_acc: Vec<(f64, Vec<f64>)> = Vec::new();
        for &seed in &seeds {
            let run = TaskRun::new(id, scale, seed, spec_reservoir(&spec, scale));
            let runner = run.runner();
            // LFs always use all four sets (+ nonservable features); only
            // the end model is restricted.
            let curation = curate(&run.data, &run.curation_config(seed));
            let baseline = runner.baseline_auprc().unwrap();
            baselines.push(baseline);

            let cross = spec_scenario(&spec, &format!("cross-modal T,I+{label}"));
            cross_aps.push(runner.run(&cross, Some(&curation)).unwrap().auprc);

            for (i, &n) in
                [250.0f64, 500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16_000.0].iter().enumerate()
            {
                let n = (n * scale) as usize;
                if n < 32 || n > run.data.labeled_image.len() {
                    continue;
                }
                let eval = runner.run(&Scenario::fully_supervised(&end_sets, n), None).unwrap();
                if curve_acc.len() <= i {
                    curve_acc.push((n as f64, Vec::new()));
                }
                curve_acc[i].1.push(eval.auprc);
            }
        }
        let baseline = mean(&baselines);
        let cross_ap = mean(&cross_aps);
        let curve: Vec<(f64, f64)> = curve_acc.iter().map(|(n, a)| (*n, mean(a))).collect();
        let cross_over = find_crossover(&CrossoverSeries::new(curve.clone()), cross_ap);

        println!(
            "\npanel +{label}: cross-modal AUPRC {cross_ap:.4} ({:.2}x baseline)",
            cross_ap / baseline
        );
        println!("{:>10} {:>10} {:>10}", "n_labeled", "AUPRC", "relative");
        for &(n, a) in &curve {
            println!("{n:>10.0} {a:>10.4} {:>9.2}x", a / baseline);
        }
        println!(
            "cross-over: {}",
            cross_over
                .map_or_else(|| "not reached".into(), |c| format!("{c:.0} hand-labeled images"))
        );
        panels.push(Panel {
            feature_sets: label.to_owned(),
            cross_modal_auprc: cross_ap,
            cross_modal_rel: cross_ap / baseline,
            supervised: curve.iter().map(|&(n, a)| (n, a, a / baseline)).collect(),
            cross_over,
        });
    }
    if panels.len() == 2 {
        match (panels[0].cross_over, panels[1].cross_over) {
            (Some(full), Some(ns)) => println!(
                "\nnonservable effect: cross-over moves {:.0} -> {:.0} when sets C/D are LF-only",
                full, ns
            ),
            _ => println!("\nnonservable effect: at least one curve did not cross"),
        }
    }
    maybe_write_json(&panels);
}
