//! Span-aware validation for `specs/lint_effects.json` — the declarative
//! sanction list the `cm-lint` effect audit runs against.
//!
//! The lint engine itself parses the file tolerantly (a malformed spec
//! degrades to *no* sanctions, which makes the audit noisier, never
//! quieter). This validator is the strict side of that contract: `xtask
//! validate` and CI run it so a typo'd kind name or an empty reason is a
//! build-time diagnostic with an exact `path:line:col`, not a silent
//! widening of the audit.
//!
//! ## Spec format
//!
//! ```json
//! {
//!   "version": 1,
//!   "sanctions": {
//!     "env":     [ { "path": "crates/par/src/lib.rs", "reason": "..." } ],
//!     "fs":      [ ... ],
//!     "clock":   [ ... ],
//!     "entropy": [ ... ]
//!   }
//! }
//! ```
//!
//! Rules raised here:
//! - [`CheckRule::SpecSyntax`] — the file is not valid JSON;
//! - [`CheckRule::LintSpecField`] — structural problems: unknown or
//!   missing fields, wrong value types, unknown effect kinds;
//! - [`CheckRule::LintSpecValue`] — well-typed but wrong values: an
//!   unsupported `version`, an empty `path`/`reason`, an absolute or
//!   parent-escaping path, backslash separators, or a duplicate path
//!   within one kind.

use cm_json::spanned::offset_span;
use cm_json::JsonNode;
use cm_span::Span;

use crate::{CheckRule, Violation};

/// Top-level fields a lint-effects spec may carry.
const TOP_FIELDS: &[&str] = &["version", "sanctions"];

/// The effect kinds `cm-lint` audits; `sanctions` keys must come from
/// this set (matching `cm_lint::effects::EffectKind`).
const KINDS: &[&str] = &["env", "fs", "clock", "entropy"];

/// Fields of one sanction entry.
const ENTRY_FIELDS: &[&str] = &["path", "reason"];

/// Validates a lint-effects spec, returning every violation with the
/// exact source span of the offending token. An empty vec means the spec
/// is clean.
pub fn validate_lint_spec_source(source: &str, path: &str) -> Vec<Violation> {
    let root = match JsonNode::parse(source) {
        Ok(n) => n,
        Err(e) => {
            let span = offset_span(source, e.offset);
            return vec![Violation::spanned(CheckRule::SpecSyntax, path, span, e.message)];
        }
    };
    let mut w = Walker { path, out: Vec::new() };
    w.spec(&root);
    w.out
}

struct Walker<'a> {
    path: &'a str,
    out: Vec<Violation>,
}

impl Walker<'_> {
    fn push(&mut self, rule: CheckRule, span: Span, message: impl Into<String>) {
        self.out.push(Violation::spanned(rule, self.path, span, message));
    }

    /// Flags unknown keys of an object against an allow-list.
    fn known_fields(&mut self, node: &JsonNode, allowed: &[&str], what: &str) {
        if let Some(entries) = node.as_obj() {
            for e in entries {
                if !allowed.contains(&e.key.as_str()) {
                    self.push(
                        CheckRule::LintSpecField,
                        e.key_span,
                        format!("unknown {what} field {:?}", e.key),
                    );
                }
            }
        }
    }

    /// A required non-empty string field of an entry object.
    fn req_str<'n>(&mut self, node: &'n JsonNode, key: &str, what: &str) -> Option<&'n str> {
        let Some(v) = node.get(key) else {
            self.push(
                CheckRule::LintSpecField,
                node.span,
                format!("{what} is missing required field {key:?}"),
            );
            return None;
        };
        let Some(s) = v.as_str() else {
            self.push(
                CheckRule::LintSpecField,
                v.span,
                format!("{what} {key:?} is {}, expected string", v.type_name()),
            );
            return None;
        };
        if s.trim().is_empty() {
            self.push(CheckRule::LintSpecValue, v.span, format!("{what} {key:?} is empty"));
            return None;
        }
        Some(s)
    }

    fn spec(&mut self, root: &JsonNode) {
        if root.as_obj().is_none() {
            self.push(
                CheckRule::LintSpecField,
                root.span,
                format!("lint-effects spec root is {}, expected object", root.type_name()),
            );
            return;
        }
        self.known_fields(root, TOP_FIELDS, "lint-effects spec");
        self.version(root);
        self.sanctions(root);
    }

    fn version(&mut self, root: &JsonNode) {
        let Some(v) = root.get("version") else {
            self.push(
                CheckRule::LintSpecField,
                root.span,
                "lint-effects spec is missing required field \"version\"",
            );
            return;
        };
        match v.as_usize() {
            Some(1) => {}
            Some(n) => self.push(
                CheckRule::LintSpecValue,
                v.span,
                format!(
                    "unsupported lint-effects spec version {n}; this validator knows version 1"
                ),
            ),
            None => self.push(
                CheckRule::LintSpecField,
                v.span,
                format!("\"version\" is {}, expected the integer 1", v.type_name()),
            ),
        }
    }

    fn sanctions(&mut self, root: &JsonNode) {
        let Some(s) = root.get("sanctions") else {
            self.push(
                CheckRule::LintSpecField,
                root.span,
                "lint-effects spec is missing required field \"sanctions\"",
            );
            return;
        };
        let Some(entries) = s.as_obj() else {
            self.push(
                CheckRule::LintSpecField,
                s.span,
                format!(
                    "\"sanctions\" is {}, expected an object keyed by effect kind",
                    s.type_name()
                ),
            );
            return;
        };
        for e in entries {
            if !KINDS.contains(&e.key.as_str()) {
                self.push(
                    CheckRule::LintSpecField,
                    e.key_span,
                    format!(
                        "unknown effect kind {:?}; the audit knows env, fs, clock, entropy",
                        e.key
                    ),
                );
                continue;
            }
            self.kind_list(&e.key, &e.value);
        }
    }

    /// Validates one kind's sanction list: an array of `{path, reason}`
    /// entries with relative, slash-separated, non-duplicate paths.
    fn kind_list(&mut self, kind: &str, list: &JsonNode) {
        let Some(items) = list.as_arr() else {
            self.push(
                CheckRule::LintSpecField,
                list.span,
                format!("sanction kind {kind:?} is {}, expected an array", list.type_name()),
            );
            return;
        };
        let mut seen: Vec<&str> = Vec::new();
        for item in items {
            if item.as_obj().is_none() {
                self.push(
                    CheckRule::LintSpecField,
                    item.span,
                    format!(
                        "{kind:?} sanction is {}, expected an object with \"path\" and \"reason\"",
                        item.type_name()
                    ),
                );
                continue;
            }
            let what = format!("{kind:?} sanction");
            self.known_fields(item, ENTRY_FIELDS, &what);
            self.req_str(item, "reason", &what);
            let Some(p) = self.req_str(item, "path", &what) else { continue };
            let span = item.get("path").map_or(item.span, |n| n.span);
            if p.starts_with('/') {
                self.push(
                    CheckRule::LintSpecValue,
                    span,
                    format!("{what} path {p:?} is absolute; sanctions are workspace-relative"),
                );
            } else if p.contains('\\') {
                self.push(
                    CheckRule::LintSpecValue,
                    span,
                    format!("{what} path {p:?} uses backslashes; use forward slashes"),
                );
            } else if p.split('/').any(|seg| seg == "..") {
                self.push(
                    CheckRule::LintSpecValue,
                    span,
                    format!("{what} path {p:?} escapes the workspace with \"..\""),
                );
            } else if seen.contains(&p) {
                self.push(CheckRule::LintSpecValue, span, format!("duplicate {what} path {p:?}"));
            } else {
                seen.push(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_in_spec_shape_is_clean() {
        let src = r#"{
            "version": 1,
            "sanctions": {
                "env": [ { "path": "crates/par/src/lib.rs", "reason": "one CM_THREADS read" } ],
                "fs": [], "clock": [], "entropy": []
            }
        }"#;
        assert!(validate_lint_spec_source(src, "t").is_empty());
    }

    #[test]
    fn every_defect_class_is_caught() {
        let src = r#"{
            "version": 2,
            "extra": true,
            "sanctions": {
                "env": [
                    { "path": "/abs/path.rs", "reason": "r" },
                    { "path": "a.rs", "reason": "" },
                    { "path": "a.rs" },
                    { "path": "crates/x.rs", "reason": "r" },
                    { "path": "crates/x.rs", "reason": "r" },
                    "not-an-object"
                ],
                "net": []
            }
        }"#;
        let out = validate_lint_spec_source(src, "t");
        let fields = out.iter().filter(|v| v.rule == CheckRule::LintSpecField).count();
        let values = out.iter().filter(|v| v.rule == CheckRule::LintSpecValue).count();
        // field: "extra", missing reason, non-object entry, unknown kind "net"
        assert_eq!(fields, 4, "{out:?}");
        // value: version 2, absolute path, empty reason, two duplicate paths
        // ("a.rs" again after the empty-reason entry, "crates/x.rs" again)
        assert_eq!(values, 5, "{out:?}");
        assert!(out.iter().all(|v| v.span.is_some()), "every violation carries a span");
    }

    #[test]
    fn syntax_error_is_spanned() {
        let out = validate_lint_spec_source("{ \"version\": 1, ", "t");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, CheckRule::SpecSyntax);
        assert!(out[0].span.is_some());
    }
}
