//! Self-training augmentation (paper §6.4).
//!
//! After the cross-modal model ships, the paper augments it "via techniques
//! for active learning or self-training on the order of days". Self-training
//! re-labels the pool with the deployed model's own most confident
//! predictions and folds them back into the probabilistic labels, sharpening
//! the training signal without any human effort.

use cm_featurespace::{CmError, CmResult, ErrorKind, FeatureSet};
use cm_fusion::{EarlyFusionModel, ModalityData};
use cm_models::{ModelKind, TrainConfig};

use crate::curation::CurationOutput;
use crate::data::{mask_disallowed_sets, DenseView, TaskData};

/// Configuration of one self-training round.
#[derive(Debug, Clone)]
pub struct SelfTrainConfig {
    /// Confidence required to adopt a model pseudo-label (distance from
    /// 0.5; e.g. 0.4 adopts predictions outside `[0.1, 0.9]`).
    pub confidence_margin: f64,
    /// Number of re-label/retrain rounds.
    pub rounds: usize,
    /// Feature sets the model uses.
    pub sets: Vec<FeatureSet>,
    /// Include modality-specific features.
    pub include_modality_specific: bool,
}

impl Default for SelfTrainConfig {
    fn default() -> Self {
        Self {
            confidence_margin: 0.4,
            rounds: 1,
            sets: FeatureSet::SHARED.to_vec(),
            include_modality_specific: true,
        }
    }
}

/// Outcome of self-training.
pub struct SelfTrainOutcome {
    /// The final trained model.
    pub model: EarlyFusionModel,
    /// Updated probabilistic labels for the pool.
    pub labels: Vec<f64>,
    /// How many pool rows were pseudo-labeled in the final round.
    pub n_pseudo_labeled: usize,
}

/// Runs self-training: trains the cross-modal early-fusion model, adopts
/// its confident pool predictions as labels, and retrains. Repeats for
/// `config.rounds` rounds.
///
/// # Errors
/// Returns [`ErrorKind::InvalidConfig`] if `rounds == 0` or the scenario
/// selects no features.
pub fn self_train(
    data: &TaskData,
    curation: &CurationOutput,
    model_kind: &ModelKind,
    train: &TrainConfig,
    config: &SelfTrainConfig,
) -> CmResult<SelfTrainOutcome> {
    if config.rounds == 0 {
        return Err(CmError::new(
            ErrorKind::InvalidConfig,
            "self_train",
            "need at least one round".to_owned(),
        ));
    }
    let schema = data.world.schema();
    let columns = schema.columns_in_sets(&config.sets, config.include_modality_specific);
    if columns.is_empty() {
        return Err(CmError::new(
            ErrorKind::InvalidConfig,
            "self_train",
            "no features selected".to_owned(),
        ));
    }
    let view = DenseView::fit(&[&data.text.table, &data.pool.table], columns)?;

    let mut allowed = config.sets.clone();
    if config.include_modality_specific {
        allowed.push(FeatureSet::ModalitySpecific);
    }
    let mut x_text = view.encode(&data.text.table);
    mask_disallowed_sets(&mut x_text, &view, schema, &allowed);
    let mut x_pool = view.encode(&data.pool.table);
    mask_disallowed_sets(&mut x_pool, &view, schema, &allowed);

    let mut labels = curation.probabilistic_labels.clone();
    let mut n_pseudo = 0usize;
    let mut model = train_once(&x_text, data, &x_pool, &labels, model_kind, train);
    for round in 0..config.rounds {
        let preds = model.predict_proba(&x_pool);
        n_pseudo = 0;
        for (q, &p) in labels.iter_mut().zip(&preds) {
            if (p - 0.5).abs() >= config.confidence_margin {
                *q = p;
                n_pseudo += 1;
            }
        }
        let cfg = TrainConfig { seed: train.seed.wrapping_add(round as u64 + 1), ..train.clone() };
        model = train_once(&x_text, data, &x_pool, &labels, model_kind, &cfg);
    }
    Ok(SelfTrainOutcome { model, labels, n_pseudo_labeled: n_pseudo })
}

fn train_once(
    x_text: &cm_linalg::Matrix,
    data: &TaskData,
    x_pool: &cm_linalg::Matrix,
    pool_labels: &[f64],
    model_kind: &ModelKind,
    train: &TrainConfig,
) -> EarlyFusionModel {
    let parts = [
        ModalityData::new(x_text.clone(), data.text.labels_f64()),
        ModalityData::new(x_pool.clone(), pool_labels.to_vec()),
    ];
    EarlyFusionModel::train(&parts, model_kind, train, None)
}

#[cfg(test)]
mod tests {
    use cm_orgsim::{TaskConfig, TaskId};

    use super::*;
    use crate::curation::{curate, CurationConfig};

    fn setup() -> (TaskData, CurationOutput) {
        let data = TaskData::generate(TaskConfig::paper(TaskId::Ct2).scaled(0.03), 3, Some(64));
        let curation = curate(&data, &CurationConfig::default());
        (data, curation)
    }

    #[test]
    fn self_training_pseudo_labels_and_does_not_collapse() {
        let (data, curation) = setup();
        let train = TrainConfig { epochs: 8, ..TrainConfig::default() };
        let out =
            self_train(&data, &curation, &ModelKind::Logistic, &train, &SelfTrainConfig::default())
                .unwrap();
        assert!(out.n_pseudo_labeled > 0, "no confident predictions adopted");
        assert_eq!(out.labels.len(), data.pool.len());
        for q in &out.labels {
            assert!((0.0..=1.0).contains(q));
        }
        // Quality floor: pseudo-labels should still track ground truth.
        let truth: Vec<bool> = data.pool.labels.iter().map(|l| l.is_positive()).collect();
        let ap = cm_eval::auprc(&out.labels, &truth);
        assert!(ap > 0.3, "self-trained labels degraded to AUPRC {ap}");
    }

    #[test]
    fn extra_rounds_only_touch_confident_rows() {
        let (data, curation) = setup();
        let train = TrainConfig { epochs: 5, ..TrainConfig::default() };
        let cfg = SelfTrainConfig { confidence_margin: 0.49, rounds: 2, ..Default::default() };
        let out = self_train(&data, &curation, &ModelKind::Logistic, &train, &cfg).unwrap();
        // With a nearly-1.0 confidence requirement few rows qualify.
        assert!(out.n_pseudo_labeled <= data.pool.len());
        let changed =
            out.labels.iter().zip(&curation.probabilistic_labels).filter(|(a, b)| a != b).count();
        assert!(changed <= out.n_pseudo_labeled + data.pool.len() / 2);
    }

    #[test]
    fn rejects_zero_rounds() {
        let (data, curation) = setup();
        let err = self_train(
            &data,
            &curation,
            &ModelKind::Logistic,
            &TrainConfig::default(),
            &SelfTrainConfig { rounds: 0, ..Default::default() },
        )
        .err()
        .unwrap();
        assert_eq!(err.kind, ErrorKind::InvalidConfig);
        assert!(err.message.contains("at least one round"));
    }
}
