//! Seeded property-test loops for the parallel substrate (the hermetic
//! stand-in for proptest): random lengths, chunk sizes, and thread counts
//! against sequential oracles, plus panic-robustness and env-override
//! behaviour.

use std::sync::Mutex;

use cm_par::{par_chunks_mut, par_map, par_map_chunks, par_map_reduce, ParConfig, THREADS_ENV};

/// splitmix64 — tiny in-tree generator so this crate stays dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

#[test]
fn par_map_equals_sequential_map_over_random_shapes() {
    let mut rng = Rng(0xC0FFEE);
    for _ in 0..60 {
        let n = rng.below(5_000) as usize;
        let min_chunk = rng.below(512) as usize + 1;
        let threads = rng.below(8) as usize + 1;
        let salt = rng.next();
        let cfg = ParConfig::threads(threads).with_min_chunk(min_chunk);
        let f = |i: usize| (i as u64).wrapping_mul(salt).rotate_left(11);
        let got = par_map(&cfg, n, f).unwrap();
        let want: Vec<u64> = (0..n).map(f).collect();
        assert_eq!(got, want, "n = {n}, min_chunk = {min_chunk}, threads = {threads}");
    }
}

#[test]
fn float_reductions_are_bit_stable_over_random_shapes() {
    let mut rng = Rng(0xBEEF);
    for _ in 0..40 {
        let n = rng.below(20_000) as usize;
        let min_chunk = rng.below(700) as usize + 1;
        let salt = rng.next() | 1;
        let value = move |i: usize| {
            let x = (i as u64).wrapping_mul(salt) >> 11;
            x as f64 / (1u64 << 53) as f64 - 0.5
        };
        let sum = |threads: usize| {
            let cfg = ParConfig::threads(threads).with_min_chunk(min_chunk);
            par_map_reduce(&cfg, n, |r| r.map(value).sum::<f64>(), |a, b| a + b).unwrap()
        };
        let s1 = sum(1).map(f64::to_bits);
        for threads in [2usize, 3, 5, 8] {
            assert_eq!(
                sum(threads).map(f64::to_bits),
                s1,
                "n = {n}, min_chunk = {min_chunk}, threads = {threads}"
            );
        }
    }
}

#[test]
fn chunk_results_arrive_in_index_order() {
    let mut rng = Rng(0xFACADE);
    for _ in 0..40 {
        let n = rng.below(4_000) as usize;
        let min_chunk = rng.below(200) as usize + 1;
        let threads = rng.below(8) as usize + 1;
        let cfg = ParConfig::threads(threads).with_min_chunk(min_chunk);
        let starts = par_map_chunks(&cfg, n, |r| (r.start, r.end)).unwrap();
        // Chunks tile 0..n in order with no gaps.
        let mut expect_start = 0usize;
        for &(start, end) in &starts {
            assert_eq!(start, expect_start);
            assert!(end > start);
            expect_start = end;
        }
        assert_eq!(expect_start, n);
    }
}

#[test]
fn chunks_mut_equals_sequential_fill_over_random_shapes() {
    let mut rng = Rng(0xA11CE);
    for _ in 0..40 {
        let records = rng.below(3_000) as usize;
        let unit = rng.below(7) as usize + 1;
        let threads = rng.below(8) as usize + 1;
        let min_chunk = rng.below(300) as usize + 1;
        let salt = rng.next();
        let cfg = ParConfig::threads(threads).with_min_chunk(min_chunk);
        let mut got = vec![0u64; records * unit];
        par_chunks_mut(&cfg, &mut got, unit, |start, chunk| {
            for (k, rec) in chunk.chunks_exact_mut(unit).enumerate() {
                let row = start + k;
                for (j, cell) in rec.iter_mut().enumerate() {
                    *cell = (row as u64).wrapping_mul(salt) ^ j as u64;
                }
            }
        })
        .unwrap();
        let mut want = vec![0u64; records * unit];
        for row in 0..records {
            for j in 0..unit {
                want[row * unit + j] = (row as u64).wrapping_mul(salt) ^ j as u64;
            }
        }
        assert_eq!(got, want, "records = {records}, unit = {unit}, threads = {threads}");
    }
}

#[test]
fn panicking_closure_errors_and_substrate_survives_for_reuse() {
    for threads in [1usize, 2, 4, 8] {
        let cfg = ParConfig::threads(threads).with_min_chunk(8);
        let err = par_map(&cfg, 256, |i| {
            assert!(i != 97, "boom at 97");
            i
        })
        .unwrap_err();
        assert!(err.message().contains("boom at 97"), "got: {}", err.message());

        // The caller thread is alive (no abort) and the next operation on
        // the same configuration succeeds: nothing is poisoned.
        let ok = par_map(&cfg, 256, |i| i + 1).unwrap();
        assert_eq!(ok.len(), 256);
        assert_eq!(ok[97], 98);

        // Errors also convert to the std error vocabulary.
        let dyn_err: Box<dyn std::error::Error> =
            Box::new(par_map(&cfg, 4, |_| -> usize { panic!("typed payload") }).unwrap_err());
        assert!(dyn_err.to_string().contains("typed payload"));
    }
}

#[test]
fn chunks_mut_panic_is_reported_not_aborted() {
    let cfg = ParConfig::threads(4).with_min_chunk(1);
    let mut data = vec![0u8; 64];
    let err = par_chunks_mut(&cfg, &mut data, 1, |start, _| {
        assert!(start != 32, "bad record 32");
    })
    .unwrap_err();
    assert!(err.message().contains("bad record 32"));
    // And a follow-up call over the same buffer still works.
    par_chunks_mut(&cfg, &mut data, 1, |start, chunk| chunk.fill(start as u8)).unwrap();
    assert_eq!(data[63], 63);
}

/// Serializes the env-mutating tests below (tests in one binary run on
/// parallel threads).
static ENV_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn cm_threads_env_override_is_respected() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let saved = std::env::var(THREADS_ENV).ok();
    for (raw, want) in [("1", 1usize), ("4", 4), ("0", 1), ("999", 64), (" 2 ", 2)] {
        std::env::set_var(THREADS_ENV, raw);
        assert_eq!(ParConfig::from_env().n_threads(), want, "CM_THREADS = {raw:?}");
    }
    std::env::set_var(THREADS_ENV, "not-a-number");
    assert!(ParConfig::from_env().n_threads() >= 1);
    match saved {
        Some(v) => std::env::set_var(THREADS_ENV, v),
        None => std::env::remove_var(THREADS_ENV),
    }
}
