//! Segment-fed construction of the order-1 item universe.
//!
//! The resident miner builds one row bitset per distinct item in a single
//! pass over a frozen table. Out-of-core curation cannot hold the table,
//! but the *item universe* (which categorical ids and numeric quantile
//! bins occur) and the *bitsets* (one bit per corpus row per item) are
//! both small, so mining shards cleanly into two streaming passes:
//!
//! 1. **discovery** — [`ItemCatalogBuilder::observe`] folds each segment
//!    into the occurring-id sets and numeric value pools;
//!    [`ItemCatalogBuilder::finish`] then fits the discretizers and fixes
//!    the item ordering, producing an [`ItemCatalog`];
//! 2. **fill** — [`ItemCatalog::fill`] sets the global row bits for each
//!    segment at its corpus offset.
//!
//! Both passes visit rows in corpus order, and the catalog's item order
//! (column-list order, ascending value) matches the resident builder's, so
//! the resulting bitsets are **bit-identical** to a whole-table pass at any
//! segmentation — the property `mine_from_bitsets` needs to make sharded
//! mining exact.

use cm_featurespace::{Bitmap, FeatureKind, FeatureSchema, FrozenColumn, FrozenTable};

use crate::apriori::{Item, ItemValue};
use crate::discretize::Discretizer;

/// Per-column discovery state while streaming segments.
#[derive(Debug, Clone)]
enum Discovery {
    /// Column is absent from the schema or not minable (embeddings).
    Skip,
    /// Categorical: which ids have occurred.
    Cat { seen: Vec<bool> },
    /// Numeric: present values in corpus row order (discretizer input).
    Num { values: Vec<f64> },
}

/// Accumulates the order-1 item universe across table segments.
#[derive(Debug, Clone)]
pub struct ItemCatalogBuilder {
    columns: Vec<usize>,
    n_bins: usize,
    n_rows: usize,
    discoveries: Vec<Discovery>,
}

impl ItemCatalogBuilder {
    /// A builder for the given mining columns. `schema` decides each
    /// column's kind exactly as the resident miner does; out-of-schema
    /// columns contribute no items.
    pub fn new(schema: &FeatureSchema, columns: &[usize], n_bins: usize) -> Self {
        let discoveries = columns
            .iter()
            .map(|&c| match schema.def(c).map(|d| d.kind) {
                Some(FeatureKind::Categorical) => Discovery::Cat { seen: Vec::new() },
                Some(FeatureKind::Numeric) => Discovery::Num { values: Vec::new() },
                _ => Discovery::Skip,
            })
            .collect();
        Self { columns: columns.to_vec(), n_bins, n_rows: 0, discoveries }
    }

    /// Discovery pass over one segment (segments must arrive in corpus row
    /// order so numeric value pools match the resident collection order).
    pub fn observe(&mut self, frozen: &FrozenTable<'_>) {
        let n = frozen.len();
        for (slot, &col) in self.columns.iter().enumerate() {
            if col >= frozen.n_cols() {
                continue;
            }
            match (&mut self.discoveries[slot], frozen.col(col)) {
                (Discovery::Cat { seen }, FrozenColumn::Categorical { ids, .. }) => {
                    for &id in *ids {
                        let id = id as usize;
                        if id >= seen.len() {
                            seen.resize(id + 1, false);
                        }
                        seen[id] = true;
                    }
                }
                (Discovery::Num { values: pool }, FrozenColumn::Numeric { values, present }) => {
                    for (r, &v) in values.iter().enumerate() {
                        if present.get(r) {
                            pool.push(v);
                        }
                    }
                }
                _ => {}
            }
        }
        self.n_rows += n;
    }

    /// Fits discretizers and fixes the item order, yielding the catalog.
    pub fn finish(self) -> ItemCatalog {
        let mut items = Vec::new();
        let mut discretizers = Vec::new();
        let mut lookups = Vec::with_capacity(self.columns.len());
        for (slot, &col) in self.columns.iter().enumerate() {
            match &self.discoveries[slot] {
                Discovery::Skip => lookups.push(Lookup::Skip),
                Discovery::Cat { seen } => {
                    let mut id_to_item = vec![None; seen.len()];
                    for (id, &occurs) in seen.iter().enumerate() {
                        if occurs {
                            id_to_item[id] = Some(items.len());
                            items.push(Item { column: col, value: ItemValue::Cat(id as u32) });
                        }
                    }
                    lookups.push(Lookup::Cat { id_to_item });
                }
                Discovery::Num { values } => {
                    let Some(d) = Discretizer::fit_values(col, values.clone(), self.n_bins) else {
                        lookups.push(Lookup::Skip);
                        continue;
                    };
                    let mut occurs = vec![false; d.n_bins()];
                    for &v in values {
                        occurs[d.bin(v) as usize] = true;
                    }
                    let mut bin_to_item = vec![None; d.n_bins()];
                    for (bin, &o) in occurs.iter().enumerate() {
                        if o {
                            bin_to_item[bin] = Some(items.len());
                            items.push(Item { column: col, value: ItemValue::NumBin(bin as u32) });
                        }
                    }
                    lookups.push(Lookup::Num { disc_idx: discretizers.len(), bin_to_item });
                    discretizers.push(d);
                }
            }
        }
        ItemCatalog { items, discretizers, columns: self.columns, lookups, n_rows: self.n_rows }
    }
}

/// Value-to-item routing for one mining column of a finished catalog.
#[derive(Debug, Clone)]
enum Lookup {
    Skip,
    Cat { id_to_item: Vec<Option<usize>> },
    Num { disc_idx: usize, bin_to_item: Vec<Option<usize>> },
}

/// The fixed order-1 item universe of a corpus: items in deterministic
/// (column-list order, ascending value) order, their fitted discretizers,
/// and the routing needed to fill row bitsets segment by segment.
#[derive(Debug, Clone)]
pub struct ItemCatalog {
    /// The items, in the order their bitsets are laid out.
    pub items: Vec<Item>,
    /// Fitted numeric discretizers, one per numeric column with values.
    pub discretizers: Vec<Discretizer>,
    columns: Vec<usize>,
    lookups: Vec<Lookup>,
    n_rows: usize,
}

impl ItemCatalog {
    /// Total corpus rows observed during discovery.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// One all-zero corpus-length bitset per item, ready for `fill`.
    pub fn empty_bitsets(&self) -> Vec<Bitmap> {
        vec![Bitmap::zeros(self.n_rows); self.items.len()]
    }

    /// Approximate size in bytes of the per-item bitsets `empty_bitsets`
    /// allocates — what the sharded driver charges to its memory budget.
    pub fn bitset_bytes(&self) -> usize {
        self.items.len() * self.n_rows.div_ceil(64) * std::mem::size_of::<u64>()
    }

    /// Fill pass: sets the bits of one segment whose first row sits at
    /// corpus offset `row_offset`.
    ///
    /// # Panics
    /// Panics if `bits` was not produced by [`ItemCatalog::empty_bitsets`]
    /// or the segment overruns the discovered corpus length.
    pub fn fill(&self, frozen: &FrozenTable<'_>, row_offset: usize, bits: &mut [Bitmap]) {
        assert_eq!(bits.len(), self.items.len(), "bitset count mismatch");
        assert!(row_offset + frozen.len() <= self.n_rows, "segment overruns catalog");
        let n = frozen.len();
        for (slot, &col) in self.columns.iter().enumerate() {
            if col >= frozen.n_cols() {
                continue;
            }
            match (&self.lookups[slot], frozen.col(col)) {
                (Lookup::Cat { id_to_item }, FrozenColumn::Categorical { offsets, ids, .. }) => {
                    for r in 0..n {
                        for &id in &ids[offsets[r] as usize..offsets[r + 1] as usize] {
                            if let Some(Some(item)) = id_to_item.get(id as usize) {
                                bits[*item].set(row_offset + r);
                            }
                        }
                    }
                }
                (
                    Lookup::Num { disc_idx, bin_to_item },
                    FrozenColumn::Numeric { values, present },
                ) => {
                    let d = &self.discretizers[*disc_idx];
                    for (r, &v) in values.iter().enumerate() {
                        if present.get(r) {
                            if let Some(Some(item)) = bin_to_item.get(d.bin(v) as usize) {
                                bits[*item].set(row_offset + r);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use cm_featurespace::{
        CatSet, FeatureDef, FeatureSet, FeatureTable, FeatureValue, ServingMode, Vocabulary,
    };

    use super::*;

    fn fixture(n: usize) -> FeatureTable {
        let schema = Arc::new(FeatureSchema::from_defs(vec![
            FeatureDef::categorical(
                "c",
                FeatureSet::C,
                ServingMode::Servable,
                Vocabulary::from_names(["a", "b", "z"]),
            ),
            FeatureDef::numeric("s", FeatureSet::A, ServingMode::Servable),
        ]));
        let mut t = FeatureTable::new(schema);
        for i in 0..n {
            let ids = match i % 5 {
                0 => vec![0],
                1 => vec![1, 2],
                2 => vec![2],
                _ => vec![0, 1],
            };
            let num = if i % 7 == 3 {
                FeatureValue::Missing
            } else {
                FeatureValue::Numeric((i % 13) as f64 * 0.5)
            };
            t.push_row(&[FeatureValue::Categorical(CatSet::from_ids(ids)), num]);
        }
        t
    }

    /// Streaming discovery + fill over any segmentation must reproduce the
    /// single-pass catalog and bitsets exactly.
    #[test]
    fn segmented_catalog_matches_single_pass() {
        let t = fixture(200);
        let whole_frozen = FrozenTable::freeze(&t);
        let mut whole = ItemCatalogBuilder::new(t.schema(), &[0, 1], 4);
        whole.observe(&whole_frozen);
        let whole = whole.finish();
        let mut whole_bits = whole.empty_bitsets();
        whole.fill(&whole_frozen, 0, &mut whole_bits);

        for cuts in [vec![1usize], vec![64], vec![13, 77, 140], vec![200]] {
            let mut builder = ItemCatalogBuilder::new(t.schema(), &[0, 1], 4);
            let mut segs = Vec::new();
            let mut start = 0;
            for end in cuts.iter().copied().chain([200]) {
                let rows: Vec<usize> = (start..end).collect();
                segs.push((start, t.gather(&rows)));
                start = end;
            }
            for (_, seg) in &segs {
                builder.observe(&FrozenTable::freeze(seg));
            }
            let catalog = builder.finish();
            assert_eq!(catalog.items, whole.items, "cuts = {cuts:?}");
            assert_eq!(catalog.discretizers, whole.discretizers, "cuts = {cuts:?}");
            let mut bits = catalog.empty_bitsets();
            for (offset, seg) in &segs {
                catalog.fill(&FrozenTable::freeze(seg), *offset, &mut bits);
            }
            for (a, b) in bits.iter().zip(&whole_bits) {
                assert_eq!(a.words(), b.words(), "cuts = {cuts:?}");
            }
        }
    }

    #[test]
    fn empty_corpus_yields_empty_catalog() {
        let t = fixture(0);
        let mut b = ItemCatalogBuilder::new(t.schema(), &[0, 1], 4);
        b.observe(&FrozenTable::freeze(&t));
        let catalog = b.finish();
        assert!(catalog.items.is_empty());
        assert!(catalog.discretizers.is_empty());
        assert_eq!(catalog.n_rows(), 0);
        assert!(catalog.empty_bitsets().is_empty());
    }

    #[test]
    fn out_of_schema_columns_are_skipped() {
        let t = fixture(20);
        let mut b = ItemCatalogBuilder::new(t.schema(), &[0, 9], 4);
        b.observe(&FrozenTable::freeze(&t));
        let catalog = b.finish();
        assert!(catalog.items.iter().all(|i| i.column == 0));
    }
}
