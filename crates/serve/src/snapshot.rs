//! Versioned checkpoint persistence for the incremental curation
//! service: a **base snapshot + append-only delta log** in the `cm-wire`
//! binary format, with the original JSON text form kept as a legacy
//! compatibility format.
//!
//! A checkpoint persists exactly the *arrival-dependent* state of a run:
//! the stream cursor, the access-layer breaker/clock state, the curator's
//! accumulated pool + votes + EM warm parameters + online-graph routing
//! state, any queued/deferred/quarantined batches, and the telemetry
//! accumulators. Everything clean-path (mined LFs, dev split, similarity
//! scales, seed vertices, the text corpus) is re-derived deterministically
//! on restart.
//!
//! ## Log layout and recovery contract
//!
//! A wire-format checkpoint file is
//! `[header][base frame][delta frame]*`: a 4-byte magic + version
//! varint, then one [`Checkpoint`] encoded whole (O(pool)), then one
//! [`TickDelta`] per tick (O(batch) — only what changed since the last
//! durable record). Every frame carries a trailing FNV-1a 64 checksum, so
//! a crash mid-append leaves a *detectably* torn tail: [`load_any`]
//! replays base + deltas until the first truncated or corrupt frame,
//! discards the tail, and resumes from the last complete record —
//! bit-identical to a run that never wrote it. Base rewrites (compaction,
//! policy in [`CompactionPolicy`]) go through a sibling temp file + atomic
//! rename, so the base itself can never tear.
//!
//! All floats travel as raw IEEE-754 bits (wire) or shortest-round-trip
//! text (legacy JSON), so a restart resumes *bit-identical* to an
//! uninterrupted run.
//!
//! This module is the only place allowed to name [`Checkpoint`] or
//! [`TickDelta`]: the `checkpoint-drift` lint bans both identifiers
//! everywhere else, so checkpointed state can only be produced by
//! [`capture`]/[`capture_delta`] and consumed through [`CheckpointStore`]
//! — a token-level approximation of "no direct field access to
//! checkpointed state outside the snapshot module".

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use cm_faults::{AccessState, ServiceAccessState, ServiceStats};
use cm_featurespace::{
    CatSet, CmError, CmResult, ErrorKind, FeatureSchema, FeatureTable, FeatureValue, Label,
    ModalityKind,
};
use cm_json::{Json, ToJson};
use cm_labelmodel::WarmStart;
use cm_orgsim::ModalityDataset;
use cm_pipeline::{BatchStats, IncrementalDelta, IncrementalState};
use cm_propagation::{OnlineGraphDelta, OnlineGraphState};
use cm_wire::{append_frame, fnv1a64, read_frame, read_header, write_header, Reader, Writer};

use crate::guards::QuarantinedBatch;
use crate::queue::{QueuedBatch, SheddingReport};

/// Format version written into every legacy JSON checkpoint; the JSON
/// loader rejects any other value. Bump whenever the serialized layout
/// *or* the clean-path re-derivation contract changes.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Version of the wire-format delta log (header varint after the magic).
pub const LOG_VERSION: u32 = 2;

/// Magic bytes opening every wire-format checkpoint file.
const LOG_MAGIC: &[u8; 4] = b"CMCK";

/// Frame tag of the base snapshot record.
const TAG_BASE: u8 = 1;
/// Frame tag of a per-tick delta record.
const TAG_DELTA: u8 = 2;

/// Batches that arrived but have not been ingested: serialized verbatim
/// because regenerating them from the stream would re-draw fault RNG and
/// double-advance breaker state.
#[derive(Debug, Clone, Default)]
pub struct PendingWork {
    /// Admitted batches, oldest first.
    pub queue: Vec<QueuedBatch>,
    /// Watermark-deferred batches awaiting re-offer.
    pub deferred: Vec<QueuedBatch>,
    /// Guard-quarantined batches awaiting their retry tick.
    pub quarantine: Vec<QuarantinedBatch>,
}

/// Telemetry accumulators a resumed run must continue from.
#[derive(Debug, Clone, Default)]
pub struct ServeTelemetry {
    /// Admission-queue overload counters.
    pub shed: SheddingReport,
    /// Batches quarantined by the quality guards.
    pub quarantined: usize,
    /// Quarantined batches that later passed their retry.
    pub recovered: usize,
    /// Quarantined batches dropped after a failed retry.
    pub dropped: usize,
    /// Mean posterior entropy of the last ingested batch.
    pub last_entropy: Option<f64>,
    /// Per-batch ingest statistics, in ingest order.
    pub batch_stats: Vec<BatchStats>,
    /// Arrival-to-completion latency of each ingested batch (sim ms).
    pub latencies_ms: Vec<u64>,
}

/// The complete persisted state of a service run after some tick.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Format version; see [`CHECKPOINT_VERSION`].
    pub version: u32,
    /// Ticks completed before this checkpoint was taken.
    pub ticks: usize,
    /// Rows drawn from the arrival stream so far (stream fast-forward
    /// cursor: clean and fault-injected draws consume identical world-RNG
    /// counts, so a fresh stream discards this many rows to resume).
    pub rows_generated: usize,
    /// Access-layer breaker/clock/stats state.
    pub access: AccessState,
    /// Arrival-dependent curator state.
    pub curator: IncrementalState,
    /// Batches in flight.
    pub pending: PendingWork,
    /// Telemetry accumulators.
    pub telemetry: ServeTelemetry,
}

/// One tick's growth of the persisted state — the payload of a delta-log
/// append record. Small state (clock, breakers, in-flight batches,
/// telemetry scalars) rides whole; the curator and the telemetry vectors
/// contribute only what was appended since the last durable record, so
/// the record is O(batch) where [`Checkpoint`] is O(pool).
#[derive(Debug, Clone)]
pub struct TickDelta {
    /// Ticks completed after this delta (absolute, for replay checks).
    pub ticks: usize,
    /// Stream cursor after this delta (absolute).
    pub rows_generated: usize,
    /// Full access-layer state (a handful of counters per service).
    pub access: AccessState,
    /// Curator growth since the last durable record.
    pub curator: IncrementalDelta,
    /// Full in-flight set (bounded by the admission-queue capacity).
    pub pending: PendingWork,
    /// Full admission-queue counters.
    pub shed: SheddingReport,
    /// Telemetry scalar: batches quarantined so far.
    pub quarantined: usize,
    /// Telemetry scalar: quarantined batches recovered so far.
    pub recovered: usize,
    /// Telemetry scalar: quarantined batches dropped so far.
    pub dropped: usize,
    /// Mean posterior entropy of the last ingested batch.
    pub last_entropy: Option<f64>,
    /// Batch statistics appended since the last durable record.
    pub new_batch_stats: Vec<BatchStats>,
    /// Latencies appended since the last durable record.
    pub new_latencies_ms: Vec<u64>,
}

/// Assembles a checkpoint from the service's live state.
pub fn capture(
    ticks: usize,
    rows_generated: usize,
    access: AccessState,
    curator: IncrementalState,
    pending: PendingWork,
    telemetry: ServeTelemetry,
) -> Checkpoint {
    Checkpoint {
        version: CHECKPOINT_VERSION,
        ticks,
        rows_generated,
        access,
        curator,
        pending,
        telemetry,
    }
}

/// Assembles one tick's delta record. `stats_durable` / `latencies_durable`
/// are the telemetry vector lengths at the last durable record; everything
/// past them is appended to the log.
#[allow(clippy::too_many_arguments)]
pub fn capture_delta(
    ticks: usize,
    rows_generated: usize,
    access: AccessState,
    curator: IncrementalDelta,
    pending: PendingWork,
    telemetry: &ServeTelemetry,
    stats_durable: usize,
    latencies_durable: usize,
) -> TickDelta {
    TickDelta {
        ticks,
        rows_generated,
        access,
        curator,
        pending,
        shed: telemetry.shed.clone(),
        quarantined: telemetry.quarantined,
        recovered: telemetry.recovered,
        dropped: telemetry.dropped,
        last_entropy: telemetry.last_entropy,
        new_batch_stats: telemetry.batch_stats[stats_durable..].to_vec(),
        new_latencies_ms: telemetry.latencies_ms[latencies_durable..].to_vec(),
    }
}

/// Applies one replayed delta record onto the accumulated checkpoint.
fn apply_tick_delta(cp: &mut Checkpoint, d: TickDelta) {
    cp.ticks = d.ticks;
    cp.rows_generated = d.rows_generated;
    cp.access = d.access;
    cp.curator.apply_delta(&d.curator);
    cp.pending = d.pending;
    cp.telemetry.shed = d.shed;
    cp.telemetry.quarantined = d.quarantined;
    cp.telemetry.recovered = d.recovered;
    cp.telemetry.dropped = d.dropped;
    cp.telemetry.last_entropy = d.last_entropy;
    cp.telemetry.batch_stats.extend(d.new_batch_stats);
    cp.telemetry.latencies_ms.extend(d.new_latencies_ms);
}

impl Checkpoint {
    /// Serializes the checkpoint to its legacy JSON text form.
    pub fn save(&self) -> String {
        Json::obj([
            ("version", Json::Num(f64::from(self.version))),
            ("ticks", self.ticks.to_json()),
            ("rows_generated", self.rows_generated.to_json()),
            ("access", self.access.to_json()),
            ("curator", incremental_state_to_json(&self.curator)),
            ("queue", Json::Arr(self.pending.queue.iter().map(queued_to_json).collect())),
            ("deferred", Json::Arr(self.pending.deferred.iter().map(queued_to_json).collect())),
            (
                "quarantine",
                Json::Arr(self.pending.quarantine.iter().map(quarantined_to_json).collect()),
            ),
            ("shed", self.telemetry.shed.to_json()),
            ("quarantined", self.telemetry.quarantined.to_json()),
            ("recovered", self.telemetry.recovered.to_json()),
            ("dropped", self.telemetry.dropped.to_json()),
            ("last_entropy", opt_num(self.telemetry.last_entropy)),
            (
                "batch_stats",
                Json::Arr(self.telemetry.batch_stats.iter().map(batch_stats_to_json).collect()),
            ),
            (
                "latencies_ms",
                Json::Arr(
                    self.telemetry.latencies_ms.iter().map(|&l| Json::Num(l as f64)).collect(),
                ),
            ),
        ])
        .to_string_pretty()
    }
}

/// Parses and version-checks a legacy JSON checkpoint. `schema` is the
/// world feature schema (clean-path state, re-derived by the caller) that
/// every serialized table is rebuilt against.
pub fn load(text: &str, schema: &Arc<FeatureSchema>) -> CmResult<Checkpoint> {
    const LOC: &str = "snapshot::load";
    let json =
        Json::parse(text).map_err(|e| CmError::new(ErrorKind::InvalidConfig, LOC, e.message))?;
    let version = req_usize(&json, "version")? as u32;
    if version != CHECKPOINT_VERSION {
        return Err(CmError::new(
            ErrorKind::InvalidConfig,
            LOC,
            format!("unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"),
        ));
    }
    let access = AccessState::from_json(json.get("access").ok_or_else(|| missing("access"))?)?;
    let curator = incremental_state_from_json(
        json.get("curator").ok_or_else(|| missing("curator"))?,
        schema,
    )?;
    let pending = PendingWork {
        queue: req_arr(&json, "queue")?
            .iter()
            .map(|v| queued_from_json(v, schema))
            .collect::<CmResult<_>>()?,
        deferred: req_arr(&json, "deferred")?
            .iter()
            .map(|v| queued_from_json(v, schema))
            .collect::<CmResult<_>>()?,
        quarantine: req_arr(&json, "quarantine")?
            .iter()
            .map(|v| quarantined_from_json(v, schema))
            .collect::<CmResult<_>>()?,
    };
    let telemetry = ServeTelemetry {
        shed: SheddingReport::from_json(json.get("shed").ok_or_else(|| missing("shed"))?)
            .map_err(|e| CmError::new(ErrorKind::InvalidConfig, LOC, e.message))?,
        quarantined: req_usize(&json, "quarantined")?,
        recovered: req_usize(&json, "recovered")?,
        dropped: req_usize(&json, "dropped")?,
        last_entropy: match json.get("last_entropy") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_f64().ok_or_else(|| missing("last_entropy"))?),
        },
        batch_stats: req_arr(&json, "batch_stats")?
            .iter()
            .map(batch_stats_from_json)
            .collect::<CmResult<_>>()?,
        latencies_ms: req_arr(&json, "latencies_ms")?
            .iter()
            .map(|v| v.as_f64().map(|x| x as u64).ok_or_else(|| missing("latencies_ms entry")))
            .collect::<CmResult<_>>()?,
    };
    Ok(Checkpoint {
        version,
        ticks: req_usize(&json, "ticks")?,
        rows_generated: req_usize(&json, "rows_generated")?,
        access,
        curator,
        pending,
        telemetry,
    })
}

fn missing(field: &str) -> CmError {
    CmError::new(ErrorKind::NotFound, "snapshot::load", format!("missing or mistyped {field}"))
}

fn req_usize(json: &Json, field: &str) -> CmResult<usize> {
    json.get(field).and_then(Json::as_usize).ok_or_else(|| missing(field))
}

fn req_f64(json: &Json, field: &str) -> CmResult<f64> {
    json.get(field).and_then(Json::as_f64).ok_or_else(|| missing(field))
}

fn req_arr<'a>(json: &'a Json, field: &str) -> CmResult<&'a [Json]> {
    json.get(field).and_then(Json::as_arr).ok_or_else(|| missing(field))
}

fn opt_num(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::Num)
}

// --- feature values & datasets (JSON legacy) -----------------------------

/// Tagged encoding mirroring the access layer's snapshot format. Finite
/// floats (and `f32` embedding components widened to `f64`) round-trip
/// bit-exactly.
fn value_to_json(value: &FeatureValue) -> Json {
    match value {
        FeatureValue::Missing => Json::Null,
        FeatureValue::Numeric(x) => Json::obj([("n", Json::Num(*x))]),
        FeatureValue::Categorical(set) => {
            Json::obj([("c", Json::Arr(set.iter().map(|id| Json::Num(f64::from(id))).collect()))])
        }
        FeatureValue::Embedding(e) => {
            Json::obj([("e", Json::Arr(e.iter().map(|&x| Json::Num(f64::from(x))).collect()))])
        }
    }
}

fn value_from_json(json: &Json) -> CmResult<FeatureValue> {
    if matches!(json, Json::Null) {
        return Ok(FeatureValue::Missing);
    }
    if let Some(x) = json.get("n").and_then(Json::as_f64) {
        return Ok(FeatureValue::Numeric(x));
    }
    if let Some(ids) = json.get("c").and_then(Json::as_arr) {
        let mut set = CatSet::new();
        for id in ids {
            set.insert(id.as_f64().ok_or_else(|| missing("categorical id"))? as u32);
        }
        return Ok(FeatureValue::Categorical(set));
    }
    if let Some(values) = json.get("e").and_then(Json::as_arr) {
        let e = values
            .iter()
            .map(|v| v.as_f64().map(|x| x as f32).ok_or_else(|| missing("embedding component")))
            .collect::<CmResult<Vec<f32>>>()?;
        return Ok(FeatureValue::Embedding(e));
    }
    Err(missing("feature value tag"))
}

fn modality_to_json(m: ModalityKind) -> Json {
    Json::Str(m.short().to_owned())
}

fn modality_from_json(json: &Json) -> CmResult<ModalityKind> {
    match json.as_str() {
        Some("T") => Ok(ModalityKind::Text),
        Some("I") => Ok(ModalityKind::Image),
        Some("V") => Ok(ModalityKind::Video),
        _ => Err(missing("modality")),
    }
}

fn dataset_to_json(ds: &ModalityDataset) -> Json {
    let rows: Vec<Json> = (0..ds.table.len())
        .map(|r| Json::Arr(ds.table.row(r).iter().map(value_to_json).collect()))
        .collect();
    Json::obj([
        ("modality", modality_to_json(ds.modality)),
        ("rows", Json::Arr(rows)),
        ("labels", Json::Arr(ds.labels.iter().map(|l| Json::Num(l.as_f64())).collect())),
        ("borderline", Json::Arr(ds.borderline.iter().map(|&b| Json::Bool(b)).collect())),
    ])
}

fn dataset_from_json(json: &Json, schema: &Arc<FeatureSchema>) -> CmResult<ModalityDataset> {
    let mut table = FeatureTable::new(schema.clone());
    for row in req_arr(json, "rows")? {
        let values = row
            .as_arr()
            .ok_or_else(|| missing("dataset row"))?
            .iter()
            .map(value_from_json)
            .collect::<CmResult<Vec<_>>>()?;
        table.push_row(&values);
    }
    let labels = req_arr(json, "labels")?
        .iter()
        .map(|v| match v.as_f64() {
            Some(x) if x == 1.0 => Ok(Label::Positive),
            Some(x) if x == 0.0 => Ok(Label::Negative),
            _ => Err(missing("label")),
        })
        .collect::<CmResult<Vec<_>>>()?;
    let borderline = req_arr(json, "borderline")?
        .iter()
        .map(|v| v.as_bool().ok_or_else(|| missing("borderline flag")))
        .collect::<CmResult<Vec<_>>>()?;
    Ok(ModalityDataset {
        modality: modality_from_json(json.get("modality").ok_or_else(|| missing("modality"))?)?,
        table,
        labels,
        borderline,
    })
}

// --- queue & quarantine (JSON legacy) ------------------------------------

fn queued_to_json(item: &QueuedBatch) -> Json {
    Json::obj([
        ("batch", dataset_to_json(&item.batch)),
        ("arrival_ms", Json::Num(item.arrival_ms as f64)),
        ("deferrals", Json::Num(f64::from(item.deferrals))),
    ])
}

fn queued_from_json(json: &Json, schema: &Arc<FeatureSchema>) -> CmResult<QueuedBatch> {
    Ok(QueuedBatch {
        batch: dataset_from_json(json.get("batch").ok_or_else(|| missing("batch"))?, schema)?,
        arrival_ms: req_f64(json, "arrival_ms")? as u64,
        deferrals: req_usize(json, "deferrals")? as u32,
    })
}

fn quarantined_to_json(q: &QuarantinedBatch) -> Json {
    Json::obj([
        ("item", queued_to_json(&q.item)),
        ("retry_tick", q.retry_tick.to_json()),
        ("attempts", Json::Num(f64::from(q.attempts))),
        ("reasons", Json::Arr(q.reasons.iter().map(|r| Json::Str(r.clone())).collect())),
    ])
}

fn quarantined_from_json(json: &Json, schema: &Arc<FeatureSchema>) -> CmResult<QuarantinedBatch> {
    Ok(QuarantinedBatch {
        item: queued_from_json(json.get("item").ok_or_else(|| missing("item"))?, schema)?,
        retry_tick: req_usize(json, "retry_tick")?,
        attempts: req_usize(json, "attempts")? as u32,
        reasons: req_arr(json, "reasons")?
            .iter()
            .map(|v| v.as_str().map(str::to_owned).ok_or_else(|| missing("reason")))
            .collect::<CmResult<_>>()?,
    })
}

// --- curator state (JSON legacy) -----------------------------------------

fn warm_to_json(w: &WarmStart) -> Json {
    Json::obj([
        ("accuracies", Json::Arr(w.accuracies.iter().map(|&a| Json::Num(a)).collect())),
        ("class_prior", Json::Num(w.class_prior)),
    ])
}

fn warm_from_json(json: &Json) -> CmResult<WarmStart> {
    Ok(WarmStart {
        accuracies: req_arr(json, "accuracies")?
            .iter()
            .map(|v| v.as_f64().ok_or_else(|| missing("accuracy")))
            .collect::<CmResult<_>>()?,
        class_prior: req_f64(json, "class_prior")?,
    })
}

fn graph_to_json(g: &OnlineGraphState) -> Json {
    Json::obj([
        ("n_rows", g.n_rows.to_json()),
        ("anchors", Json::Arr(g.anchors.iter().map(|&a| Json::Num(f64::from(a))).collect())),
        (
            "anchor_members",
            Json::Arr(
                g.anchor_members
                    .iter()
                    .map(|m| Json::Arr(m.iter().map(|&r| Json::Num(f64::from(r))).collect()))
                    .collect(),
            ),
        ),
        (
            "edges",
            Json::Arr(
                g.edges
                    .iter()
                    .map(|&(a, b, w)| {
                        Json::Arr(vec![
                            Json::Num(f64::from(a)),
                            Json::Num(f64::from(b)),
                            Json::Num(f64::from(w)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn graph_from_json(json: &Json) -> CmResult<OnlineGraphState> {
    let u32s = |field: &str| -> CmResult<Vec<u32>> {
        req_arr(json, field)?
            .iter()
            .map(|v| v.as_f64().map(|x| x as u32).ok_or_else(|| missing(field)))
            .collect()
    };
    let edges = req_arr(json, "edges")?
        .iter()
        .map(|v| {
            let parts = v.as_arr().filter(|p| p.len() == 3).ok_or_else(|| missing("edge"))?;
            let f = |i: usize| parts[i].as_f64().ok_or_else(|| missing("edge component"));
            Ok((f(0)? as u32, f(1)? as u32, f(2)? as f32))
        })
        .collect::<CmResult<Vec<_>>>()?;
    let anchor_members = req_arr(json, "anchor_members")?
        .iter()
        .map(|m| {
            m.as_arr()
                .ok_or_else(|| missing("anchor member list"))?
                .iter()
                .map(|v| v.as_f64().map(|x| x as u32).ok_or_else(|| missing("anchor member")))
                .collect::<CmResult<Vec<u32>>>()
        })
        .collect::<CmResult<Vec<_>>>()?;
    Ok(OnlineGraphState {
        n_rows: req_usize(json, "n_rows")?,
        anchors: u32s("anchors")?,
        anchor_members,
        edges,
    })
}

fn batch_stats_to_json(s: &BatchStats) -> Json {
    Json::obj([
        ("batch_index", s.batch_index.to_json()),
        ("rows", s.rows.to_json()),
        ("total_rows", s.total_rows.to_json()),
        ("coverage", Json::Num(s.coverage)),
        ("abstain_rate", Json::Num(s.abstain_rate)),
        ("mean_entropy", Json::Num(s.mean_entropy)),
        ("em_iterations", s.em_iterations.to_json()),
    ])
}

fn batch_stats_from_json(json: &Json) -> CmResult<BatchStats> {
    Ok(BatchStats {
        batch_index: req_usize(json, "batch_index")?,
        rows: req_usize(json, "rows")?,
        total_rows: req_usize(json, "total_rows")?,
        coverage: req_f64(json, "coverage")?,
        abstain_rate: req_f64(json, "abstain_rate")?,
        mean_entropy: req_f64(json, "mean_entropy")?,
        em_iterations: req_usize(json, "em_iterations")?,
    })
}

fn incremental_state_to_json(s: &IncrementalState) -> Json {
    // Legacy format carries no votes; restore recomputes them.
    Json::obj([
        ("n_batches", s.n_batches.to_json()),
        ("pool", dataset_to_json(&s.pool)),
        ("em_warm", s.em_warm.as_ref().map_or(Json::Null, warm_to_json)),
        ("em_iterations", s.em_iterations.to_json()),
        ("graph", s.graph.as_ref().map_or(Json::Null, graph_to_json)),
    ])
}

fn incremental_state_from_json(
    json: &Json,
    schema: &Arc<FeatureSchema>,
) -> CmResult<IncrementalState> {
    Ok(IncrementalState {
        n_batches: req_usize(json, "n_batches")?,
        pool: dataset_from_json(json.get("pool").ok_or_else(|| missing("pool"))?, schema)?,
        votes: Vec::new(),
        em_warm: match json.get("em_warm") {
            None | Some(Json::Null) => None,
            Some(v) => Some(warm_from_json(v)?),
        },
        em_iterations: req_usize(json, "em_iterations")?,
        graph: match json.get("graph") {
            None | Some(Json::Null) => None,
            Some(v) => Some(graph_from_json(v)?),
        },
    })
}

// --- wire encoding -------------------------------------------------------

fn wire_err(e: cm_wire::WireError) -> CmError {
    CmError::new(ErrorKind::InvalidConfig, "snapshot::wire", e.to_string())
}

fn bad_wire(message: impl Into<String>) -> CmError {
    CmError::new(ErrorKind::InvalidConfig, "snapshot::wire", message.into())
}

fn enc_value(w: &mut Writer, value: &FeatureValue) {
    match value {
        FeatureValue::Missing => w.u8(0),
        FeatureValue::Numeric(x) => {
            w.u8(1);
            w.f64b(*x);
        }
        FeatureValue::Categorical(set) => {
            w.u8(2);
            let ids: Vec<u32> = set.iter().collect();
            w.usizev(ids.len());
            for id in ids {
                w.u32v(id);
            }
        }
        FeatureValue::Embedding(e) => {
            w.u8(3);
            w.usizev(e.len());
            for &x in e {
                w.f32b(x);
            }
        }
    }
}

fn dec_value(r: &mut Reader<'_>) -> CmResult<FeatureValue> {
    match r.u8().map_err(wire_err)? {
        0 => Ok(FeatureValue::Missing),
        1 => Ok(FeatureValue::Numeric(r.f64b().map_err(wire_err)?)),
        2 => {
            let n = r.usizev().map_err(wire_err)?;
            let mut set = CatSet::new();
            for _ in 0..n {
                set.insert(r.u32v().map_err(wire_err)?);
            }
            Ok(FeatureValue::Categorical(set))
        }
        3 => {
            let n = r.usizev().map_err(wire_err)?;
            let mut e = Vec::with_capacity(n.min(r.remaining() / 4 + 1));
            for _ in 0..n {
                e.push(r.f32b().map_err(wire_err)?);
            }
            Ok(FeatureValue::Embedding(e))
        }
        t => Err(bad_wire(format!("unknown feature-value tag {t}"))),
    }
}

fn enc_dataset(w: &mut Writer, ds: &ModalityDataset) {
    w.u8(match ds.modality {
        ModalityKind::Text => 0,
        ModalityKind::Image => 1,
        ModalityKind::Video => 2,
    });
    w.usizev(ds.table.len());
    for r in 0..ds.table.len() {
        let row = ds.table.row(r);
        w.usizev(row.len());
        for v in &row {
            enc_value(w, v);
        }
    }
    w.usizev(ds.labels.len());
    for l in &ds.labels {
        w.u8(u8::from(l.is_positive()));
    }
    w.usizev(ds.borderline.len());
    for &b in &ds.borderline {
        w.bool(b);
    }
}

fn dec_dataset(r: &mut Reader<'_>, schema: &Arc<FeatureSchema>) -> CmResult<ModalityDataset> {
    let modality = match r.u8().map_err(wire_err)? {
        0 => ModalityKind::Text,
        1 => ModalityKind::Image,
        2 => ModalityKind::Video,
        t => return Err(bad_wire(format!("unknown modality tag {t}"))),
    };
    let n_rows = r.usizev().map_err(wire_err)?;
    let mut table = FeatureTable::new(schema.clone());
    for _ in 0..n_rows {
        let n_vals = r.usizev().map_err(wire_err)?;
        let mut values = Vec::with_capacity(n_vals.min(r.remaining() + 1));
        for _ in 0..n_vals {
            values.push(dec_value(r)?);
        }
        table.push_row(&values);
    }
    let n_labels = r.usizev().map_err(wire_err)?;
    let mut labels = Vec::with_capacity(n_labels.min(r.remaining() + 1));
    for _ in 0..n_labels {
        labels.push(match r.u8().map_err(wire_err)? {
            1 => Label::Positive,
            0 => Label::Negative,
            t => return Err(bad_wire(format!("unknown label byte {t}"))),
        });
    }
    let n_border = r.usizev().map_err(wire_err)?;
    let mut borderline = Vec::with_capacity(n_border.min(r.remaining() + 1));
    for _ in 0..n_border {
        borderline.push(r.bool().map_err(wire_err)?);
    }
    Ok(ModalityDataset { modality, table, labels, borderline })
}

fn enc_queued(w: &mut Writer, item: &QueuedBatch) {
    enc_dataset(w, &item.batch);
    w.u64v(item.arrival_ms);
    w.u32v(item.deferrals);
}

fn dec_queued(r: &mut Reader<'_>, schema: &Arc<FeatureSchema>) -> CmResult<QueuedBatch> {
    Ok(QueuedBatch {
        batch: dec_dataset(r, schema)?,
        arrival_ms: r.u64v().map_err(wire_err)?,
        deferrals: r.u32v().map_err(wire_err)?,
    })
}

fn enc_quarantined(w: &mut Writer, q: &QuarantinedBatch) {
    enc_queued(w, &q.item);
    w.usizev(q.retry_tick);
    w.u32v(q.attempts);
    w.usizev(q.reasons.len());
    for reason in &q.reasons {
        w.str(reason);
    }
}

fn dec_quarantined(r: &mut Reader<'_>, schema: &Arc<FeatureSchema>) -> CmResult<QuarantinedBatch> {
    let item = dec_queued(r, schema)?;
    let retry_tick = r.usizev().map_err(wire_err)?;
    let attempts = r.u32v().map_err(wire_err)?;
    let n = r.usizev().map_err(wire_err)?;
    let mut reasons = Vec::with_capacity(n.min(r.remaining() + 1));
    for _ in 0..n {
        reasons.push(r.str().map_err(wire_err)?);
    }
    Ok(QuarantinedBatch { item, retry_tick, attempts, reasons })
}

fn enc_pending(w: &mut Writer, p: &PendingWork) {
    w.usizev(p.queue.len());
    for item in &p.queue {
        enc_queued(w, item);
    }
    w.usizev(p.deferred.len());
    for item in &p.deferred {
        enc_queued(w, item);
    }
    w.usizev(p.quarantine.len());
    for q in &p.quarantine {
        enc_quarantined(w, q);
    }
}

fn dec_pending(r: &mut Reader<'_>, schema: &Arc<FeatureSchema>) -> CmResult<PendingWork> {
    let n_queue = r.usizev().map_err(wire_err)?;
    let mut queue = Vec::with_capacity(n_queue.min(64));
    for _ in 0..n_queue {
        queue.push(dec_queued(r, schema)?);
    }
    let n_def = r.usizev().map_err(wire_err)?;
    let mut deferred = Vec::with_capacity(n_def.min(64));
    for _ in 0..n_def {
        deferred.push(dec_queued(r, schema)?);
    }
    let n_quar = r.usizev().map_err(wire_err)?;
    let mut quarantine = Vec::with_capacity(n_quar.min(64));
    for _ in 0..n_quar {
        quarantine.push(dec_quarantined(r, schema)?);
    }
    Ok(PendingWork { queue, deferred, quarantine })
}

fn enc_service_stats(w: &mut Writer, s: &ServiceStats) {
    w.str(&s.name);
    w.str(&s.mode);
    w.f64b(s.rate);
    for v in [
        s.calls,
        s.faulted,
        s.recovered,
        s.lost,
        s.corrupt_detected,
        s.stale_served,
        s.short_circuited,
        s.probes,
        s.reopened,
        s.retries,
        s.sim_wait_ms,
    ] {
        w.u64v(v);
    }
    w.bool(s.tripped);
}

fn dec_service_stats(r: &mut Reader<'_>) -> CmResult<ServiceStats> {
    let name = r.str().map_err(wire_err)?;
    let mode = r.str().map_err(wire_err)?;
    let rate = r.f64b().map_err(wire_err)?;
    let mut counters = [0u64; 11];
    for c in &mut counters {
        *c = r.u64v().map_err(wire_err)?;
    }
    let tripped = r.bool().map_err(wire_err)?;
    Ok(ServiceStats {
        name,
        mode,
        rate,
        calls: counters[0],
        faulted: counters[1],
        recovered: counters[2],
        lost: counters[3],
        corrupt_detected: counters[4],
        stale_served: counters[5],
        short_circuited: counters[6],
        probes: counters[7],
        reopened: counters[8],
        retries: counters[9],
        sim_wait_ms: counters[10],
        tripped,
    })
}

fn enc_access(w: &mut Writer, a: &AccessState) {
    w.u64v(a.now_ms);
    w.usizev(a.services.len());
    for s in &a.services {
        w.str(&s.name);
        w.u32v(s.consecutive_lost);
        w.bool(s.open);
        w.u64v(s.opened_at_ms);
        match &s.snapshot {
            None => w.bool(false),
            Some(v) => {
                w.bool(true);
                enc_value(w, v);
            }
        }
        enc_service_stats(w, &s.stats);
    }
}

fn dec_access(r: &mut Reader<'_>) -> CmResult<AccessState> {
    let now_ms = r.u64v().map_err(wire_err)?;
    let n = r.usizev().map_err(wire_err)?;
    let mut services = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let name = r.str().map_err(wire_err)?;
        let consecutive_lost = r.u32v().map_err(wire_err)?;
        let open = r.bool().map_err(wire_err)?;
        let opened_at_ms = r.u64v().map_err(wire_err)?;
        let snapshot = if r.bool().map_err(wire_err)? { Some(dec_value(r)?) } else { None };
        let stats = dec_service_stats(r)?;
        services.push(ServiceAccessState {
            name,
            consecutive_lost,
            open,
            opened_at_ms,
            snapshot,
            stats,
        });
    }
    Ok(AccessState { now_ms, services })
}

fn enc_warm(w: &mut Writer, warm: &Option<WarmStart>) {
    match warm {
        None => w.bool(false),
        Some(ws) => {
            w.bool(true);
            w.usizev(ws.accuracies.len());
            for &a in &ws.accuracies {
                w.f64b(a);
            }
            w.f64b(ws.class_prior);
        }
    }
}

fn dec_warm(r: &mut Reader<'_>) -> CmResult<Option<WarmStart>> {
    if !r.bool().map_err(wire_err)? {
        return Ok(None);
    }
    let n = r.usizev().map_err(wire_err)?;
    let mut accuracies = Vec::with_capacity(n.min(r.remaining() / 8 + 1));
    for _ in 0..n {
        accuracies.push(r.f64b().map_err(wire_err)?);
    }
    Ok(Some(WarmStart { accuracies, class_prior: r.f64b().map_err(wire_err)? }))
}

fn enc_u32_list(w: &mut Writer, list: &[u32]) {
    w.usizev(list.len());
    for &v in list {
        w.u32v(v);
    }
}

fn dec_u32_list(r: &mut Reader<'_>) -> CmResult<Vec<u32>> {
    let n = r.usizev().map_err(wire_err)?;
    let mut out = Vec::with_capacity(n.min(r.remaining() + 1));
    for _ in 0..n {
        out.push(r.u32v().map_err(wire_err)?);
    }
    Ok(out)
}

fn enc_edges(w: &mut Writer, edges: &[(u32, u32, f32)]) {
    w.usizev(edges.len());
    for &(a, b, weight) in edges {
        w.u32v(a);
        w.u32v(b);
        w.f32b(weight);
    }
}

fn dec_edges(r: &mut Reader<'_>) -> CmResult<Vec<(u32, u32, f32)>> {
    let n = r.usizev().map_err(wire_err)?;
    let mut out = Vec::with_capacity(n.min(r.remaining() / 12 + 1));
    for _ in 0..n {
        out.push((
            r.u32v().map_err(wire_err)?,
            r.u32v().map_err(wire_err)?,
            r.f32b().map_err(wire_err)?,
        ));
    }
    Ok(out)
}

fn enc_graph(w: &mut Writer, g: &Option<OnlineGraphState>) {
    match g {
        None => w.bool(false),
        Some(g) => {
            w.bool(true);
            w.usizev(g.n_rows);
            enc_u32_list(w, &g.anchors);
            w.usizev(g.anchor_members.len());
            for m in &g.anchor_members {
                enc_u32_list(w, m);
            }
            enc_edges(w, &g.edges);
        }
    }
}

fn dec_graph(r: &mut Reader<'_>) -> CmResult<Option<OnlineGraphState>> {
    if !r.bool().map_err(wire_err)? {
        return Ok(None);
    }
    let n_rows = r.usizev().map_err(wire_err)?;
    let anchors = dec_u32_list(r)?;
    let n = r.usizev().map_err(wire_err)?;
    let mut anchor_members = Vec::with_capacity(n.min(r.remaining() + 1));
    for _ in 0..n {
        anchor_members.push(dec_u32_list(r)?);
    }
    let edges = dec_edges(r)?;
    Ok(Some(OnlineGraphState { n_rows, anchors, anchor_members, edges }))
}

fn enc_graph_delta(w: &mut Writer, g: &Option<OnlineGraphDelta>) {
    match g {
        None => w.bool(false),
        Some(d) => {
            w.bool(true);
            w.usizev(d.n_rows);
            enc_edges(w, &d.new_edges);
            w.usizev(d.member_appends.len());
            for (idx, members) in &d.member_appends {
                w.u32v(*idx);
                enc_u32_list(w, members);
            }
            w.usizev(d.new_anchors.len());
            for (anchor, members) in &d.new_anchors {
                w.u32v(*anchor);
                enc_u32_list(w, members);
            }
        }
    }
}

fn dec_graph_delta(r: &mut Reader<'_>) -> CmResult<Option<OnlineGraphDelta>> {
    if !r.bool().map_err(wire_err)? {
        return Ok(None);
    }
    let n_rows = r.usizev().map_err(wire_err)?;
    let new_edges = dec_edges(r)?;
    let n_app = r.usizev().map_err(wire_err)?;
    let mut member_appends = Vec::with_capacity(n_app.min(r.remaining() + 1));
    for _ in 0..n_app {
        let idx = r.u32v().map_err(wire_err)?;
        member_appends.push((idx, dec_u32_list(r)?));
    }
    let n_new = r.usizev().map_err(wire_err)?;
    let mut new_anchors = Vec::with_capacity(n_new.min(r.remaining() + 1));
    for _ in 0..n_new {
        let anchor = r.u32v().map_err(wire_err)?;
        new_anchors.push((anchor, dec_u32_list(r)?));
    }
    Ok(Some(OnlineGraphDelta { n_rows, new_edges, member_appends, new_anchors }))
}

fn enc_votes(w: &mut Writer, votes: &[i8]) {
    w.usizev(votes.len());
    for &v in votes {
        w.u8(v as u8);
    }
}

fn dec_votes(r: &mut Reader<'_>) -> CmResult<Vec<i8>> {
    let n = r.usizev().map_err(wire_err)?;
    let raw = r.take(n).map_err(wire_err)?;
    Ok(raw.iter().map(|&b| b as i8).collect())
}

fn enc_incremental_state(w: &mut Writer, s: &IncrementalState) {
    w.usizev(s.n_batches);
    enc_dataset(w, &s.pool);
    enc_votes(w, &s.votes);
    enc_warm(w, &s.em_warm);
    w.usizev(s.em_iterations);
    enc_graph(w, &s.graph);
}

fn dec_incremental_state(
    r: &mut Reader<'_>,
    schema: &Arc<FeatureSchema>,
) -> CmResult<IncrementalState> {
    Ok(IncrementalState {
        n_batches: r.usizev().map_err(wire_err)?,
        pool: dec_dataset(r, schema)?,
        votes: dec_votes(r)?,
        em_warm: dec_warm(r)?,
        em_iterations: r.usizev().map_err(wire_err)?,
        graph: dec_graph(r)?,
    })
}

fn enc_incremental_delta(w: &mut Writer, d: &IncrementalDelta) {
    w.usizev(d.n_batches);
    enc_dataset(w, &d.new_rows);
    enc_votes(w, &d.new_votes);
    enc_warm(w, &d.em_warm);
    w.usizev(d.em_iterations);
    enc_graph_delta(w, &d.graph);
}

fn dec_incremental_delta(
    r: &mut Reader<'_>,
    schema: &Arc<FeatureSchema>,
) -> CmResult<IncrementalDelta> {
    Ok(IncrementalDelta {
        n_batches: r.usizev().map_err(wire_err)?,
        new_rows: dec_dataset(r, schema)?,
        new_votes: dec_votes(r)?,
        em_warm: dec_warm(r)?,
        em_iterations: r.usizev().map_err(wire_err)?,
        graph: dec_graph_delta(r)?,
    })
}

fn enc_batch_stats(w: &mut Writer, s: &BatchStats) {
    w.usizev(s.batch_index);
    w.usizev(s.rows);
    w.usizev(s.total_rows);
    w.f64b(s.coverage);
    w.f64b(s.abstain_rate);
    w.f64b(s.mean_entropy);
    w.usizev(s.em_iterations);
}

fn dec_batch_stats(r: &mut Reader<'_>) -> CmResult<BatchStats> {
    Ok(BatchStats {
        batch_index: r.usizev().map_err(wire_err)?,
        rows: r.usizev().map_err(wire_err)?,
        total_rows: r.usizev().map_err(wire_err)?,
        coverage: r.f64b().map_err(wire_err)?,
        abstain_rate: r.f64b().map_err(wire_err)?,
        mean_entropy: r.f64b().map_err(wire_err)?,
        em_iterations: r.usizev().map_err(wire_err)?,
    })
}

fn enc_shed(w: &mut Writer, s: &SheddingReport) {
    for v in
        [s.offered, s.admitted, s.deferred, s.shed_batches, s.shed_rows, s.peak_depth, s.peak_bytes]
    {
        w.usizev(v);
    }
}

fn dec_shed(r: &mut Reader<'_>) -> CmResult<SheddingReport> {
    let mut vals = [0usize; 7];
    for v in &mut vals {
        *v = r.usizev().map_err(wire_err)?;
    }
    Ok(SheddingReport {
        offered: vals[0],
        admitted: vals[1],
        deferred: vals[2],
        shed_batches: vals[3],
        shed_rows: vals[4],
        peak_depth: vals[5],
        peak_bytes: vals[6],
    })
}

fn enc_opt_f64(w: &mut Writer, v: Option<f64>) {
    match v {
        None => w.bool(false),
        Some(x) => {
            w.bool(true);
            w.f64b(x);
        }
    }
}

fn dec_opt_f64(r: &mut Reader<'_>) -> CmResult<Option<f64>> {
    if r.bool().map_err(wire_err)? {
        Ok(Some(r.f64b().map_err(wire_err)?))
    } else {
        Ok(None)
    }
}

fn enc_telemetry(w: &mut Writer, t: &ServeTelemetry) {
    enc_shed(w, &t.shed);
    w.usizev(t.quarantined);
    w.usizev(t.recovered);
    w.usizev(t.dropped);
    enc_opt_f64(w, t.last_entropy);
    w.usizev(t.batch_stats.len());
    for s in &t.batch_stats {
        enc_batch_stats(w, s);
    }
    w.usizev(t.latencies_ms.len());
    for &l in &t.latencies_ms {
        w.u64v(l);
    }
}

fn dec_telemetry(r: &mut Reader<'_>) -> CmResult<ServeTelemetry> {
    let shed = dec_shed(r)?;
    let quarantined = r.usizev().map_err(wire_err)?;
    let recovered = r.usizev().map_err(wire_err)?;
    let dropped = r.usizev().map_err(wire_err)?;
    let last_entropy = dec_opt_f64(r)?;
    let n_stats = r.usizev().map_err(wire_err)?;
    let mut batch_stats = Vec::with_capacity(n_stats.min(r.remaining() + 1));
    for _ in 0..n_stats {
        batch_stats.push(dec_batch_stats(r)?);
    }
    let n_lat = r.usizev().map_err(wire_err)?;
    let mut latencies_ms = Vec::with_capacity(n_lat.min(r.remaining() + 1));
    for _ in 0..n_lat {
        latencies_ms.push(r.u64v().map_err(wire_err)?);
    }
    Ok(ServeTelemetry {
        shed,
        quarantined,
        recovered,
        dropped,
        last_entropy,
        batch_stats,
        latencies_ms,
    })
}

/// Encodes a complete wire-format file: header + one base frame.
fn encode_base_file(cp: &Checkpoint) -> Vec<u8> {
    let mut payload = Writer::new();
    payload.usizev(cp.ticks);
    payload.usizev(cp.rows_generated);
    enc_access(&mut payload, &cp.access);
    enc_incremental_state(&mut payload, &cp.curator);
    enc_pending(&mut payload, &cp.pending);
    enc_telemetry(&mut payload, &cp.telemetry);
    let mut out = Writer::new();
    write_header(&mut out, LOG_MAGIC, LOG_VERSION);
    append_frame(&mut out, TAG_BASE, payload.as_bytes());
    out.into_bytes()
}

fn dec_base_payload(payload: &[u8], schema: &Arc<FeatureSchema>) -> CmResult<Checkpoint> {
    let mut r = Reader::new(payload);
    let cp = Checkpoint {
        version: CHECKPOINT_VERSION,
        ticks: r.usizev().map_err(wire_err)?,
        rows_generated: r.usizev().map_err(wire_err)?,
        access: dec_access(&mut r)?,
        curator: dec_incremental_state(&mut r, schema)?,
        pending: dec_pending(&mut r, schema)?,
        telemetry: dec_telemetry(&mut r)?,
    };
    if !r.is_empty() {
        return Err(bad_wire(format!("{} trailing bytes after base record", r.remaining())));
    }
    Ok(cp)
}

/// Encodes one delta frame (no header — appended to an existing file).
fn encode_delta_frame(d: &TickDelta) -> Vec<u8> {
    let mut payload = Writer::new();
    payload.usizev(d.ticks);
    payload.usizev(d.rows_generated);
    enc_access(&mut payload, &d.access);
    enc_incremental_delta(&mut payload, &d.curator);
    enc_pending(&mut payload, &d.pending);
    enc_shed(&mut payload, &d.shed);
    payload.usizev(d.quarantined);
    payload.usizev(d.recovered);
    payload.usizev(d.dropped);
    enc_opt_f64(&mut payload, d.last_entropy);
    payload.usizev(d.new_batch_stats.len());
    for s in &d.new_batch_stats {
        enc_batch_stats(&mut payload, s);
    }
    payload.usizev(d.new_latencies_ms.len());
    for &l in &d.new_latencies_ms {
        payload.u64v(l);
    }
    let mut out = Writer::new();
    append_frame(&mut out, TAG_DELTA, payload.as_bytes());
    out.into_bytes()
}

fn dec_delta_payload(payload: &[u8], schema: &Arc<FeatureSchema>) -> CmResult<TickDelta> {
    let mut r = Reader::new(payload);
    let ticks = r.usizev().map_err(wire_err)?;
    let rows_generated = r.usizev().map_err(wire_err)?;
    let access = dec_access(&mut r)?;
    let curator = dec_incremental_delta(&mut r, schema)?;
    let pending = dec_pending(&mut r, schema)?;
    let shed = dec_shed(&mut r)?;
    let quarantined = r.usizev().map_err(wire_err)?;
    let recovered = r.usizev().map_err(wire_err)?;
    let dropped = r.usizev().map_err(wire_err)?;
    let last_entropy = dec_opt_f64(&mut r)?;
    let n_stats = r.usizev().map_err(wire_err)?;
    let mut new_batch_stats = Vec::with_capacity(n_stats.min(r.remaining() + 1));
    for _ in 0..n_stats {
        new_batch_stats.push(dec_batch_stats(&mut r)?);
    }
    let n_lat = r.usizev().map_err(wire_err)?;
    let mut new_latencies_ms = Vec::with_capacity(n_lat.min(r.remaining() + 1));
    for _ in 0..n_lat {
        new_latencies_ms.push(r.u64v().map_err(wire_err)?);
    }
    if !r.is_empty() {
        return Err(bad_wire(format!("{} trailing bytes after delta record", r.remaining())));
    }
    Ok(TickDelta {
        ticks,
        rows_generated,
        access,
        curator,
        pending,
        shed,
        quarantined,
        recovered,
        dropped,
        last_entropy,
        new_batch_stats,
        new_latencies_ms,
    })
}

// --- log recovery --------------------------------------------------------

/// Result of recovering a checkpoint file in either format: the merged
/// state (base + every complete delta) plus enough layout information for
/// the [`CheckpointStore`] to continue appending where the log left off.
#[derive(Debug)]
pub struct RecoveredLog {
    /// The merged, replayed checkpoint state.
    pub checkpoint: Checkpoint,
    /// Bytes of the header + base frame (0 for legacy JSON files).
    pub base_bytes: usize,
    /// Bytes through the last complete record; anything past this is a
    /// torn tail the caller must truncate before appending.
    pub valid_bytes: usize,
    /// Delta records applied on top of the base.
    pub deltas: usize,
    /// Whether the file was a legacy JSON checkpoint.
    pub legacy_json: bool,
}

/// Recovers a checkpoint from raw file bytes in either format.
///
/// Legacy JSON files (first non-whitespace byte `{`) parse whole or fail.
/// Wire-format files replay base + deltas until the first truncated or
/// corrupt frame; the torn tail is *discarded* (reported via
/// `valid_bytes`), recovering to the last durable tick. A torn or corrupt
/// **base** frame is unrecoverable and errors — base rewrites are atomic,
/// so only deliberate corruption produces one.
///
/// # Errors
/// Fails on an unparseable JSON checkpoint, a bad magic/version header,
/// or a corrupt base frame.
pub fn load_any(bytes: &[u8], schema: &Arc<FeatureSchema>) -> CmResult<RecoveredLog> {
    let first = bytes.iter().copied().find(|b| !b.is_ascii_whitespace());
    if first == Some(b'{') {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| bad_wire("checkpoint is neither valid UTF-8 JSON nor wire format"))?;
        return Ok(RecoveredLog {
            checkpoint: load(text, schema)?,
            base_bytes: 0,
            valid_bytes: bytes.len(),
            deltas: 0,
            legacy_json: true,
        });
    }
    let mut r = Reader::new(bytes);
    let version = read_header(&mut r, LOG_MAGIC).map_err(wire_err)?;
    if version != LOG_VERSION {
        return Err(bad_wire(format!(
            "unsupported checkpoint log version {version} (expected {LOG_VERSION})"
        )));
    }
    let base = read_frame(&mut r).map_err(wire_err)?;
    if base.tag != TAG_BASE {
        return Err(bad_wire(format!("first frame has tag {} (expected base)", base.tag)));
    }
    let mut checkpoint = dec_base_payload(base.payload, schema)?;
    let base_bytes = r.pos();
    let mut valid_bytes = base_bytes;
    let mut deltas = 0usize;
    while !r.is_empty() {
        // A torn or corrupt tail record — torn mid-append by a crash, or
        // deliberately bit-flipped — fails the frame checksum (or payload
        // decode) and everything from it on is discarded.
        let mut attempt = r.clone();
        let Ok(frame) = read_frame(&mut attempt) else { break };
        if frame.tag != TAG_DELTA {
            break;
        }
        let Ok(delta) = dec_delta_payload(frame.payload, schema) else { break };
        apply_tick_delta(&mut checkpoint, delta);
        r = attempt;
        valid_bytes = r.pos();
        deltas += 1;
    }
    Ok(RecoveredLog { checkpoint, base_bytes, valid_bytes, deltas, legacy_json: false })
}

// --- the store -----------------------------------------------------------

/// On-disk checkpoint representation (`CM_CKPT_FORMAT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointFormat {
    /// `cm-wire` binary base + append-only delta log (the default).
    Wire,
    /// Legacy JSON text, rewritten whole every tick (O(pool) per tick;
    /// kept for comparison benchmarks and old checkpoints).
    Json,
}

impl CheckpointFormat {
    /// Parses the `CM_CKPT_FORMAT` value (`wire` | `json`).
    ///
    /// # Errors
    /// Fails on any other string.
    pub fn parse(s: &str) -> CmResult<Self> {
        match s.trim() {
            "wire" => Ok(CheckpointFormat::Wire),
            "json" => Ok(CheckpointFormat::Json),
            other => Err(CmError::new(
                ErrorKind::InvalidConfig,
                "CheckpointFormat::parse",
                format!("CM_CKPT_FORMAT {other:?} is neither \"wire\" nor \"json\""),
            )),
        }
    }
}

/// When the delta log is folded back into a fresh base snapshot. Both
/// bounds cap *recovery* cost (replay work is proportional to log length);
/// steady-state append cost stays O(batch) regardless.
#[derive(Debug, Clone, Copy)]
pub struct CompactionPolicy {
    /// Rewrite the base after this many delta appends
    /// (`CM_CKPT_COMPACT_TICKS`).
    pub every_ticks: usize,
    /// Rewrite the base when the whole file exceeds this multiple of the
    /// base record's size (`CM_CKPT_COMPACT_FACTOR`).
    pub max_log_factor: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy { every_ticks: 32, max_log_factor: 4.0 }
    }
}

/// Owns a checkpoint file: atomic base rewrites, checksummed delta
/// appends, compaction bookkeeping, and torn-tail recovery on open. The
/// only way service code reads or writes checkpointed state.
#[derive(Debug)]
pub struct CheckpointStore {
    path: PathBuf,
    format: CheckpointFormat,
    policy: CompactionPolicy,
    /// Header + base frame bytes in the current file (0 = no wire base
    /// yet: fresh file or legacy JSON, either way the next commit writes
    /// a base).
    base_bytes: usize,
    /// Valid file length (through the last complete record).
    file_bytes: usize,
    deltas_since_base: usize,
}

impl CheckpointStore {
    /// Opens a checkpoint store over `path`. If the file exists its state
    /// is recovered ([`load_any`]) and any torn tail is truncated away so
    /// later appends start at a record boundary; a missing file yields a
    /// fresh store and `None`.
    ///
    /// # Errors
    /// Propagates recovery errors and filesystem errors.
    pub fn open(
        path: &Path,
        format: CheckpointFormat,
        policy: CompactionPolicy,
        schema: &Arc<FeatureSchema>,
    ) -> CmResult<(Self, Option<Checkpoint>)> {
        let mut store = CheckpointStore {
            path: path.to_path_buf(),
            format,
            policy,
            base_bytes: 0,
            file_bytes: 0,
            deltas_since_base: 0,
        };
        if !path.exists() {
            return Ok((store, None));
        }
        let bytes = std::fs::read(path).map_err(|e| store.io_err("read", &e))?;
        if bytes.is_empty() {
            return Ok((store, None));
        }
        let recovered = load_any(&bytes, schema)?;
        if recovered.valid_bytes < bytes.len() {
            // Drop the torn tail now so the next append starts clean.
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| store.io_err("open for truncate", &e))?;
            f.set_len(recovered.valid_bytes as u64).map_err(|e| store.io_err("truncate", &e))?;
        }
        if !recovered.legacy_json {
            store.base_bytes = recovered.base_bytes;
            store.file_bytes = recovered.valid_bytes;
            store.deltas_since_base = recovered.deltas;
        }
        Ok((store, Some(recovered.checkpoint)))
    }

    fn io_err(&self, op: &str, e: &std::io::Error) -> CmError {
        CmError::new(
            ErrorKind::InvalidConfig,
            "CheckpointStore",
            format!("{op} {}: {e}", self.path.display()),
        )
    }

    /// Whether the next commit must be a full base rewrite: always for the
    /// JSON format, on a fresh/legacy file, and when the compaction policy
    /// says the log has grown past its recovery-cost budget.
    pub fn needs_base(&self) -> bool {
        if self.format == CheckpointFormat::Json || self.base_bytes == 0 {
            return true;
        }
        self.deltas_since_base >= self.policy.every_ticks
            || self.file_bytes as f64 >= self.base_bytes as f64 * self.policy.max_log_factor
    }

    /// Writes a full base snapshot atomically: encode to a sibling temp
    /// file, then rename into place, so a crash at any instant leaves
    /// either the old complete file or the new one — never a torn base.
    /// Returns the bytes written.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn commit_base(&mut self, cp: &Checkpoint) -> CmResult<usize> {
        let bytes = match self.format {
            CheckpointFormat::Wire => encode_base_file(cp),
            CheckpointFormat::Json => cp.save().into_bytes(),
        };
        let mut tmp_name = self.path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
        tmp_name.push(".tmp");
        let tmp = self.path.with_file_name(tmp_name);
        std::fs::write(&tmp, &bytes).map_err(|e| self.io_err("write temp", &e))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| self.io_err("rename", &e))?;
        self.base_bytes = if self.format == CheckpointFormat::Wire { bytes.len() } else { 0 };
        self.file_bytes = bytes.len();
        self.deltas_since_base = 0;
        Ok(bytes.len())
    }

    /// Appends one delta record to the log — O(batch), the steady-state
    /// checkpoint write. A crash mid-append leaves a torn tail that
    /// [`CheckpointStore::open`] detects by checksum and discards.
    /// Returns the bytes written.
    ///
    /// # Errors
    /// Fails if no base has been committed (or the store is in JSON
    /// format) and on filesystem errors.
    pub fn commit_delta(&mut self, delta: &TickDelta) -> CmResult<usize> {
        if self.format != CheckpointFormat::Wire || self.base_bytes == 0 {
            return Err(CmError::new(
                ErrorKind::InvalidConfig,
                "CheckpointStore",
                "delta append without a wire-format base (call commit_base first)",
            ));
        }
        let frame = encode_delta_frame(delta);
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| self.io_err("open for append", &e))?;
        f.write_all(&frame).map_err(|e| self.io_err("append", &e))?;
        self.file_bytes += frame.len();
        self.deltas_since_base += 1;
        Ok(frame.len())
    }

    /// Content digest of the current file (test/debug aid).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn digest(&self) -> CmResult<u64> {
        let bytes = std::fs::read(&self.path).map_err(|e| self.io_err("read", &e))?;
        Ok(fnv1a64(&bytes))
    }
}

#[cfg(test)]
mod tests {
    use cm_faults::ServiceAccessState;
    use cm_featurespace::{FeatureDef, FeatureSet, ServingMode, Vocabulary};
    use cm_pipeline::BatchStats;

    use super::*;

    fn schema() -> Arc<FeatureSchema> {
        Arc::new(FeatureSchema::from_defs(vec![
            FeatureDef::numeric("x", FeatureSet::A, ServingMode::Servable),
            FeatureDef::categorical(
                "c",
                FeatureSet::A,
                ServingMode::Servable,
                Vocabulary::from_names(["v0", "v1", "v2", "v3", "v4", "v5"]),
            ),
            FeatureDef::embedding("e", 2, FeatureSet::B, ServingMode::Servable),
        ]))
    }

    fn dataset(schema: &Arc<FeatureSchema>) -> ModalityDataset {
        let mut table = FeatureTable::new(schema.clone());
        let mut cats = CatSet::new();
        cats.insert(3);
        cats.insert(5);
        table.push_row(&[
            FeatureValue::Numeric(1.0 / 3.0),
            FeatureValue::Categorical(cats),
            FeatureValue::Embedding(vec![0.1, -2.5]),
        ]);
        table.push_row(&[
            FeatureValue::Missing,
            FeatureValue::Missing,
            FeatureValue::Embedding(vec![std::f32::consts::E, 0.0]),
        ]);
        ModalityDataset {
            modality: ModalityKind::Image,
            table,
            labels: vec![Label::Positive, Label::Negative],
            borderline: vec![false, true],
        }
    }

    fn fixture() -> Checkpoint {
        let schema = schema();
        let ds = dataset(&schema);
        let item = QueuedBatch { batch: ds.clone(), arrival_ms: 120, deferrals: 1 };
        capture(
            7,
            420,
            AccessState {
                now_ms: 910,
                services: vec![ServiceAccessState {
                    name: "img-embed".to_owned(),
                    consecutive_lost: 2,
                    open: true,
                    opened_at_ms: 640,
                    snapshot: Some(FeatureValue::Numeric(0.25)),
                    stats: Default::default(),
                }],
            },
            IncrementalState {
                n_batches: 3,
                pool: ds.clone(),
                votes: vec![1, 0, -1, 1, 0, -1],
                em_warm: Some(WarmStart {
                    accuracies: vec![1.0 / 3.0, 0.7251, 2.0 / 7.0],
                    class_prior: 0.123_456_789,
                }),
                em_iterations: 20,
                graph: Some(OnlineGraphState {
                    n_rows: 5,
                    anchors: vec![0, 3],
                    anchor_members: vec![vec![0, 1, 4], vec![2, 3]],
                    edges: vec![(1, 0, 0.25), (4, 3, 0.125)],
                }),
            },
            PendingWork {
                queue: vec![item.clone()],
                deferred: vec![],
                quarantine: vec![QuarantinedBatch {
                    item,
                    retry_tick: 9,
                    attempts: 1,
                    reasons: vec!["coverage 0.0000 below minimum 0.0200".to_owned()],
                }],
            },
            ServeTelemetry {
                shed: SheddingReport {
                    offered: 5,
                    admitted: 3,
                    shed_rows: 7,
                    ..Default::default()
                },
                quarantined: 1,
                recovered: 0,
                dropped: 0,
                last_entropy: Some(0.631_234),
                batch_stats: vec![BatchStats {
                    batch_index: 0,
                    rows: 2,
                    total_rows: 2,
                    coverage: 0.5,
                    abstain_rate: 1.0 / 7.0,
                    mean_entropy: 0.6,
                    em_iterations: 40,
                }],
                latencies_ms: vec![15, 30],
            },
        )
    }

    fn delta_fixture(base: &Checkpoint) -> TickDelta {
        let schema = schema();
        let ds = dataset(&schema);
        capture_delta(
            base.ticks + 1,
            base.rows_generated + 2,
            AccessState { now_ms: 990, services: base.access.services.clone() },
            IncrementalDelta {
                n_batches: base.curator.n_batches + 1,
                new_rows: ds,
                new_votes: vec![1, -1, 0, 0, 1, -1],
                em_warm: Some(WarmStart { accuracies: vec![0.5, 0.625, 0.75], class_prior: 0.25 }),
                em_iterations: 11,
                graph: Some(OnlineGraphDelta {
                    n_rows: 7,
                    new_edges: vec![(5, 0, 0.5), (6, 3, 0.0625)],
                    member_appends: vec![(0, vec![5]), (1, vec![6])],
                    new_anchors: vec![(6, vec![6])],
                }),
            },
            PendingWork::default(),
            &ServeTelemetry {
                shed: SheddingReport { offered: 6, admitted: 4, ..Default::default() },
                quarantined: 1,
                recovered: 1,
                dropped: 0,
                last_entropy: Some(0.25),
                batch_stats: vec![
                    base.telemetry.batch_stats[0].clone(),
                    BatchStats {
                        batch_index: 1,
                        rows: 2,
                        total_rows: 4,
                        coverage: 1.0,
                        abstain_rate: 0.125,
                        mean_entropy: 0.25,
                        em_iterations: 11,
                    },
                ],
                latencies_ms: vec![15, 30, 45],
            },
            1,
            2,
        )
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let cp = fixture();
        let text = cp.save();
        let back = load(&text, &schema()).expect("load");
        // Bit-exact: re-serializing the loaded checkpoint reproduces the
        // original text byte for byte (floats included).
        assert_eq!(back.save(), text);
        // Spot-check irrational floats survived exactly.
        let warm = back.curator.em_warm.expect("warm");
        assert_eq!(warm.accuracies[0].to_bits(), (1.0f64 / 3.0).to_bits());
        assert_eq!(back.pending.quarantine[0].retry_tick, 9);
        assert_eq!(back.telemetry.latencies_ms, vec![15, 30]);
        assert_eq!(back.access.services[0].opened_at_ms, 640);
    }

    #[test]
    fn load_rejects_other_versions() {
        let text = fixture().save().replacen("\"version\": 1", "\"version\": 2", 1);
        let err = load(&text, &schema()).expect_err("version 2 must be rejected");
        assert!(err.to_string().contains("unsupported checkpoint version"));
    }

    #[test]
    fn load_rejects_truncated_checkpoints() {
        let text = fixture().save();
        assert!(load(&text[..text.len() / 2], &schema()).is_err());
    }

    #[test]
    fn wire_base_round_trips_bit_exactly() {
        let cp = fixture();
        let bytes = encode_base_file(&cp);
        let rec = load_any(&bytes, &schema()).expect("recover");
        assert!(!rec.legacy_json);
        assert_eq!(rec.deltas, 0);
        assert_eq!(rec.valid_bytes, bytes.len());
        assert_eq!(rec.base_bytes, bytes.len());
        // Re-encoding the recovered state reproduces the bytes exactly.
        assert_eq!(encode_base_file(&rec.checkpoint), bytes);
        assert_eq!(rec.checkpoint.curator.votes, cp.curator.votes);
        assert_eq!(
            rec.checkpoint.curator.em_warm.as_ref().map(|w| w.accuracies[0].to_bits()),
            Some((1.0f64 / 3.0).to_bits())
        );
    }

    #[test]
    fn delta_replay_merges_onto_the_base() {
        let cp = fixture();
        let delta = delta_fixture(&cp);
        let mut bytes = encode_base_file(&cp);
        bytes.extend_from_slice(&encode_delta_frame(&delta));
        let rec = load_any(&bytes, &schema()).expect("recover");
        assert_eq!(rec.deltas, 1);
        assert_eq!(rec.valid_bytes, bytes.len());
        let got = rec.checkpoint;
        assert_eq!(got.ticks, cp.ticks + 1);
        assert_eq!(got.rows_generated, cp.rows_generated + 2);
        assert_eq!(got.curator.n_batches, cp.curator.n_batches + 1);
        assert_eq!(got.curator.pool.len(), cp.curator.pool.len() + 2);
        assert_eq!(got.curator.votes.len(), cp.curator.votes.len() + 6);
        assert_eq!(got.telemetry.batch_stats.len(), 2);
        assert_eq!(got.telemetry.latencies_ms, vec![15, 30, 45]);
        let graph = got.curator.graph.expect("graph");
        assert_eq!(graph.n_rows, 7);
        assert_eq!(graph.anchors, vec![0, 3, 6]);
        assert_eq!(graph.anchor_members, vec![vec![0, 1, 4, 5], vec![2, 3, 6], vec![6]]);
        assert_eq!(graph.edges.len(), 4);
    }

    #[test]
    fn torn_tail_recovers_to_the_previous_record_at_every_offset() {
        let cp = fixture();
        let delta = delta_fixture(&cp);
        let base = encode_base_file(&cp);
        let frame = encode_delta_frame(&delta);
        let mut full = base.clone();
        full.extend_from_slice(&frame);
        // Reference: what a run that never appended the delta persisted.
        let reference = load_any(&base, &schema()).expect("base only");
        for cut in 0..frame.len() {
            let torn = &full[..base.len() + cut];
            let rec = load_any(torn, &schema()).expect("torn tail must still recover");
            assert_eq!(rec.deltas, 0, "cut at {cut}");
            assert_eq!(rec.valid_bytes, base.len(), "cut at {cut}");
            assert_eq!(
                encode_base_file(&rec.checkpoint),
                encode_base_file(&reference.checkpoint),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn corrupt_tail_recovers_to_the_previous_record_at_every_offset() {
        let cp = fixture();
        let delta = delta_fixture(&cp);
        let base = encode_base_file(&cp);
        let frame = encode_delta_frame(&delta);
        for byte in 0..frame.len() {
            let mut bytes = base.clone();
            let mut bad = frame.clone();
            bad[byte] ^= 0x40;
            bytes.extend_from_slice(&bad);
            let rec = load_any(&bytes, &schema()).expect("corrupt tail must still recover");
            assert_eq!(rec.deltas, 0, "flip at {byte}");
            assert_eq!(rec.valid_bytes, base.len(), "flip at {byte}");
        }
    }

    #[test]
    fn load_any_sniffs_legacy_json() {
        let cp = fixture();
        let rec = load_any(cp.save().as_bytes(), &schema()).expect("legacy");
        assert!(rec.legacy_json);
        assert_eq!(rec.base_bytes, 0);
        assert_eq!(rec.checkpoint.save(), cp.save());
        // Legacy checkpoints carry no votes; restore recomputes them.
        assert!(rec.checkpoint.curator.votes.is_empty());
    }

    #[test]
    fn load_any_rejects_bad_magic_and_version() {
        let cp = fixture();
        let mut bytes = encode_base_file(&cp);
        bytes[0] = b'X';
        assert!(load_any(&bytes, &schema()).is_err());
        let mut w = Writer::new();
        write_header(&mut w, LOG_MAGIC, LOG_VERSION + 1);
        assert!(load_any(w.as_bytes(), &schema()).is_err());
    }

    #[test]
    fn store_compacts_by_tick_count_and_log_size() {
        let dir = std::env::temp_dir().join("cm_snapshot_store_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("compact.ckpt");
        let _ = std::fs::remove_file(&path);
        let policy = CompactionPolicy { every_ticks: 2, max_log_factor: 1000.0 };
        let (mut store, none) =
            CheckpointStore::open(&path, CheckpointFormat::Wire, policy, &schema()).expect("open");
        assert!(none.is_none());
        assert!(store.needs_base());
        let cp = fixture();
        store.commit_base(&cp).expect("base");
        assert!(!store.needs_base());
        let delta = delta_fixture(&cp);
        store.commit_delta(&delta).expect("delta 1");
        assert!(!store.needs_base());
        store.commit_delta(&delta).expect("delta 2");
        assert!(store.needs_base(), "every_ticks=2 must force a base rewrite");
        // Size-triggered compaction: a tiny factor trips immediately.
        let policy = CompactionPolicy { every_ticks: 1000, max_log_factor: 1.01 };
        let (mut store, some) =
            CheckpointStore::open(&path, CheckpointFormat::Wire, policy, &schema())
                .expect("reopen");
        assert!(some.is_some());
        store.commit_base(&cp).expect("base");
        store.commit_delta(&delta).expect("delta");
        assert!(store.needs_base(), "log past max_log_factor must force a base rewrite");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn store_open_truncates_torn_tails() {
        let dir = std::env::temp_dir().join("cm_snapshot_store_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("torn.ckpt");
        let _ = std::fs::remove_file(&path);
        let (mut store, _) = CheckpointStore::open(
            &path,
            CheckpointFormat::Wire,
            CompactionPolicy::default(),
            &schema(),
        )
        .expect("open");
        let cp = fixture();
        store.commit_base(&cp).expect("base");
        let delta = delta_fixture(&cp);
        store.commit_delta(&delta).expect("delta");
        let clean_len = std::fs::metadata(&path).expect("meta").len();
        // Simulate a crash mid-append: half a second delta.
        let frame = encode_delta_frame(&delta);
        {
            let mut f =
                std::fs::OpenOptions::new().append(true).open(&path).expect("append handle");
            f.write_all(&frame[..frame.len() / 2]).expect("torn write");
        }
        let (store, cp_back) = CheckpointStore::open(
            &path,
            CheckpointFormat::Wire,
            CompactionPolicy::default(),
            &schema(),
        )
        .expect("reopen");
        assert_eq!(std::fs::metadata(&path).expect("meta").len(), clean_len);
        assert_eq!(cp_back.expect("state").ticks, cp.ticks + 1);
        assert_eq!(store.deltas_since_base, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn store_json_format_always_rewrites_whole() {
        let dir = std::env::temp_dir().join("cm_snapshot_store_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("legacy.ckpt");
        let _ = std::fs::remove_file(&path);
        let (mut store, _) = CheckpointStore::open(
            &path,
            CheckpointFormat::Json,
            CompactionPolicy::default(),
            &schema(),
        )
        .expect("open");
        assert!(store.needs_base());
        let cp = fixture();
        store.commit_base(&cp).expect("base");
        assert!(store.needs_base(), "JSON format has no delta log");
        assert!(store.commit_delta(&delta_fixture(&cp)).is_err());
        // The file is plain JSON, loadable by the legacy path.
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(load(&text, &schema()).expect("legacy load").save(), cp.save());
        let _ = std::fs::remove_file(&path);
    }
}
