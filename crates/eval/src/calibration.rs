//! Calibration diagnostics for probabilistic labels.
//!
//! The noise-aware loss (§5) treats the label model's posteriors as soft
//! targets, which is only sound if they are *calibrated*: among points
//! labeled `q ≈ 0.8`, about 80 % should be true positives. This module
//! measures that with a reliability curve and the expected calibration
//! error (ECE).

/// One bin of a reliability curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityBin {
    /// Mean predicted probability of the bin's points.
    pub mean_predicted: f64,
    /// Observed positive fraction.
    pub observed_rate: f64,
    /// Points in the bin.
    pub count: usize,
}

/// Equal-width reliability curve over `[0, 1]`; empty bins are omitted.
///
/// # Panics
/// Panics on length mismatch or `n_bins == 0`.
pub fn reliability_curve(probs: &[f64], positives: &[bool], n_bins: usize) -> Vec<ReliabilityBin> {
    assert_eq!(probs.len(), positives.len(), "prob/label length mismatch");
    assert!(n_bins > 0, "need at least one bin");
    let mut sums = vec![0.0f64; n_bins];
    let mut hits = vec![0usize; n_bins];
    let mut counts = vec![0usize; n_bins];
    for (&p, &y) in probs.iter().zip(positives) {
        let b = ((p * n_bins as f64) as usize).min(n_bins - 1);
        sums[b] += p;
        counts[b] += 1;
        hits[b] += usize::from(y);
    }
    (0..n_bins)
        .filter(|&b| counts[b] > 0)
        .map(|b| ReliabilityBin {
            mean_predicted: sums[b] / counts[b] as f64,
            observed_rate: hits[b] as f64 / counts[b] as f64,
            count: counts[b],
        })
        .collect()
}

/// Expected calibration error: count-weighted mean absolute gap between
/// predicted and observed rates across bins. 0 = perfectly calibrated.
pub fn expected_calibration_error(probs: &[f64], positives: &[bool], n_bins: usize) -> f64 {
    let curve = reliability_curve(probs, positives, n_bins);
    let total: usize = curve.iter().map(|b| b.count).sum();
    if total == 0 {
        return 0.0;
    }
    curve
        .iter()
        .map(|b| (b.count as f64 / total as f64) * (b.mean_predicted - b.observed_rate).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A perfectly calibrated source: q of each point equals its true
    /// positive frequency by construction.
    fn calibrated(n: usize) -> (Vec<f64>, Vec<bool>) {
        let mut probs = Vec::with_capacity(n);
        let mut pos = Vec::with_capacity(n);
        for i in 0..n {
            let q = (i % 10) as f64 / 10.0 + 0.05;
            probs.push(q);
            // Deterministic "coin": positive for the first q-fraction of
            // each residue class.
            pos.push(((i / 10) % 100) as f64 / 100.0 < q);
        }
        (probs, pos)
    }

    #[test]
    fn calibrated_source_has_low_ece() {
        let (p, y) = calibrated(20_000);
        let ece = expected_calibration_error(&p, &y, 10);
        assert!(ece < 0.02, "ECE {ece} on a calibrated source");
    }

    #[test]
    fn overconfident_source_has_high_ece() {
        // Predicts 0.95 while the truth rate is 0.5.
        let probs = vec![0.95; 1000];
        let pos: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
        let ece = expected_calibration_error(&probs, &pos, 10);
        assert!((ece - 0.45).abs() < 0.01, "ECE {ece}");
    }

    #[test]
    fn curve_bins_cover_all_points() {
        let (p, y) = calibrated(500);
        let curve = reliability_curve(&p, &y, 10);
        let total: usize = curve.iter().map(|b| b.count).sum();
        assert_eq!(total, 500);
        for b in &curve {
            assert!((0.0..=1.0).contains(&b.mean_predicted));
            assert!((0.0..=1.0).contains(&b.observed_rate));
        }
    }

    #[test]
    fn boundary_probability_goes_to_last_bin() {
        let curve = reliability_curve(&[1.0, 0.0], &[true, false], 4);
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].observed_rate, 0.0);
        assert_eq!(curve[1].observed_rate, 1.0);
    }

    #[test]
    fn empty_input_is_zero_error() {
        assert_eq!(expected_calibration_error(&[], &[], 5), 0.0);
        assert!(reliability_curve(&[], &[], 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_input() {
        reliability_curve(&[0.5], &[], 5);
    }
}
