//! Float-ordering pass.
//!
//! Two shapes that make float comparisons order- or NaN-sensitive:
//!
//! 1. `partial_cmp`-based comparators (`sort_by(|a, b|
//!    a.partial_cmp(b).unwrap_or(Equal))`): NaN compares `Equal` to
//!    everything, which silently violates strict-weak ordering and makes
//!    the sorted order depend on the input permutation — exactly what the
//!    serial≡parallel bit-identity suites must not see. `f32`/`f64`
//!    implement `total_cmp`, which is a true total order; use it.
//! 2. `fold(init, f64::max)` / `reduce(f32::min)`-style folds that pass
//!    the asymmetric NaN-dropping `max`/`min` as a function value; use
//!    `max_by(f64::total_cmp)` / `min_by(…)` instead.
//!
//! A direct two-argument call like `f64::max(a, b)` or `a.max(b)` is not
//! flagged: with explicit operands the result does not depend on an
//! iteration order.

use super::{PassInput, RawFinding};

/// The rule name.
pub const RULE: &str = "float-ordering";

/// Runs the pass.
pub fn run(input: &PassInput<'_>) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for j in 0..input.ctx.code.len() {
        let Some(tok) = input.at(j) else { break };
        // Shape 1: `.partial_cmp(`.
        if tok.is_punct('.') && input.ident(j + 1, "partial_cmp") && input.punct(j + 2, '(') {
            out.push(RawFinding {
                rule: RULE,
                tok: input.tok_index(j),
                message: "partial_cmp makes NaN compare Equal and breaks strict-weak \
                          ordering; use total_cmp"
                    .to_owned(),
            });
        }
        // Shape 2: `f64::max` / `f32::min` as a function value (not
        // directly called).
        if (tok.is_ident("f64") || tok.is_ident("f32"))
            && input.path_sep(j + 1)
            && (input.ident(j + 3, "max") || input.ident(j + 3, "min"))
            && !input.punct(j + 4, '(')
        {
            let ty = tok.ident_text();
            let m = input.at(j + 3).map_or(String::new(), |t| t.ident_text().to_owned());
            out.push(RawFinding {
                rule: RULE,
                tok: input.tok_index(j),
                message: format!(
                    "`{ty}::{m}` as a fold function drops NaN asymmetrically; use \
                     `{}_by({ty}::total_cmp)`",
                    m
                ),
            });
        }
    }
    out
}
