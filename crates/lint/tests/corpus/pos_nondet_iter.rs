//@ path: crates/demo/src/lib.rs
// Seeded positive: hash-ordered iteration through every tracked route —
// direct binding, use-alias, type-alias, struct field, fn parameter, and
// a same-file constructor function.

use std::collections::HashMap as Map;
use std::collections::HashSet;

type Index = Map<String, u32>;

pub struct Registry {
    index: Map<String, usize>,
}

fn build() -> Map<String, usize> {
    Map::new()
}

pub fn f(param: &HashSet<u32>) -> usize {
    let direct: Map<String, u32> = Map::new();
    for (k, _v) in &direct {
        let _ = k;
    }
    let aliased: Index = Index::new();
    let mut total = 0;
    for k in aliased.keys() {
        total += k.len();
    }
    let built = build();
    total += built.values().count();
    total += param.iter().count();
    total
}

impl Registry {
    pub fn names(&self) -> Vec<String> {
        self.index.keys().cloned().collect()
    }
}
