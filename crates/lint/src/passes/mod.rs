//! The semantic lint passes.
//!
//! Each pass scans one file's code-token view (comments filtered out, so
//! a call split across lines or interleaved with comments still matches)
//! and emits raw findings anchored to a token index. The engine in
//! `lib.rs` turns anchors into line/column positions, drops findings in
//! `#[cfg(test)]` regions, applies waiver pragmas, and audits them.

pub mod bans;
pub mod effect_audit;
pub mod float_order;
pub mod merge_float;
pub mod nondet_iter;
pub mod par_capture;

use crate::context::FileContext;
use crate::lexer::Tok;
use crate::report::Frame;
use crate::symbols::SymbolIndex;

/// A finding before position resolution and waiver handling: the rule,
/// the anchor token (index into the full token stream), and the message.
#[derive(Debug)]
pub struct RawFinding {
    /// Rule name; doubles as the waiver key.
    pub rule: &'static str,
    /// Index into the token stream of the first matched token.
    pub tok: usize,
    /// Human explanation.
    pub message: String,
}

/// A finding from a workspace-level (interprocedural) pass: a raw
/// finding plus the file it anchors into and its call chain.
#[derive(Debug)]
pub struct WsFinding {
    /// Index of the anchored file in the workspace file list.
    pub file: usize,
    /// Rule name; doubles as the waiver key.
    pub rule: &'static str,
    /// Index into that file's token stream.
    pub tok: usize,
    /// Human explanation.
    pub message: String,
    /// Entry-point → finding call chain.
    pub chain: Vec<Frame>,
}

/// Splits the argument list opened by the `(` at code index `open` into
/// top-level argument ranges (inclusive code-index pairs), honoring
/// nested parens/brackets/braces and closure pipes.
pub(crate) fn split_args(code: &crate::context::Code<'_>, open: usize) -> Vec<(usize, usize)> {
    let Some(close) = code.matching_close(open) else { return Vec::new() };
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut start = open + 1;
    let mut in_closure_params = false;
    for k in open + 1..close {
        if code.is_punct(k, '|') && depth == 0 {
            in_closure_params = !in_closure_params;
        }
        for c in ['(', '[', '{'] {
            if code.is_punct(k, c) {
                depth += 1;
            }
        }
        for c in [')', ']', '}'] {
            if code.is_punct(k, c) {
                depth -= 1;
            }
        }
        if depth == 0 && !in_closure_params && code.is_punct(k, ',') {
            if k > start {
                out.push((start, k - 1));
            }
            start = k + 1;
        }
    }
    if close > start {
        out.push((start, close - 1));
    }
    out
}

/// If the argument range holds a closure literal (`|…| body` or
/// `move |…| body`), the code-index range of its body.
pub(crate) fn closure_body(
    code: &crate::context::Code<'_>,
    arg: (usize, usize),
) -> Option<(usize, usize)> {
    let mut s = arg.0;
    if code.is_ident(s, "move") {
        s += 1;
    }
    if !code.is_punct(s, '|') {
        return None;
    }
    let mut k = s + 1;
    while k <= arg.1 {
        if code.is_punct(k, '|') {
            return (k < arg.1).then_some((k + 1, arg.1));
        }
        k += 1;
    }
    None
}

/// Renders a function-index chain as report frames (each function at its
/// name token).
pub(crate) fn frames_for(
    sym: &SymbolIndex,
    units: &[crate::symbols::FileUnit],
    chain: &[usize],
) -> Vec<Frame> {
    chain
        .iter()
        .map(|&i| {
            let f = &sym.fns[i];
            let t = &units[f.file].toks[f.name_tok];
            Frame {
                name: f.name.clone(),
                file: units[f.file].path.clone(),
                line: t.line(),
                col: t.col(),
            }
        })
        .collect()
}

/// Shared pass input: the token stream plus the structural context.
pub struct PassInput<'a> {
    /// Full token stream (comments included).
    pub toks: &'a [Tok],
    /// Structural facts: code view, test regions, watched names, pragmas.
    pub ctx: &'a FileContext,
}

impl<'a> PassInput<'a> {
    /// Code-view token at position `j` (comments skipped), if any.
    pub fn at(&self, j: usize) -> Option<&'a Tok> {
        self.ctx.code.get(j).map(|&i| &self.toks[i])
    }

    /// True when code token `j` is the punctuation `c`.
    pub fn punct(&self, j: usize, c: char) -> bool {
        self.at(j).is_some_and(|t| t.is_punct(c))
    }

    /// True when code token `j` is the identifier `name`.
    pub fn ident(&self, j: usize, name: &str) -> bool {
        self.at(j).is_some_and(|t| t.is_ident(name))
    }

    /// True when code tokens `j`/`j+1` spell the path separator `::`.
    pub fn path_sep(&self, j: usize) -> bool {
        self.punct(j, ':') && self.punct(j + 1, ':')
    }

    /// The token-stream index of code token `j`.
    pub fn tok_index(&self, j: usize) -> usize {
        self.ctx.code[j]
    }
}
