//! Deterministic fault injection and resilient service access.
//!
//! The pipeline's premise is that it leans on *organizational services* —
//! model-based classifiers, aggregate statistics, rule engines — and in
//! production those services go down, lag, and emit garbage. This crate
//! makes that operational reality testable:
//!
//! - [`FaultPlan`] declares, per service, how it misbehaves
//!   ([`FaultMode`]: unavailable, transient, latency, corrupt, stale) and
//!   how often; plans parse from the `CM_FAULTS` environment spec.
//! - [`AccessLayer`] wraps every service call with client-side hardening:
//!   retry with exponential backoff + jitter, a per-call deadline budget,
//!   response validation that catches corrupt values, and a circuit
//!   breaker that gives up on a dead service. Lost calls degrade to
//!   missing features instead of panics or poisoned matrices.
//! - [`FaultSummary`] reports the scenario outcome (per-service stats,
//!   tripped breakers) for inclusion in pipeline reports.
//!
//! **Determinism contract**: every fault decision is drawn from a stream
//! seeded by `(plan seed, salt, service, row)`; all waiting happens on a
//! [`SimClock`]. A fault scenario therefore reproduces bit-for-bit on any
//! host, at any `CM_THREADS`. The only wall-clock reads in library code go
//! through [`Stopwatch`], which feeds timing *reports*, never control flow.

mod access;
mod clock;
mod plan;

pub use access::{
    validate_value, AccessLayer, AccessPolicy, AccessState, FaultSummary, ServiceAccessState,
    ServiceDescriptor, ServiceStats,
};
pub use clock::{SimClock, Stopwatch};
pub use plan::{FaultMode, FaultPlan, FaultSpec, CM_FAULTS_ENV};
