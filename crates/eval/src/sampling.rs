//! Live-metric estimation from reviewed samples (paper §7.4).
//!
//! Offline metrics rarely reflect production performance, so the paper
//! periodically samples live traffic — "a combination of random and
//! importance sampling" — for human review. This module implements the
//! estimator: a review budget is split between a uniform sample (unbiased
//! coverage of the negatives) and a score-weighted importance sample
//! (efficient coverage of the rare predicted positives); precision and
//! recall are estimated with Horvitz–Thompson inverse-probability weights.

use cm_linalg::rng::Rng;
use cm_linalg::rng::StdRng;

/// A live-metric estimate from a reviewed sample.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveEstimate {
    /// Estimated precision of `score >= threshold`.
    pub precision: f64,
    /// Estimated recall of `score >= threshold`.
    pub recall: f64,
    /// Estimated number of true positives in the stream.
    pub est_positives: f64,
    /// Rows actually sent to review.
    pub n_reviewed: usize,
}

/// Estimates live precision/recall of a score threshold by reviewing at
/// most `budget` items, half drawn uniformly and half by score-proportional
/// importance sampling. `oracle` answers "is this item a true positive?"
/// (in production, a human reviewer).
///
/// Returns `None` when the stream is empty or the budget is zero.
pub fn estimate_live_metrics(
    scores: &[f64],
    threshold: f64,
    budget: usize,
    seed: u64,
    mut oracle: impl FnMut(usize) -> bool,
) -> Option<LiveEstimate> {
    let n = scores.len();
    if n == 0 || budget == 0 {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let uniform_budget = (budget / 2).max(1);
    let importance_budget = budget.saturating_sub(uniform_budget);

    // Inclusion weights: every item can be drawn uniformly; high scorers
    // also via importance draws. Track per-item sampling probability under
    // "with replacement" draws, then weight reviews by 1/p.
    let total_score: f64 = scores.iter().map(|&s| s.max(1e-9)).sum();
    let p_uniform = uniform_budget as f64 / n as f64;
    let p_importance = |s: f64| importance_budget as f64 * (s.max(1e-9) / total_score);
    // P(reviewed at least once) ~= min(1, p_u + p_i) for small p.
    let inclusion = |i: usize| (p_uniform + p_importance(scores[i])).min(1.0);

    let mut reviewed: Vec<usize> = Vec::with_capacity(budget);
    let mut seen = vec![false; n];
    for _ in 0..uniform_budget {
        let i = rng.gen_range(0..n);
        if !seen[i] {
            seen[i] = true;
            reviewed.push(i);
        }
    }
    for _ in 0..importance_budget {
        // Inverse-CDF draw over scores.
        let mut u = rng.gen::<f64>() * total_score;
        let mut pick = n - 1;
        for (i, &s) in scores.iter().enumerate() {
            u -= s.max(1e-9);
            if u <= 0.0 {
                pick = i;
                break;
            }
        }
        if !seen[pick] {
            seen[pick] = true;
            reviewed.push(pick);
        }
    }

    // Horvitz–Thompson totals.
    let mut est_tp_flagged = 0.0; // true positives with score >= threshold
    let mut est_flagged = 0.0; // items with score >= threshold
    let mut est_pos_total = 0.0; // all true positives
    let mut n_reviewed = 0;
    for &i in &reviewed {
        n_reviewed += 1;
        let w = 1.0 / inclusion(i);
        let truth = oracle(i);
        if scores[i] >= threshold {
            est_flagged += w;
            if truth {
                est_tp_flagged += w;
            }
        }
        if truth {
            est_pos_total += w;
        }
    }
    let precision = if est_flagged > 0.0 { (est_tp_flagged / est_flagged).min(1.0) } else { 0.0 };
    let recall = if est_pos_total > 0.0 { (est_tp_flagged / est_pos_total).min(1.0) } else { 0.0 };
    Some(LiveEstimate { precision, recall, est_positives: est_pos_total, n_reviewed })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stream where truth is exactly `score > 0.5 XOR (i % 7 == 0)`:
    /// imperfect but strongly score-correlated.
    fn stream(n: usize) -> (Vec<f64>, Vec<bool>) {
        let scores: Vec<f64> = (0..n).map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0).collect();
        let truth: Vec<bool> =
            scores.iter().enumerate().map(|(i, &s)| (s > 0.5) != (i % 7 == 0)).collect();
        (scores, truth)
    }

    fn exact_metrics(scores: &[f64], truth: &[bool], thr: f64) -> (f64, f64) {
        let tp = scores.iter().zip(truth).filter(|(&s, &t)| s >= thr && t).count() as f64;
        let flagged = scores.iter().filter(|&&s| s >= thr).count() as f64;
        let pos = truth.iter().filter(|&&t| t).count() as f64;
        (tp / flagged.max(1.0), tp / pos.max(1.0))
    }

    #[test]
    fn estimate_tracks_exact_metrics() {
        let (scores, truth) = stream(20_000);
        let (p_true, r_true) = exact_metrics(&scores, &truth, 0.5);
        let est = estimate_live_metrics(&scores, 0.5, 3_000, 1, |i| truth[i]).unwrap();
        assert!((est.precision - p_true).abs() < 0.07, "{} vs {p_true}", est.precision);
        assert!((est.recall - r_true).abs() < 0.10, "{} vs {r_true}", est.recall);
        assert!(est.n_reviewed <= 3_000);
    }

    #[test]
    fn estimated_positive_mass_is_calibrated() {
        let (scores, truth) = stream(10_000);
        let true_pos = truth.iter().filter(|&&t| t).count() as f64;
        let est = estimate_live_metrics(&scores, 0.5, 2_000, 2, |i| truth[i]).unwrap();
        assert!(
            (est.est_positives - true_pos).abs() / true_pos < 0.25,
            "{} vs {true_pos}",
            est.est_positives
        );
    }

    #[test]
    fn importance_sampling_reviews_more_flagged_items_than_uniform_alone() {
        let (scores, truth) = stream(10_000);
        let mut flagged_reviews = 0usize;
        estimate_live_metrics(&scores, 0.9, 400, 3, |i| {
            if scores[i] >= 0.9 {
                flagged_reviews += 1;
            }
            truth[i]
        });
        // Under pure uniform sampling ~10% of 400 reviews (~40) would be
        // >= 0.9; score-proportional importance draws lift that visibly.
        assert!(flagged_reviews > 45, "only {flagged_reviews} high-score reviews");
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert!(estimate_live_metrics(&[], 0.5, 10, 0, |_| true).is_none());
        assert!(estimate_live_metrics(&[0.5], 0.5, 0, 0, |_| true).is_none());
    }

    #[test]
    fn deterministic_per_seed() {
        let (scores, truth) = stream(2_000);
        let a = estimate_live_metrics(&scores, 0.5, 200, 9, |i| truth[i]);
        let b = estimate_live_metrics(&scores, 0.5, 200, 9, |i| truth[i]);
        assert_eq!(a, b);
    }
}
