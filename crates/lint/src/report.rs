//! Findings and the machine-readable report.
//!
//! Human diagnostics render as `file:line:col: [rule] message` (with the
//! interprocedural passes appending a `call chain:` of `name
//! (path:line:col)` frames); the JSON report is deterministic — findings
//! sorted by (file, line, col, rule) — so successive runs diff cleanly.
//!
//! Report schema version 2: each finding carries a `chain` array of
//! `{name, file, line, col}` frames (empty for single-token rules),
//! rendering the entry-point → effect-site path the call-graph passes
//! proved.

use std::cmp::Ordering;
use std::fmt;
use std::path::PathBuf;

use cm_json::Json;

/// One frame of an interprocedural call chain: a function and where it
/// is defined (or called from).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Function name as indexed (bare, no path).
    pub name: String,
    /// Workspace-relative file holding the frame.
    pub file: PathBuf,
    /// 1-based line of the function's name token.
    pub line: u32,
    /// 1-based column of the function's name token.
    pub col: u32,
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}:{}:{})", self.name, self.file.display(), self.line, self.col)
    }
}

/// One lint finding at an exact source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name, e.g. `"nondet-iteration"`; also the waiver key.
    pub rule: &'static str,
    /// Source file (workspace-relative when produced by [`crate::run`]).
    pub file: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (characters).
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// Entry-point → finding call chain for the interprocedural rules;
    /// empty for single-file rules.
    pub chain: Vec<Frame>,
}

impl Finding {
    /// The deterministic report order: file, then line, then column, then
    /// rule name.
    pub fn sort_key_cmp(&self, other: &Finding) -> Ordering {
        self.file
            .cmp(&other.file)
            .then(self.line.cmp(&other.line))
            .then(self.col.cmp(&other.col))
            .then(self.rule.cmp(other.rule))
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.col,
            self.rule,
            self.message
        )?;
        if !self.chain.is_empty() {
            write!(f, "; call chain: ")?;
            for (i, frame) in self.chain.iter().enumerate() {
                if i > 0 {
                    write!(f, " -> ")?;
                }
                write!(f, "{frame}")?;
            }
        }
        Ok(())
    }
}

/// Builds the machine-readable report object (schema version 2: findings
/// carry call-chain frames). `findings` must already be sorted (as
/// [`crate::run`] guarantees).
pub fn report_json(findings: &[Finding], files_scanned: usize) -> Json {
    Json::obj([
        ("version", Json::Num(2.0)),
        ("tool", Json::Str("cm-lint".to_owned())),
        ("files_scanned", Json::Num(files_scanned as f64)),
        ("finding_count", Json::Num(findings.len() as f64)),
        (
            "findings",
            Json::Arr(
                findings
                    .iter()
                    .map(|f| {
                        Json::obj([
                            ("file", Json::Str(f.file.display().to_string())),
                            ("line", Json::Num(f64::from(f.line))),
                            ("col", Json::Num(f64::from(f.col))),
                            ("rule", Json::Str(f.rule.to_owned())),
                            ("message", Json::Str(f.message.clone())),
                            (
                                "chain",
                                Json::Arr(
                                    f.chain
                                        .iter()
                                        .map(|fr| {
                                            Json::obj([
                                                ("name", Json::Str(fr.name.clone())),
                                                ("file", Json::Str(fr.file.display().to_string())),
                                                ("line", Json::Num(f64::from(fr.line))),
                                                ("col", Json::Num(f64::from(fr.col))),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}
