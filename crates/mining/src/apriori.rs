//! Apriori-style itemset mining over the labeled development corpus.

use std::collections::HashMap;

use cm_featurespace::{FeatureKind, FeatureTable, Label};
use cm_par::ParConfig;

use crate::discretize::Discretizer;

/// Below this many rows the candidate-support passes stay serial; above it
/// they chunk over rows. Size-only, so path selection never depends on the
/// thread count.
const MINE_PAR_ROWS: usize = 4096;

/// Minimum rows per chunk for the parallel counting passes.
const MINE_MIN_ROWS_PER_CHUNK: usize = 1024;

/// An atomic item: one feature value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Item {
    /// Source column.
    pub column: usize,
    /// The value.
    pub value: ItemValue,
}

/// The value part of an [`Item`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ItemValue {
    /// A category id of a categorical feature.
    Cat(u32),
    /// A quantile bin of a numeric feature.
    NumBin(u32),
}

/// Support/precision statistics of a mined itemset.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemStats {
    /// The items (all share one column; length = order).
    pub items: Vec<Item>,
    /// Rows matching among positives.
    pub pos_support: usize,
    /// Rows matching among negatives.
    pub neg_support: usize,
    /// `P(y = + | itemset present)` on the dev set.
    pub precision: f64,
    /// `P(itemset present | y = +)` on the dev set.
    pub recall: f64,
}

/// Mining thresholds (§4.3: itemsets are kept when they meet pre-specified
/// precision and recall thresholds over the development set).
#[derive(Debug, Clone)]
pub struct MiningConfig {
    /// Minimum precision for positive itemsets.
    pub min_precision: f64,
    /// Minimum recall (within the positive class) for positive itemsets.
    pub min_recall: f64,
    /// Minimum "negative precision" (`P(y = - | present)`) for negative
    /// itemsets.
    pub min_neg_precision: f64,
    /// Minimum support within the negative class for negative itemsets.
    pub min_neg_recall: f64,
    /// Maximum itemset order (1 = single values; the paper found order 1
    /// sufficient in practice).
    pub max_order: usize,
    /// Quantile bins for numeric features.
    pub numeric_bins: usize,
}

impl Default for MiningConfig {
    fn default() -> Self {
        Self {
            min_precision: 0.8,
            min_recall: 0.02,
            min_neg_precision: 0.995,
            min_neg_recall: 0.05,
            max_order: 1,
            numeric_bins: 8,
        }
    }
}

/// Result of a mining run.
#[derive(Debug, Clone)]
pub struct MinedItemsets {
    /// Positive-indicative itemsets.
    pub positive: Vec<ItemStats>,
    /// Negative-indicative itemsets.
    pub negative: Vec<ItemStats>,
    /// Fitted numeric discretizers (needed to turn bins back into ranges).
    pub discretizers: Vec<Discretizer>,
    /// Number of order-1 candidates considered.
    pub n_candidates: usize,
}

/// Mines positive- and negative-indicative itemsets from a labeled table.
///
/// Implements the paper's class-imbalance optimization: candidate items are
/// first counted over the positive examples only; only survivors are counted
/// over the negatives. Higher orders join items *within one column*.
///
/// # Panics
/// Panics if `labels.len() != table.len()`.
pub fn mine_itemsets(
    table: &FeatureTable,
    labels: &[Label],
    columns: &[usize],
    config: &MiningConfig,
) -> MinedItemsets {
    mine_itemsets_with(table, labels, columns, config, &ParConfig::from_env())
}

/// [`mine_itemsets`] with an explicit parallel configuration.
///
/// The two candidate-support passes chunk over rows and merge per-chunk
/// count maps; counts are exact integer sums, so results are identical for
/// any thread count.
///
/// # Panics
/// Panics if `labels.len() != table.len()`.
pub fn mine_itemsets_with(
    table: &FeatureTable,
    labels: &[Label],
    columns: &[usize],
    config: &MiningConfig,
    par: &ParConfig,
) -> MinedItemsets {
    assert_eq!(table.len(), labels.len(), "label count mismatch");
    let schema = table.schema();
    let discretizers: Vec<Discretizer> = columns
        .iter()
        .filter(|&&c| schema.def(c).map(|d| d.kind) == Some(FeatureKind::Numeric))
        .filter_map(|&c| Discretizer::fit(table, c, config.numeric_bins))
        .collect();

    let n_pos = labels.iter().filter(|l| l.is_positive()).count();
    let n_neg = labels.len() - n_pos;

    // Pass 1: count order-1 items over positive rows only (the paper's
    // class-imbalance optimization).
    let pos_counts = count_class_items(table, labels, columns, &discretizers, par, true);
    let n_candidates = pos_counts.len();

    // Keep candidates that could still clear the recall bar.
    let min_pos_support = ((config.min_recall * n_pos as f64).ceil() as usize).max(1);
    let candidates: Vec<Item> =
        pos_counts.iter().filter(|(_, &c)| c >= min_pos_support).map(|(&i, _)| i).collect();

    // Pass 2: count items over negative rows. Candidate negative supports
    // are lookups into the same map, so one pass covers both the positive
    // LFs' denominators and the negative-indicative itemsets.
    let neg_all_counts = count_class_items(table, labels, columns, &discretizers, par, false);
    let neg_counts = |item: &Item| neg_all_counts.get(item).copied().unwrap_or(0);

    let make_stats = |items: Vec<Item>, pos: usize, neg: usize| ItemStats {
        items,
        pos_support: pos,
        neg_support: neg,
        precision: if pos + neg > 0 { pos as f64 / (pos + neg) as f64 } else { 0.0 },
        recall: if n_pos > 0 { pos as f64 / n_pos as f64 } else { 0.0 },
    };

    // Order-1 positive itemsets.
    let mut positive: Vec<ItemStats> = Vec::new();
    let mut frontier: Vec<Vec<Item>> = Vec::new();
    for &item in &candidates {
        let pos = pos_counts[&item];
        let neg = neg_counts(&item);
        let stats = make_stats(vec![item], pos, neg);
        if stats.precision >= config.min_precision && stats.recall >= config.min_recall {
            positive.push(stats);
        } else if stats.recall >= config.min_recall {
            // High-recall but low-precision items seed higher orders.
            frontier.push(vec![item]);
        }
    }

    // Higher orders: join frontier itemsets with candidate items of the
    // same column (Apriori join with the single-feature constraint).
    for _order in 2..=config.max_order {
        if frontier.is_empty() {
            break;
        }
        let mut next_sets: Vec<Vec<Item>> = Vec::new();
        let mut seen: HashMap<Vec<Item>, ()> = HashMap::new();
        for base in &frontier {
            let col = base[0].column;
            let Some(&last) = base.last() else { continue };
            for &item in candidates.iter().filter(|i| i.column == col && **i > last) {
                let mut joined = base.clone();
                joined.push(item);
                if seen.insert(joined.clone(), ()).is_none() {
                    next_sets.push(joined);
                }
            }
        }
        // Count joined itemsets: positives first, then negatives.
        let mut pos_c: HashMap<&[Item], usize> = HashMap::new();
        let mut neg_c: HashMap<&[Item], usize> = HashMap::new();
        for (r, label) in labels.iter().enumerate() {
            let items: Vec<Item> = row_items(table, r, columns, &discretizers).collect();
            for set in &next_sets {
                if set.iter().all(|i| items.contains(i)) {
                    if label.is_positive() {
                        *pos_c.entry(set.as_slice()).or_insert(0) += 1;
                    } else {
                        *neg_c.entry(set.as_slice()).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut new_frontier = Vec::new();
        for set in &next_sets {
            let pos = pos_c.get(set.as_slice()).copied().unwrap_or(0);
            let neg = neg_c.get(set.as_slice()).copied().unwrap_or(0);
            let stats = make_stats(set.clone(), pos, neg);
            if stats.recall < config.min_recall {
                continue; // anti-monotone prune
            }
            if stats.precision >= config.min_precision {
                positive.push(stats);
            } else {
                new_frontier.push(set.clone());
            }
        }
        frontier = new_frontier;
    }

    // Negative itemsets (order 1 only: the negative class is diffuse and
    // higher orders add nothing but runtime).
    let min_neg_support = ((config.min_neg_recall * n_neg as f64).ceil() as usize).max(1);
    let mut negative: Vec<ItemStats> = Vec::new();
    for (&item, &neg) in &neg_all_counts {
        if neg < min_neg_support {
            continue;
        }
        let pos = pos_counts.get(&item).copied().unwrap_or(0);
        let neg_precision = neg as f64 / (pos + neg) as f64;
        if neg_precision >= config.min_neg_precision {
            negative.push(make_stats(vec![item], pos, neg));
        }
    }

    sort_stats(&mut positive);
    sort_stats(&mut negative);
    MinedItemsets { positive, negative, discretizers, n_candidates }
}

/// Counts order-1 items over the rows of one class, chunking over rows when
/// the table is large enough. Per-chunk maps merge with integer addition,
/// which is exact and order-independent, so the result is identical at any
/// thread count.
fn count_class_items(
    table: &FeatureTable,
    labels: &[Label],
    columns: &[usize],
    discretizers: &[Discretizer],
    par: &ParConfig,
    positive: bool,
) -> HashMap<Item, usize> {
    let count_range = |range: std::ops::Range<usize>| {
        let mut counts: HashMap<Item, usize> = HashMap::new();
        for r in range {
            if labels[r].is_positive() != positive {
                continue;
            }
            for item in row_items(table, r, columns, discretizers) {
                *counts.entry(item).or_insert(0) += 1;
            }
        }
        counts
    };
    if labels.len() < MINE_PAR_ROWS {
        return count_range(0..labels.len());
    }
    cm_par::par_map_reduce(
        &par.clone().with_min_chunk(MINE_MIN_ROWS_PER_CHUNK),
        labels.len(),
        count_range,
        |mut acc, chunk| {
            for (item, c) in chunk {
                *acc.entry(item).or_insert(0) += c;
            }
            acc
        },
    )
    .unwrap_or_else(|e| e.resume())
    .unwrap_or_default()
}

fn sort_stats(stats: &mut [ItemStats]) {
    stats.sort_by(|a, b| {
        b.recall
            .partial_cmp(&a.recall)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.items.cmp(&b.items))
    });
}

/// Iterates the items present in one row.
fn row_items<'a>(
    table: &'a FeatureTable,
    row: usize,
    columns: &'a [usize],
    discretizers: &'a [Discretizer],
) -> impl Iterator<Item = Item> + 'a {
    columns.iter().flat_map(move |&col| {
        let schema = table.schema();
        let mut out: Vec<Item> = Vec::new();
        let Some(def) = schema.def(col) else {
            // Out-of-range columns contribute no items; `cm-check` validates
            // column lists before execution.
            return out.into_iter();
        };
        match def.kind {
            FeatureKind::Categorical => {
                if let Some(ids) = table.categorical(row, col) {
                    out.extend(
                        ids.iter().map(|&id| Item { column: col, value: ItemValue::Cat(id) }),
                    );
                }
            }
            FeatureKind::Numeric => {
                if let (Some(v), Some(d)) =
                    (table.numeric(row, col), discretizers.iter().find(|d| d.column == col))
                {
                    out.push(Item { column: col, value: ItemValue::NumBin(d.bin(v)) });
                }
            }
            FeatureKind::Embedding { .. } => {}
        }
        out.into_iter()
    })
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use cm_featurespace::{
        CatSet, FeatureDef, FeatureSchema, FeatureSet, FeatureValue, ServingMode, Vocabulary,
    };

    use super::*;

    /// Dev set: id 0 is a near-perfect positive indicator, id 1 appears in
    /// both classes, id 2 is a near-perfect negative indicator. The numeric
    /// column is high for positives.
    fn dev(n_pos: usize, n_neg: usize) -> (FeatureTable, Vec<Label>) {
        let schema = Arc::new(FeatureSchema::from_defs(vec![
            FeatureDef::categorical(
                "c",
                FeatureSet::C,
                ServingMode::Servable,
                Vocabulary::from_names(["p", "mix", "n"]),
            ),
            FeatureDef::numeric("score", FeatureSet::A, ServingMode::Servable),
        ]));
        let mut t = FeatureTable::new(schema);
        let mut labels = Vec::new();
        for i in 0..n_pos {
            let ids = if i % 10 == 0 { vec![1] } else { vec![0, 1] };
            t.push_row(&[
                FeatureValue::Categorical(CatSet::from_ids(ids)),
                FeatureValue::Numeric(10.0 + (i % 3) as f64),
            ]);
            labels.push(Label::Positive);
        }
        for i in 0..n_neg {
            let ids = if i % 60 == 0 { vec![0, 2] } else { vec![1, 2] };
            t.push_row(&[
                FeatureValue::Categorical(CatSet::from_ids(ids)),
                FeatureValue::Numeric(i as f64 * 0.01),
            ]);
            labels.push(Label::Negative);
        }
        (t, labels)
    }

    #[test]
    fn finds_positive_indicator() {
        let (t, labels) = dev(100, 900);
        let mined = mine_itemsets(&t, &labels, &[0, 1], &MiningConfig::default());
        let found = mined
            .positive
            .iter()
            .any(|s| s.items == vec![Item { column: 0, value: ItemValue::Cat(0) }]);
        assert!(found, "positive itemsets: {:?}", mined.positive);
    }

    #[test]
    fn finds_numeric_bin_indicator() {
        let (t, labels) = dev(100, 900);
        let mined = mine_itemsets(&t, &labels, &[0, 1], &MiningConfig::default());
        let found = mined
            .positive
            .iter()
            .any(|s| matches!(s.items[0].value, ItemValue::NumBin(_)) && s.items[0].column == 1);
        assert!(found, "expected a numeric-bin itemset: {:?}", mined.positive);
    }

    #[test]
    fn finds_negative_indicator() {
        let (t, labels) = dev(100, 900);
        let cfg = MiningConfig { min_neg_precision: 0.95, ..Default::default() };
        let mined = mine_itemsets(&t, &labels, &[0], &cfg);
        let found = mined
            .negative
            .iter()
            .any(|s| s.items == vec![Item { column: 0, value: ItemValue::Cat(2) }]);
        assert!(found, "negative itemsets: {:?}", mined.negative);
    }

    #[test]
    fn ambiguous_value_excluded_from_positives() {
        let (t, labels) = dev(100, 900);
        let mined = mine_itemsets(&t, &labels, &[0], &MiningConfig::default());
        assert!(
            !mined
                .positive
                .iter()
                .any(|s| s.items.contains(&Item { column: 0, value: ItemValue::Cat(1) })),
            "id 1 appears everywhere and must not become a positive LF"
        );
    }

    #[test]
    fn precision_and_recall_are_exact() {
        let (t, labels) = dev(100, 900);
        let mined = mine_itemsets(&t, &labels, &[0], &MiningConfig::default());
        let s = mined
            .positive
            .iter()
            .find(|s| s.items == vec![Item { column: 0, value: ItemValue::Cat(0) }])
            .unwrap();
        // id 0: 90 positives (i%10 != 0) and 15 negatives (i%60 == 0).
        assert_eq!(s.pos_support, 90);
        assert_eq!(s.neg_support, 15);
        assert!((s.recall - 0.9).abs() < 1e-12);
        assert!((s.precision - 90.0 / 105.0).abs() < 1e-12);
    }

    #[test]
    fn thresholds_filter_results() {
        let (t, labels) = dev(100, 900);
        let strict = MiningConfig { min_precision: 0.99, ..Default::default() };
        let mined = mine_itemsets(&t, &labels, &[0], &strict);
        assert!(
            !mined
                .positive
                .iter()
                .any(|s| s.items == vec![Item { column: 0, value: ItemValue::Cat(0) }]),
            "precision 0.857 item must not pass a 0.99 bar"
        );
    }

    #[test]
    fn order2_conjunction_rescues_low_precision_items() {
        // Two ids that are individually weak but jointly pure.
        let schema = Arc::new(FeatureSchema::from_defs(vec![FeatureDef::categorical(
            "c",
            FeatureSet::C,
            ServingMode::Servable,
            Vocabulary::from_names(["a", "b", "z"]),
        )]));
        let mut t = FeatureTable::new(schema);
        let mut labels = Vec::new();
        for _ in 0..50 {
            t.push_row(&[FeatureValue::Categorical(CatSet::from_ids(vec![0, 1]))]);
            labels.push(Label::Positive);
        }
        for i in 0..300 {
            // Negatives carry a XOR b, never both.
            let id = if i % 2 == 0 { 0 } else { 1 };
            t.push_row(&[FeatureValue::Categorical(CatSet::from_ids(vec![id, 2]))]);
            labels.push(Label::Negative);
        }
        let cfg = MiningConfig { min_precision: 0.9, max_order: 2, ..Default::default() };
        let mined = mine_itemsets(&t, &labels, &[0], &cfg);
        let pair = mined.positive.iter().find(|s| s.items.len() == 2);
        let pair = pair.expect("order-2 itemset {a,b} should be mined");
        assert_eq!(pair.pos_support, 50);
        assert_eq!(pair.neg_support, 0);
        assert_eq!(pair.precision, 1.0);
    }

    #[test]
    fn empty_positive_class_yields_nothing() {
        let (t, mut labels) = dev(10, 90);
        labels.fill(Label::Negative);
        let mined = mine_itemsets(&t, &labels, &[0, 1], &MiningConfig::default());
        assert!(mined.positive.is_empty());
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn rejects_mismatched_labels() {
        let (t, _) = dev(5, 5);
        mine_itemsets(&t, &[Label::Positive], &[0], &MiningConfig::default());
    }

    #[test]
    fn results_are_deterministic_and_sorted_by_recall() {
        let (t, labels) = dev(100, 900);
        let a = mine_itemsets(&t, &labels, &[0, 1], &MiningConfig::default());
        let b = mine_itemsets(&t, &labels, &[0, 1], &MiningConfig::default());
        assert_eq!(a.positive, b.positive);
        for w in a.positive.windows(2) {
            assert!(w[0].recall >= w[1].recall);
        }
    }

    #[test]
    fn mining_is_identical_across_thread_counts() {
        // 6000 rows crosses MINE_PAR_ROWS, so the counting passes chunk.
        let (t, labels) = dev(600, 5400);
        let cfg = MiningConfig::default();
        let base = mine_itemsets_with(&t, &labels, &[0, 1], &cfg, &ParConfig::threads(1));
        for threads in [2usize, 4, 8] {
            let par = ParConfig::threads(threads);
            let mined = mine_itemsets_with(&t, &labels, &[0, 1], &cfg, &par);
            assert_eq!(mined.positive, base.positive, "threads = {threads}");
            assert_eq!(mined.negative, base.negative, "threads = {threads}");
            assert_eq!(mined.n_candidates, base.n_candidates, "threads = {threads}");
        }
    }
}
